//! The partitioned scheduler (§3.1.1).
//!
//! Offline, deterministic: basestation `i`'s subframe `j` is processed on
//! core `i·⌈T_max⌉ + (j mod ⌈T_max⌉)`. Each basestation owns `⌈T_max⌉`
//! cores, and consecutive subframes round-robin across them, so every
//! subframe gets a full `⌈T_max⌉` ms of exclusive core time — at least its
//! `T_max` budget (Fig. 9).

use crate::budget::Budget;
use serde::{Deserialize, Serialize};

/// A partitioned (static) subframe-to-core mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionedSchedule {
    /// Number of basestations `M`.
    pub num_bs: usize,
    /// Cores per basestation, `⌈T_max⌉`.
    pub cores_per_bs: usize,
}

impl PartitionedSchedule {
    /// Builds the schedule for `num_bs` basestations under `budget`.
    ///
    /// # Panics
    /// Panics if `num_bs == 0`.
    pub fn new(num_bs: usize, budget: &Budget) -> Self {
        assert!(num_bs > 0, "at least one basestation");
        PartitionedSchedule {
            num_bs,
            cores_per_bs: budget.ceil_tmax_ms(),
        }
    }

    /// Builds a schedule with an explicit per-basestation core count.
    pub fn with_cores_per_bs(num_bs: usize, cores_per_bs: usize) -> Self {
        assert!(num_bs > 0 && cores_per_bs > 0, "non-empty schedule");
        PartitionedSchedule {
            num_bs,
            cores_per_bs,
        }
    }

    /// Total processing cores the schedule occupies.
    pub fn total_cores(&self) -> usize {
        self.num_bs * self.cores_per_bs
    }

    /// The core that processes subframe `j` of basestation `i`
    /// (the paper's `i·⌈T_max⌉ + (j mod ⌈T_max⌉)`).
    ///
    /// # Panics
    /// Panics if `bs >= num_bs`.
    pub fn core_for(&self, bs: usize, subframe: u64) -> usize {
        // analyze: allow(panic): schedule-table indexing contract; an out-of-range id is a construction bug, not a runtime condition
        assert!(bs < self.num_bs, "basestation {bs} out of range");
        bs * self.cores_per_bs + (subframe % self.cores_per_bs as u64) as usize
    }

    /// The basestation a core is dedicated to.
    ///
    /// # Panics
    /// Panics if `core >= total_cores()`.
    pub fn bs_for_core(&self, core: usize) -> usize {
        // analyze: allow(panic): schedule-table indexing contract; an out-of-range id is a construction bug, not a runtime condition
        assert!(core < self.total_cores(), "core {core} out of range");
        core / self.cores_per_bs
    }

    /// Subframe period of one core, in subframes: a core sees every
    /// `⌈T_max⌉`-th subframe of its basestation.
    pub fn core_period(&self) -> u64 {
        self.cores_per_bs as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use proptest::prelude::*;

    fn paper_schedule() -> PartitionedSchedule {
        PartitionedSchedule::new(4, &Budget::from_rtt_half_us(500))
    }

    #[test]
    fn paper_config_uses_8_cores() {
        let s = paper_schedule();
        assert_eq!(s.cores_per_bs, 2);
        assert_eq!(s.total_cores(), 8);
    }

    #[test]
    fn fig9_round_robin() {
        // Fig. 9: (0,0) → core 0, (0,1) → core 1, (0,2) → core 0, …
        let s = PartitionedSchedule::with_cores_per_bs(1, 2);
        assert_eq!(s.core_for(0, 0), 0);
        assert_eq!(s.core_for(0, 1), 1);
        assert_eq!(s.core_for(0, 2), 0);
        assert_eq!(s.core_for(0, 3), 1);
    }

    #[test]
    fn basestations_get_disjoint_cores() {
        let s = paper_schedule();
        for bs_a in 0..4 {
            for bs_b in 0..4 {
                if bs_a == bs_b {
                    continue;
                }
                for j in 0..10u64 {
                    for k in 0..10u64 {
                        assert_ne!(s.core_for(bs_a, j), s.core_for(bs_b, k));
                    }
                }
            }
        }
    }

    #[test]
    fn core_sees_every_other_subframe() {
        let s = paper_schedule();
        let core = s.core_for(2, 4);
        // Same core again exactly core_period later.
        assert_eq!(s.core_for(2, 4 + s.core_period()), core);
        assert_ne!(s.core_for(2, 5), core);
    }

    #[test]
    fn bs_for_core_inverts_mapping() {
        let s = paper_schedule();
        for bs in 0..4 {
            for j in 0..4u64 {
                assert_eq!(s.bs_for_core(s.core_for(bs, j)), bs);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bs_panics() {
        paper_schedule().core_for(4, 0);
    }

    proptest! {
        #[test]
        fn prop_mapping_in_range(num_bs in 1usize..16, cpb in 1usize..4,
                                 bs_sel in 0usize..16, j in 0u64..1000) {
            let s = PartitionedSchedule::with_cores_per_bs(num_bs, cpb);
            let bs = bs_sel % num_bs;
            let core = s.core_for(bs, j);
            prop_assert!(core < s.total_cores());
            prop_assert_eq!(s.bs_for_core(core), bs);
        }
    }
}
