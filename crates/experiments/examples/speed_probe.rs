//! Measures the real PHY's per-subframe decode wall time on this machine
//! across bandwidths and MCS — used to pick the runtime node's dilated
//! subframe period (see rtopex-runtime's module docs).

fn main() {
    use rand::{Rng, SeedableRng};
    use rtopex_phy::channel::*;
    use rtopex_phy::params::Bandwidth;
    use rtopex_phy::uplink::*;
    for (bw, label) in [
        (Bandwidth::Mhz1_4, "1.4MHz"),
        (Bandwidth::Mhz5, "5MHz"),
        (Bandwidth::Mhz10, "10MHz"),
    ] {
        for mcs in [5u8, 16, 27] {
            let cfg = UplinkConfig::new(bw, 2, mcs).unwrap();
            let tx = UplinkTx::new(cfg.clone());
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let p: Vec<u8> = (0..cfg.transport_block_bytes())
                .map(|_| rng.gen())
                .collect();
            let sf = tx.encode_subframe(&p).unwrap();
            let mut ch = AwgnChannel::new(30.0);
            let rxs = ch.apply(&sf.samples, 2, &mut rng);
            let rx = UplinkRx::new(cfg);
            let t0 = std::time::Instant::now();
            let n = 5;
            for _ in 0..n {
                std::hint::black_box(rx.decode_subframe(&rxs).unwrap());
            }
            println!(
                "{label} MCS{mcs}: {:.1} us/subframe",
                t0.elapsed().as_secs_f64() * 1e6 / n as f64
            );
        }
    }
}
