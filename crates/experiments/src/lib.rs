//! # rtopex-experiments — regenerate every table and figure
//!
//! One module per experiment of the paper's evaluation (§2 measurements
//! and §4 results). Each module exposes a `run(&Opts)` entry that prints
//! the same rows/series the paper reports, so `EXPERIMENTS.md` can record
//! paper-vs-measured side by side. The `rtopex-experiments` binary
//! dispatches on the first argument (`fig15`, `table1`, …).
//!
//! Experiments come in two speeds:
//!
//! * **model-driven** (Figs. 1, 3, 6, 7, 14–17, 19, Table 1) — run the
//!   discrete-event simulator / analytic models; full-scale in seconds;
//! * **real-thread** (Figs. 4, 18, and the PHY variants of Fig. 3/Table 1)
//!   — execute the actual Rust PHY on pinned threads. On a single-CPU
//!   machine the parallel variants degenerate to time-sharing; the tool
//!   reports the CPU count so results are interpretable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod cluster_scale;
pub mod common;
pub mod discussion;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig06;
pub mod fig07;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod pooling;
pub mod table1;
pub mod table2;

pub use common::Opts;
