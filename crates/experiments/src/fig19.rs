//! Fig. 19 — the global scheduler as core count varies.
//!
//! Left: deadline-miss rate for 4–16 worker cores — improves to ≈ 8 cores,
//! then saturates/worsens. Right: the MCS-27 processing-time distribution,
//! where global-16 shows ≈ 80 µs of extra time for a sizable fraction of
//! subframes (cache thrashing).

use crate::common::{fmt_rate, header, Opts};
use rtopex_core::global::QueuePolicy;
use rtopex_sim::{run as sim_run, SchedulerKind, SimConfig};

/// Core counts swept (2–3 cores are overloaded for four basestations).
pub const CORE_GRID: [usize; 8] = [2, 3, 4, 6, 8, 10, 12, 16];

/// Runs the miss-rate sweep; returns `(cores, rate)` pairs.
pub fn sweep(opts: &Opts, rtt_half_us: u64) -> Vec<(usize, f64)> {
    CORE_GRID
        .iter()
        .map(|&cores| {
            let mut cfg = SimConfig::from_scenario(&opts.scenario(), rtt_half_us);
            cfg.scheduler = SchedulerKind::Global {
                cores,
                policy: QueuePolicy::Edf,
            };
            (cores, sim_run(&cfg).miss_rate())
        })
        .collect()
}

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header(
        "Fig. 19 — global scheduler vs. core count",
        "Fig. 19 (§4.4)",
    );
    println!("{:>7} {:>12}", "cores", "miss rate");
    let rows = sweep(opts, 500);
    for (cores, rate) in &rows {
        println!("{:>7} {:>12}", cores, fmt_rate(*rate));
    }

    // Right panel: MCS-27 processing-time distribution, 8 vs 16 cores.
    println!("\nMCS-27 processing-time distribution (fixed-MCS run):");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "cores", "p50 (µs)", "p90 (µs)", "p99 (µs)"
    );
    for cores in [8usize, 16] {
        let mut cfg = SimConfig::from_scenario(&opts.scenario(), 500);
        if opts.quick {
            cfg.subframes = 2_000;
        }
        cfg.scheduler = SchedulerKind::Global {
            cores,
            policy: QueuePolicy::Edf,
        };
        cfg.fixed_mcs = Some(27);
        let mut r = sim_run(&cfg);
        println!(
            "{:>10} {:>10.0} {:>10.0} {:>10.0}",
            cores,
            r.proc_times_us.quantile(0.5),
            r.proc_times_us.quantile(0.9),
            r.proc_times_us.quantile(0.99)
        );
    }
    println!("paper: performance saturates/worsens beyond 8 cores; global-16 runs ≈ 80 µs\n       longer for > 10 % of MCS-27 subframes (cache thrashing)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_beyond_8_cores() {
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        let rows = sweep(&opts, 500);
        let rate = |c: usize| rows.iter().find(|(k, _)| *k == c).unwrap().1;
        // Severe overload at 2 cores improves by 8…
        assert!(rate(2) > rate(8) * 3.0, "2: {}, 8: {}", rate(2), rate(8));
        // …but 16 is no better than 8 (saturation / worsening).
        assert!(
            rate(16) >= rate(8) * 0.7,
            "8: {}, 16: {}",
            rate(8),
            rate(16)
        );
    }
}
