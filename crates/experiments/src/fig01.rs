//! Fig. 1 — variations in cellular load traces.
//!
//! The paper shows two basestations' normalized downlink load over a 50 ms
//! window, varying considerably between consecutive 1 ms subframes. We
//! print the same 50 ms window for two synthetic towers plus the
//! millisecond-scale variability statistics that motivated RT-OPEX.

use crate::common::{header, Opts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtopex_workload::{LoadTrace, TraceParams};

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Fig. 1 — cellular load variations", "Fig. 1 (§1)");
    let mut traces: Vec<Vec<f64>> = (0..2)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(t as u64));
            LoadTrace::new(TraceParams::tower(t)).generate(50, &mut rng)
        })
        .collect();
    println!("{:>6} {:>8} {:>8}", "t(ms)", "BS 1", "BS 2");
    #[allow(clippy::needless_range_loop)] // parallel indexing of both traces
    for t in 0..50 {
        println!("{:>6} {:>8.3} {:>8.3}", t + 1, traces[0][t], traces[1][t]);
    }
    for (i, tr) in traces.iter_mut().enumerate() {
        let mean_delta: f64 =
            tr.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (tr.len() - 1) as f64;
        let lo = tr.iter().cloned().fold(f64::MAX, f64::min);
        let hi = tr.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "BS {}: range [{lo:.3}, {hi:.3}], mean |Δload| per 1 ms = {mean_delta:.3}",
            i + 1
        );
    }
    println!("paper: load varies considerably between consecutive 1 ms subframes");
}
