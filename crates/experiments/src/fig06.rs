//! Fig. 6 — distribution of cloud network delay.

use crate::common::{header, Opts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtopex_model::stats::Samples;
use rtopex_transport::CloudLatency;

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Fig. 6 — one-way cloud network delay", "Fig. 6 (§2.3)");
    let n = if opts.quick { 200_000 } else { 2_000_000 };
    for (label, model) in [
        ("1GbE", CloudLatency::gbe1()),
        ("10GbE", CloudLatency::gbe10()),
    ] {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut s = Samples::from_vec((0..n).map(|_| model.sample(&mut rng)).collect());
        println!(
            "{label:>6}: mean {:>6.0} µs  p50 {:>6.0}  p99 {:>6.0}  p99.99 {:>6.0}  P(>250µs) {:.1e}",
            s.mean(),
            s.median(),
            s.quantile(0.99),
            s.quantile(0.9999),
            s.ccdf_at(250.0)
        );
    }
    println!("paper: mean ≈ 0.15 ms; ~1 in 10⁴ packets above 0.25 ms on both links");
}
