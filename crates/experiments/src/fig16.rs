//! Fig. 16 — gaps in the partitioned schedule and RT-OPEX's migrations.
//!
//! Left: the CDF of idle gaps on partitioned cores (≥ 60 % exceed 500 µs
//! at low transport latency — the free cycles RT-OPEX harvests).
//! Right: the fraction of FFT and decode subtasks RT-OPEX migrates as the
//! transport latency varies.

use crate::common::{header, Opts};
use rtopex_core::time::Nanos;
use rtopex_sim::{run as sim_run, SchedulerKind, SimConfig};

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Fig. 16 — gaps and migrations", "Fig. 16 (§4.3)");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "RTT/2", "gap p50 (µs)", "P(gap≥500µs)", "fft mig%", "dec mig%", "recoveries"
    );
    for rtt in [400u64, 500, 600, 700] {
        // Gap statistics from the *partitioned* run (the gaps that exist
        // before migration fills them).
        let mut part = SimConfig::from_scenario(&opts.scenario(), rtt);
        part.scheduler = SchedulerKind::Partitioned;
        let mut part_report = sim_run(&part);

        let mut rto = SimConfig::from_scenario(&opts.scenario(), rtt);
        rto.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        let rto_report = sim_run(&rto);

        println!(
            "{:>8} {:>14.0} {:>14.3} {:>12.3} {:>12.3} {:>12}",
            format!("{rtt}µs"),
            part_report.gaps.median_us(),
            part_report.gaps.fraction_at_least(Nanos::from_us(500)),
            rto_report.migration.fft_fraction(),
            rto_report.migration.decode_fraction(),
            rto_report.migration.recoveries,
        );
    }
    println!("paper: >60 % of gaps exceed 500 µs at low latency; ~20 % of decode subtasks migrated,\n       decode migrations taper as gaps narrow while small FFT subtasks keep migrating");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtopex_core::time::Nanos;

    #[test]
    fn gaps_are_large_at_low_latency() {
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        let mut cfg = SimConfig::from_scenario(&opts.scenario(), 400);
        cfg.scheduler = SchedulerKind::Partitioned;
        let mut r = sim_run(&cfg);
        assert!(
            r.gaps.fraction_at_least(Nanos::from_us(500)) > 0.5,
            "fraction {}",
            r.gaps.fraction_at_least(Nanos::from_us(500))
        );
    }

    #[test]
    fn rtopex_migrates_both_kinds() {
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        let mut cfg = SimConfig::from_scenario(&opts.scenario(), 500);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        let r = sim_run(&cfg);
        assert!(r.migration.fft_fraction() > 0.0);
        assert!(r.migration.decode_fraction() > 0.0);
    }
}
