//! Fig. 4 — task execution times on multiple cores (real threads).
//!
//! The paper halves the FFT task by running 7 OFDM symbols per core and
//! cuts the MCS-27 decode from 980 µs to 670 µs by splitting code blocks.
//! We measure the same splits with the real Rust PHY on pinned threads,
//! and print the model's view next to it (the model is what the simulator
//! uses at scale).

use crate::common::{header, Opts};
use rtopex_model::tasks::TaskTimeModel;
use rtopex_phy::params::Bandwidth;
use rtopex_phy::tasks::TaskKind;
use rtopex_runtime::affinity::num_cpus;
use rtopex_runtime::measure_stage_parallelism;

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Fig. 4 — task execution on 1 vs 2 cores", "Fig. 4 (§2.2)");
    let trials = if opts.quick { 3 } else { 10 };
    println!("machine CPUs: {}", num_cpus());
    if num_cpus() < 2 {
        println!("WARNING: single-CPU machine — two-core timings time-share and will not show the speedup; see the model view below and the simulator results.");
    }
    for (task, bw, mcs) in [
        (TaskKind::Fft, Bandwidth::Mhz10, 27u8),
        (TaskKind::Decode, Bandwidth::Mhz5, 20u8),
    ] {
        let mut m = measure_stage_parallelism(bw, 2, mcs, task, trials);
        println!(
            "real {:<7} ({} @ MCS {}): serial median {:>9.0} µs, two-core median {:>9.0} µs",
            task.label(),
            bw.label(),
            mcs,
            m.serial_us.median(),
            m.two_core_us.median(),
        );
    }
    // Model view at the paper's configuration.
    let ttm = TaskTimeModel::paper_gpp();
    let fft_serial = ttm.fft_total(2);
    let (fc, ftp) = ttm.fft_subtasks(2);
    println!(
        "model fft    (10MHz, N=2): serial {:.0} µs, two-core {:.0} µs",
        fft_serial,
        ftp * (fc as f64 / 2.0).ceil()
    );
    let dec_serial = ttm.decode_total(3.774, 2.0);
    let (dc, dtp) = ttm.decode_subtasks(3.774, 2.0, 6);
    println!(
        "model decode (10MHz, MCS27, L=2): serial {:.0} µs, two-core {:.0} µs",
        dec_serial,
        dtp * (dc as f64 / 2.0).ceil()
    );
    println!("paper: FFT nearly halves (≤ 6 µs overhead); decode 980 → 670 µs");
}
