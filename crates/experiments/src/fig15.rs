//! Fig. 15 — the headline result: deadline-miss rate vs. transport latency
//! for partitioned, global-8, global-16 and RT-OPEX.

use crate::common::{contenders, fmt_rate, header, miss_rate, Opts};

/// The RTT/2 sweep grid (µs), matching the paper's 0.4–0.7 ms range.
pub const RTT_GRID: [u64; 7] = [400, 450, 500, 550, 600, 650, 700];

/// Runs the sweep; returns `(rtt_half_us, [rates per contender])`.
pub fn sweep(opts: &Opts) -> Vec<(u64, Vec<f64>)> {
    RTT_GRID
        .iter()
        .map(|&rtt| {
            let rates = contenders()
                .into_iter()
                .map(|(_, sched)| miss_rate(opts, rtt, sched))
                .collect();
            (rtt, rates)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header(
        "Fig. 15 — deadline-miss rate vs. RTT/2",
        "Fig. 15 (§4.3), the headline comparison",
    );
    let names: Vec<&str> = contenders().iter().map(|(n, _)| *n).collect();
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "RTT/2", names[0], names[1], names[2], names[3]
    );
    let results = sweep(opts);
    for (rtt, rates) in &results {
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            format!("{rtt}µs"),
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            fmt_rate(rates[2]),
            fmt_rate(rates[3])
        );
    }
    // The paper's takeaways, checked on the spot.
    let at = |rtt: u64| {
        results
            .iter()
            .find(|(r, _)| *r == rtt)
            .map(|(_, v)| v.clone())
            .expect("grid point")
    };
    let low = at(400);
    let high = at(700);
    println!(
        "takeaway 1 (RT-OPEX ≈ 0 below 500 µs): rt-opex @400 = {}",
        fmt_rate(low[3])
    );
    println!(
        "takeaway 2 (order-of-magnitude gap): @700µs partitioned/global = {} / {}, rt-opex = {} (×{:.0} better than partitioned)",
        fmt_rate(high[0]),
        fmt_rate(high[1]),
        fmt_rate(high[3]),
        high[0] / high[3].max(1e-9)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shape_holds() {
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        let results = sweep(&opts);
        for (rtt, rates) in &results {
            let (part, g8, g16, rto) = (rates[0], rates[1], rates[2], rates[3]);
            // RT-OPEX never worse than partitioned (paired workload).
            assert!(rto <= part + 1e-9, "rtt {rtt}: rto {rto} vs part {part}");
            // Global never better than partitioned by much; 16 cores never
            // much better than 8 (Fig. 19's saturation).
            assert!(g8 >= part * 0.5, "rtt {rtt}: g8 {g8} vs part {part}");
            assert!(g16 >= g8 * 0.7, "rtt {rtt}: g16 {g16} vs g8 {g8}");
        }
        // Miss rate grows with transport latency for partitioned.
        let first = results.first().unwrap().1[0];
        let last = results.last().unwrap().1[0];
        assert!(last > first, "partitioned flat: {first} → {last}");
        // Order-of-magnitude claim at the high end.
        let high = &results.last().unwrap().1;
        assert!(
            high[0] / high[3].max(1e-9) > 5.0,
            "gap only ×{:.1}",
            high[0] / high[3].max(1e-9)
        );
    }
}
