//! Fig. 7 — one-way transport latency vs. number of antennas.

use crate::common::{header, Opts};
use rtopex_phy::params::Bandwidth;
use rtopex_transport::TestbedLink;

/// Runs the experiment.
pub fn run(_opts: &Opts) {
    header("Fig. 7 — transport latency vs. antennas", "Fig. 7 (§2.3)");
    let link = TestbedLink::paper_testbed();
    println!("{:>9} {:>12} {:>12}", "antennas", "5MHz (µs)", "10MHz (µs)");
    for n in [1usize, 2, 4, 8, 12, 16] {
        println!(
            "{:>9} {:>12.0} {:>12.0}",
            n,
            link.one_way_max_us(Bandwidth::Mhz5, n),
            link.one_way_max_us(Bandwidth::Mhz10, n)
        );
    }
    println!(
        "max antennas at 10 MHz before exceeding the 1 ms period: {}",
        link.max_supported_antennas(Bandwidth::Mhz10)
    );
    println!("paper: 620 µs max at 5 MHz; > 1 ms at 10 MHz; at most 8 antennas supported");
}
