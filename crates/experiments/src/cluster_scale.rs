//! Cluster consolidation — cells sustained per host vs. scheduler
//! (the real-thread analogue of Figs. 17/18's capacity argument).
//!
//! The paper's consolidation pitch: RT-OPEX lets one host carry more
//! RAPs at the same deadline-miss budget because idle cycles are shared
//! across cells instead of stranded per partition. This experiment runs
//! the actual [`CranCluster`] — real PHY, real threads, batched
//! multi-cell ingest — at N = 1, 2, 3, … cells and reports each
//! scheduler's deadline-miss rate, then the largest N each sustains at
//! the < 0.5 % miss threshold. The comparison of interest is
//! RT-OPEX(mutex) vs RT-OPEX(steal): same Algorithm 1 semantics, but the
//! steal path migrates through lock-free tickets with steal-time δ
//! admission instead of boxed closures through mutex mailboxes.
//!
//! ## Measuring under a noisy host
//!
//! On a shared VM the hypervisor steals the CPU in multi-millisecond
//! bursts (we have measured 4 ms gaps inside a hot spin loop on a
//! single-vCPU box). At a true 1 ms cadence one such burst forces
//! several consecutive misses no scheduler could avoid. Interference is
//! strictly one-sided — it adds misses, never removes them — so each
//! sweep point runs `trials` times and keeps the *best* (minimum-miss)
//! run as the capacity estimate, the same reasoning as taking the min
//! of repeated latency benchmarks.

use crate::common::{fmt_rate, header, Opts};
use rtopex_phy::params::Bandwidth;
use rtopex_runtime::cluster::{ClusterConfig, CranCluster, SchedulerMode};
use std::time::Duration;

/// The sustained-capacity miss threshold (fraction of subframes).
pub const MISS_THRESHOLD: f64 = 0.005;

/// One (mode, cell-count) measurement.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Cells driven.
    pub cells: usize,
    /// Aggregate deadline-miss rate.
    pub miss: f64,
    /// Completed subframes per wall-clock second.
    pub sf_per_sec: f64,
    /// Subtasks executed by thieves (steal mode only).
    pub steals: u64,
    /// Subtasks absorbed from remote execution (any migrating mode).
    pub migrated: u64,
}

/// The cluster configuration for a sweep point: 5 MHz cells on a 6 ms
/// dilated cadence (the node module's time-dilation convention — the
/// subframe period stretches with the slower hardware so the queueing
/// structure of the real 1 ms system is preserved), behind a one-way
/// fronthaul of ~1.2 periods (Fig. 6's metro range). Eq. 3 then gives
/// each subframe a `2·6 − 7 = 5 ms` processing budget — wide enough to
/// ride out single-millisecond hypervisor stalls, tight enough that a
/// scheduler whose p99 processing latency inflates past ~5 ms misses
/// structurally, in every trial, which is exactly where the mutex
/// mailbox baseline lands first as cells are added.
pub fn cluster_cfg(opts: &Opts, mode: SchedulerMode, cells: usize) -> ClusterConfig {
    ClusterConfig {
        bandwidth: Bandwidth::Mhz5,
        num_antennas: 2,
        num_cells: cells,
        subframes: if opts.quick { 220 } else { 300 },
        period: Duration::from_micros(6_000),
        rtt_half: Duration::from_micros(7_000),
        mode,
        snr_db: 30.0,
        mcs_pool: vec![5, 10, 16, 22, 27],
        delta_us: 60.0,
        seed: opts.seed,
        batch_decode: true,
    }
}

/// One sweep point: best (minimum-miss) of `trials` runs — see the
/// module docs on one-sided host interference.
pub fn best_of(opts: &Opts, mode: SchedulerMode, cells: usize, trials: usize) -> ScalePoint {
    (0..trials.max(1))
        .map(|_| {
            let r = CranCluster::new(cluster_cfg(opts, mode, cells)).run();
            ScalePoint {
                cells,
                miss: r.miss_rate(),
                sf_per_sec: r.subframes_per_sec(),
                steals: r.steals,
                migrated: r.migration.fft_migrated + r.migration.decode_migrated,
            }
        })
        .min_by(|a, b| {
            a.miss
                .partial_cmp(&b.miss)
                .unwrap()
                .then(b.sf_per_sec.partial_cmp(&a.sf_per_sec).unwrap())
        })
        .expect("at least one trial")
}

/// Runs one mode at 1..=`max_cells` cells.
pub fn sweep_mode(opts: &Opts, mode: SchedulerMode, max_cells: usize) -> Vec<ScalePoint> {
    let trials = if opts.quick { 2 } else { 5 };
    (1..=max_cells)
        .map(|n| best_of(opts, mode, n, trials))
        .collect()
}

/// Largest leading cell count whose miss rate stays under the threshold
/// (capacity is contiguous: once a mode collapses it does not recover).
pub fn cells_sustained(points: &[ScalePoint]) -> usize {
    points
        .iter()
        .take_while(|p| p.miss < MISS_THRESHOLD)
        .count()
}

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header(
        "Cluster — cells sustained per host vs. scheduler",
        "Figs. 17/18 consolidation (§4.3–4.4), real threads",
    );
    let max_cells = if opts.quick { 4 } else { 6 };
    println!(
        "5 MHz / 2 antennas / 6 ms dilated period / 5 ms Eq. 3 budget, miss threshold {:.2} %",
        MISS_THRESHOLD * 100.0
    );
    println!(
        "{:>14} {}",
        "mode",
        (1..=max_cells)
            .map(|n| format!("{n:>9}"))
            .collect::<String>()
    );
    let mut summary = Vec::new();
    for mode in SchedulerMode::ALL {
        let points = sweep_mode(opts, mode, max_cells);
        println!(
            "{:>14} {}",
            mode.name(),
            points
                .iter()
                .map(|p| format!("{:>9}", fmt_rate(p.miss)))
                .collect::<String>()
        );
        summary.push((mode, cells_sustained(&points), points));
    }
    for (mode, sustained, points) in &summary {
        let tail = points
            .iter()
            .find(|p| p.cells == *sustained)
            .map(|p| format!(", {:.0} sf/s, {} stolen", p.sf_per_sec, p.steals))
            .unwrap_or_default();
        println!("{:>14}: sustains {sustained} cell(s){tail}", mode.name());
    }
    println!("paper: RT-OPEX carries ~15 % more load per host at the same miss budget;");
    println!("here the lock-free steal path should sustain ≥ the mutex mailbox baseline.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_points_are_sane() {
        const SUBFRAMES: usize = 120;
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        for mode in [SchedulerMode::Partitioned, SchedulerMode::RtOpexSteal] {
            let mut cfg = cluster_cfg(&opts, mode, 1);
            cfg.subframes = SUBFRAMES; // keep the unit test brisk
            let best = (0..3)
                .map(|_| CranCluster::new(cfg.clone()).run().miss_rate())
                .fold(f64::INFINITY, f64::min);
            // One cell at 1.4 MHz on the vectorized PHY is comfortably
            // sustainable for every scheduler; allow a single miss in the
            // best trial for hypervisor steal-time the runtime cannot
            // control (see the module docs).
            assert!(
                best <= 1.0 / SUBFRAMES as f64 + 1e-9,
                "{} misses {best} at a single cell",
                mode.name(),
            );
        }
    }

    #[test]
    fn sustained_count_is_leading_run() {
        let mk = |cells, miss| ScalePoint {
            cells,
            miss,
            sf_per_sec: 0.0,
            steals: 0,
            migrated: 0,
        };
        let pts = vec![mk(1, 0.0), mk(2, 0.001), mk(3, 0.3), mk(4, 0.0)];
        assert_eq!(cells_sustained(&pts), 2, "post-collapse recovery ignored");
    }
}
