//! `rtopex-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! rtopex-experiments <experiment> [--quick] [--seed N]
//! rtopex-experiments all [--quick]
//! ```

use rtopex_experiments::*;

const USAGE: &str = "\
rtopex-experiments — regenerate RT-OPEX (CoNEXT'16) tables and figures

USAGE: rtopex-experiments <experiment> [--quick] [--seed N]

EXPERIMENTS:
  fig1      load-trace variations                 (Fig. 1)
  table1    processing-time model fit             (Table 1)
  fig3      processing-time variations, 4 panels  (Fig. 3a-d)
  fig4      task times on 1 vs 2 cores, real PHY  (Fig. 4)
  fig6      cloud network delay distribution      (Fig. 6)
  fig7      transport latency vs antennas         (Fig. 7)
  fig14     basestation load CDFs                 (Fig. 14)
  fig15     deadline-miss vs RTT/2  [HEADLINE]    (Fig. 15)
  fig16     schedule gaps and migrations          (Fig. 16)
  fig17     deadline-miss vs offered load         (Fig. 17)
  fig18     local vs migrated subtask times       (Fig. 18)
  fig19     global scheduler vs core count        (Fig. 19)
  cluster   cells sustained per host, real threads (Figs. 17/18 consolidation)
  pooling   cells/core vs fleet size, 1-64 hosts   (§1/§6 consolidation)
  table2    qualitative comparison matrix         (Table 2)
  discussion §5 claims: spare cores, core failure, load surges
  ablations delta / policy / recovery / cache ablations
  all       everything above, in order

OPTIONS:
  --quick   smaller runs (CI-scale)
  --seed N  RNG seed (default 0xC0DE)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let opts = Opts::parse(&args[1..]);
    match which.as_str() {
        "fig1" => fig01::run(&opts),
        "table1" => table1::run(&opts),
        "fig3" => fig03::run(&opts),
        "fig3a" => fig03::run_a(&opts),
        "fig3b" => fig03::run_b(&opts),
        "fig3c" => fig03::run_c(&opts),
        "fig3d" => fig03::run_d(&opts),
        "fig4" => fig04::run(&opts),
        "fig6" => fig06::run(&opts),
        "fig7" => fig07::run(&opts),
        "fig14" => fig14::run(&opts),
        "fig15" => fig15::run(&opts),
        "fig16" => fig16::run(&opts),
        "fig17" => fig17::run(&opts),
        "fig18" => fig18::run(&opts),
        "fig19" => fig19::run(&opts),
        "cluster" => cluster_scale::run(&opts),
        "pooling" => pooling::run(&opts),
        "table2" => table2::run(&opts),
        "discussion" => discussion::run(&opts),
        "ablations" => ablations::run(&opts),
        "ablate-delta" => ablations::run_delta(&opts),
        "ablate-policy" => ablations::run_policy(&opts),
        "ablate-recovery" => ablations::run_recovery(&opts),
        "ablate-cache" => ablations::run_cache(&opts),
        "ablate-prb" => ablations::run_prb(&opts),
        "ablate-granularity" => ablations::run_granularity(&opts),
        "all" => {
            fig01::run(&opts);
            table1::run(&opts);
            fig03::run(&opts);
            fig04::run(&opts);
            fig06::run(&opts);
            fig07::run(&opts);
            fig14::run(&opts);
            fig15::run(&opts);
            fig16::run(&opts);
            fig17::run(&opts);
            fig18::run(&opts);
            fig19::run(&opts);
            cluster_scale::run(&opts);
            pooling::run(&opts);
            table2::run(&opts);
            discussion::run(&opts);
            ablations::run(&opts);
        }
        other => {
            eprintln!("unknown experiment: {other}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}
