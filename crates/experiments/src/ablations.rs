//! Ablations of the design choices called out in DESIGN.md §6.
//!
//! * `ablate-delta` — sweep the migration cost δ: Algorithm 1's R1 guard
//!   makes migration taper off and eventually vanish as δ grows, instead
//!   of turning counterproductive;
//! * `ablate-policy` — EDF vs. FIFO global dispatch: equivalent when all
//!   basestations share one transport delay (§3.1.2's claim);
//! * `ablate-recovery` — host-overrun sensitivity: RT-OPEX's recovery
//!   path keeps the miss rate bounded even when migrated batches overrun
//!   half the time;
//! * `ablate-cache` — the global scheduler with cache penalties removed:
//!   quantifies how much of global's deficit is cache thrashing;
//! * `ablate-granularity` — semi-partitioned (whole-task migration, the
//!   paper's [14]) vs. RT-OPEX (subtask migration): Table 2's granularity
//!   column, quantified. Task-level moves barely help because the misses
//!   come from subframes whose *serial* time exceeds the budget — only
//!   splitting the task parallelizes past that wall.

use crate::common::{fmt_rate, header, Opts};
use rtopex_core::global::QueuePolicy;
use rtopex_sim::{run as sim_run, CacheModel, SchedulerKind, SimConfig};

/// δ sweep.
pub fn run_delta(opts: &Opts) {
    header(
        "Ablation — migration cost δ",
        "DESIGN.md §6 (supports §4.4)",
    );
    println!(
        "{:>8} {:>12} {:>10} {:>10}",
        "δ (µs)", "miss rate", "fft mig%", "dec mig%"
    );
    for delta in [0u64, 10, 20, 50, 100, 200, 500] {
        let mut cfg = SimConfig::from_scenario(&opts.scenario(), 600);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: delta };
        let r = sim_run(&cfg);
        println!(
            "{:>8} {:>12} {:>10.3} {:>10.3}",
            delta,
            fmt_rate(r.miss_rate()),
            r.migration.fft_fraction(),
            r.migration.decode_fraction()
        );
    }
    println!("expected: misses and migration volume degrade gracefully as δ grows;\nR1 stops migration before it could hurt.");
}

/// EDF vs. FIFO.
pub fn run_policy(opts: &Opts) {
    header("Ablation — global EDF vs. FIFO", "§3.1.2 equivalence claim");
    println!("{:>8} {:>12} {:>12}", "RTT/2", "EDF", "FIFO");
    for rtt in [450u64, 600] {
        let mut rates = Vec::new();
        for policy in [QueuePolicy::Edf, QueuePolicy::Fifo] {
            let mut cfg = SimConfig::from_scenario(&opts.scenario(), rtt);
            cfg.scheduler = SchedulerKind::Global { cores: 8, policy };
            rates.push(sim_run(&cfg).miss_rate());
        }
        println!(
            "{:>8} {:>12} {:>12}",
            format!("{rtt}µs"),
            fmt_rate(rates[0]),
            fmt_rate(rates[1])
        );
    }
    println!("expected: identical — with equal transport delay, EDF order = arrival order.");
}

/// Host-overrun sensitivity.
pub fn run_recovery(opts: &Opts) {
    header(
        "Ablation — host overruns and recovery",
        "§3.2.1-B recovery path",
    );
    println!(
        "{:>14} {:>12} {:>12}",
        "P(overrun)", "miss rate", "recoveries"
    );
    for p in [0.0, 0.01, 0.1, 0.5] {
        let mut cfg = SimConfig::from_scenario(&opts.scenario(), 600);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        cfg.overrun_prob = p;
        cfg.overrun_factor = 2.0;
        let r = sim_run(&cfg);
        println!(
            "{:>14} {:>12} {:>12}",
            p,
            fmt_rate(r.miss_rate()),
            r.migration.recoveries
        );
    }
    println!("expected: recoveries grow with overrun probability while the miss rate\nstays bounded by the no-migration baseline (the §3.2 guarantee).");
}

/// Cache-penalty ablation for the global scheduler.
pub fn run_cache(opts: &Opts) {
    header(
        "Ablation — global without cache penalties",
        "explains Fig. 19",
    );
    println!("{:>10} {:>14} {:>14}", "cores", "with cache", "no cache");
    for cores in [8usize, 16] {
        let mut with = SimConfig::from_scenario(&opts.scenario(), 600);
        with.scheduler = SchedulerKind::Global {
            cores,
            policy: QueuePolicy::Edf,
        };
        let mut without = with.clone();
        without.cache = CacheModel::free();
        println!(
            "{:>10} {:>14} {:>14}",
            cores,
            fmt_rate(sim_run(&with).miss_rate()),
            fmt_rate(sim_run(&without).miss_rate())
        );
    }
    println!("expected: without penalties the global scheduler approaches partitioned —\nthe deficit the paper observed is cache-affinity loss, not queueing.");
}

/// PRB-utilization ablation — the §4.2 footnote: 100 % single-user
/// allocation is *conservative*; multi-user traffic with varying PRB
/// utilization leaves more gaps for RT-OPEX to harvest.
pub fn run_prb(opts: &Opts) {
    header("Ablation — PRB utilization (§4.2 footnote)", "§4.2");
    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "utilization", "partitioned", "rt-opex", "gain ×"
    );
    for (label, range) in [
        ("100 % (paper)", None),
        ("60–100 %", Some((0.6, 1.0))),
        ("30–100 %", Some((0.3, 1.0))),
    ] {
        let mut rates = Vec::new();
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
        ] {
            let mut cfg = SimConfig::from_scenario(&opts.scenario(), 650);
            cfg.scheduler = sched;
            cfg.prb_util_range = range;
            rates.push(sim_run(&cfg).miss_rate());
        }
        println!(
            "{:>16} {:>14} {:>14} {:>10.1}",
            label,
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            rates[0] / rates[1].max(1e-9)
        );
    }
    println!(
        "expected: partial utilization lightens everyone, and the
partitioned/RT-OPEX miss ratio stays large or grows — the 100 % setting
understates RT-OPEX's advantage, exactly as the paper claims."
    );
}

/// Migration granularity: whole tasks (semi-partitioned) vs. subtasks
/// (RT-OPEX) — the Table 2 "granularity" column, quantified.
pub fn run_granularity(opts: &Opts) {
    header(
        "Ablation — migration granularity (Table 2)",
        "Table 2 / [14]",
    );
    println!(
        "{:>8} {:>13} {:>13} {:>13}",
        "RTT/2", "partitioned", "semi-part.", "rt-opex"
    );
    for rtt in [500u64, 600, 700] {
        let mut rates = Vec::new();
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::SemiPartitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
        ] {
            let mut cfg = SimConfig::from_scenario(&opts.scenario(), rtt);
            cfg.scheduler = sched;
            rates.push(sim_run(&cfg).miss_rate());
        }
        println!(
            "{:>8} {:>13} {:>13} {:>13}",
            format!("{rtt}µs"),
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            fmt_rate(rates[2])
        );
    }
    println!(
        "expected: whole-task migration ≈ partitioned — the misses come from
subframes whose serial time exceeds T_max, which moving the task cannot
fix; only subtask-level parallelism (RT-OPEX) does."
    );
}

/// Runs all ablations.
pub fn run(opts: &Opts) {
    run_delta(opts);
    run_policy(opts);
    run_recovery(opts);
    run_cache(opts);
    run_prb(opts);
    run_granularity(opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Opts {
        Opts {
            quick: true,
            ..Opts::default()
        }
    }

    #[test]
    fn huge_delta_kills_migration_but_not_correctness() {
        let mut cfg = SimConfig::from_scenario(&quick().scenario(), 600);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: 5_000 };
        let r = sim_run(&cfg);
        assert_eq!(r.migration.fft_migrated + r.migration.decode_migrated, 0);
        // Degenerates exactly to partitioned.
        let mut part = SimConfig::from_scenario(&quick().scenario(), 600);
        part.scheduler = SchedulerKind::Partitioned;
        let rp = sim_run(&part);
        assert_eq!(r.deadline.overall().missed, rp.deadline.overall().missed);
    }

    #[test]
    fn edf_equals_fifo_with_uniform_delay() {
        let mut e = SimConfig::from_scenario(&quick().scenario(), 500);
        e.scheduler = SchedulerKind::Global {
            cores: 8,
            policy: QueuePolicy::Edf,
        };
        let mut f = e.clone();
        f.scheduler = SchedulerKind::Global {
            cores: 8,
            policy: QueuePolicy::Fifo,
        };
        assert_eq!(
            sim_run(&e).deadline.overall().missed,
            sim_run(&f).deadline.overall().missed
        );
    }

    #[test]
    fn recovery_keeps_rtopex_bounded_by_partitioned() {
        let mut cfg = SimConfig::from_scenario(&quick().scenario(), 600);
        cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        cfg.overrun_prob = 0.5;
        cfg.overrun_factor = 3.0;
        let rto = sim_run(&cfg).miss_rate();
        let mut part = SimConfig::from_scenario(&quick().scenario(), 600);
        part.scheduler = SchedulerKind::Partitioned;
        let p = sim_run(&part).miss_rate();
        assert!(rto <= p + 1e-9, "rto {rto} vs part {p}");
    }

    #[test]
    fn whole_task_migration_barely_helps() {
        // Table 2's point: task granularity cannot beat the serial wall.
        let rate = |sched| {
            let mut cfg = SimConfig::from_scenario(&quick().scenario(), 650);
            cfg.scheduler = sched;
            sim_run(&cfg)
        };
        let part = rate(SchedulerKind::Partitioned);
        let semi = rate(SchedulerKind::SemiPartitioned);
        let rto = rate(SchedulerKind::RtOpex { delta_us: 20 });
        let (p, s, r) = (part.miss_rate(), semi.miss_rate(), rto.miss_rate());
        // Semi-partitioned is sandwiched: no better than RT-OPEX, not much
        // better than partitioned.
        assert!(r <= s, "rt-opex {r} vs semi {s}");
        assert!(s <= p + 1e-9, "semi {s} vs partitioned {p}");
        assert!(
            r < 0.5 * s.max(1e-9),
            "subtask granularity should clearly beat task granularity: {r} vs {s}"
        );
    }

    #[test]
    fn varying_prb_means_lighter_subframes() {
        let mut full = SimConfig::from_scenario(&quick().scenario(), 650);
        full.scheduler = SchedulerKind::Partitioned;
        let mut varied = full.clone();
        varied.prb_util_range = Some((0.3, 1.0));
        let rf = sim_run(&full);
        let rv = sim_run(&varied);
        // Lighter transport blocks decode faster on average…
        assert!(rv.proc_times_us.mean() < rf.proc_times_us.mean());
        // …and miss less.
        assert!(rv.deadline.overall().missed <= rf.deadline.overall().missed);
    }

    #[test]
    fn cache_penalties_explain_global_deficit() {
        let mut with = SimConfig::from_scenario(&quick().scenario(), 600);
        with.scheduler = SchedulerKind::Global {
            cores: 8,
            policy: QueuePolicy::Edf,
        };
        let mut without = with.clone();
        without.cache = CacheModel::free();
        let a = sim_run(&with).miss_rate();
        let b = sim_run(&without).miss_rate();
        assert!(b <= a, "no-cache {b} should not exceed with-cache {a}");
    }
}
