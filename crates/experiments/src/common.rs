//! Shared options and helpers for the experiment modules.

use rtopex_core::global::QueuePolicy;
use rtopex_sim::{run, SchedulerKind, SimConfig};
use rtopex_workload::Scenario;

/// Command-line options common to all experiments.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Quick mode: fewer subframes / trials (CI-friendly).
    pub quick: bool,
    /// Seed override.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            quick: false,
            seed: 0xC0DE,
        }
    }
}

impl Opts {
    /// Parses trailing CLI arguments (`--quick`, `--seed N`).
    pub fn parse(args: &[String]) -> Self {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    opts.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => panic!("unknown option: {other}"),
            }
        }
        opts
    }

    /// The evaluation scenario at this option level.
    pub fn scenario(&self) -> Scenario {
        let mut s = if self.quick {
            let mut s = Scenario::paper_default();
            s.subframes = 5_000;
            s
        } else {
            Scenario::paper_default()
        };
        s.seed = self.seed;
        s
    }
}

/// The four schedulers compared throughout the evaluation.
pub fn contenders() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("partitioned", SchedulerKind::Partitioned),
        (
            "global-8",
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
        ),
        (
            "global-16",
            SchedulerKind::Global {
                cores: 16,
                policy: QueuePolicy::Edf,
            },
        ),
        ("rt-opex", SchedulerKind::RtOpex { delta_us: 20 }),
    ]
}

/// Runs one simulator configuration and returns the miss rate.
pub fn miss_rate(opts: &Opts, rtt_half_us: u64, sched: SchedulerKind) -> f64 {
    let mut cfg = SimConfig::from_scenario(&opts.scenario(), rtt_half_us);
    cfg.scheduler = sched;
    run(&cfg).miss_rate()
}

/// Formats a rate for tabular output (scientific for small values).
pub fn fmt_rate(r: f64) -> String {
    if r == 0.0 {
        "0".to_string()
    } else if r < 0.01 {
        format!("{r:.2e}")
    } else {
        format!("{r:.4}")
    }
}

/// Prints a section header.
pub fn header(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("    (reproduces {paper_ref})");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let o = Opts::parse(&[]);
        assert!(!o.quick);
        let o = Opts::parse(&["--quick".into(), "--seed".into(), "7".into()]);
        assert!(o.quick);
        assert_eq!(o.seed, 7);
    }

    #[test]
    #[should_panic(expected = "unknown option")]
    fn unknown_flag_panics() {
        Opts::parse(&["--frobnicate".into()]);
    }

    #[test]
    fn quick_scenario_is_smaller() {
        let q = Opts {
            quick: true,
            ..Opts::default()
        };
        assert!(q.scenario().subframes < Opts::default().scenario().subframes);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(0.0), "0");
        assert_eq!(fmt_rate(0.5), "0.5000");
        assert!(fmt_rate(1.7e-4).contains('e'));
    }

    #[test]
    fn four_contenders() {
        assert_eq!(contenders().len(), 4);
    }
}
