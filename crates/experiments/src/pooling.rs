//! Fleet pooling gain — cells sustained per core as the fleet grows.
//!
//! The consolidation argument (§1, §6): a C-RAN operator pools many
//! cells onto a fleet of commodity hosts, and a scheduler that shares
//! idle cycles lets each fixed core budget carry more cells. This
//! experiment holds the per-host budget at [`CORE_BUDGET`] cores, sweeps
//! the aggregated cells per host upward, and reports — per scheduler
//! mode and per fleet size `H ∈ {1 … 64}` — the largest cell count whose
//! *fleet-wide* deadline-miss rate stays within [`MISS_BUDGET`].
//!
//! Fleet size matters even though hosts run independently: host `i`'s
//! trace mix is rotated by `i` (see [`rtopex_sim::host_config`]), so a
//! larger fleet samples more heterogeneous cell mixes and its capacity is
//! set by the unluckier hosts — the fleet curve `cells/core vs H` decays
//! toward an asymptote. The decay fits `y(H) = a + b/H` well (each added
//! host dilutes any single host's influence by `1/H`); the fitted curve
//! is what the analyzer's fleet gate extrapolates from, and
//! [`SHIPPED_FLEET_CONFIGS`] are the deployments it checks.
//!
//! The four modes mirror the real runtime's contenders: partitioned,
//! global-EDF over the shared budget, and RT-OPEX with the two measured
//! migration costs — δ = 60 µs for the mutex-mailbox path and δ = 20 µs
//! for the lock-free steal path.

use crate::common::{fmt_rate, header, Opts};
use rtopex_core::global::QueuePolicy;
use rtopex_sim::{run_fleet, FleetConfig, SchedulerKind, SimConfig};

/// Per-host core budget (the paper's evaluation node has 8 usable
/// processing cores).
pub const CORE_BUDGET: usize = 8;

/// Fleet-wide deadline-miss budget a configuration must stay within to
/// count as sustained — the same < 0.5 % HARQ-recoverable threshold the
/// cluster experiment uses, sitting just above the partitioned
/// scheduler's irreducible platform-jitter miss floor at 500 µs (≈ 0.3 %,
/// Fig. 15) so capacity measures load, not the floor.
pub const MISS_BUDGET: f64 = 5e-3;

/// One-way transport latency for the sweep (the paper's midpoint).
pub const RTT_HALF_US: u64 = 500;

/// Sweep ceiling on aggregated cells per host.
pub const MAX_CELLS_PER_HOST: usize = 12;

/// Fleet sizes swept at full scale.
pub const HOSTS_FULL: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Fleet sizes swept under `--quick`.
pub const HOSTS_QUICK: [usize; 3] = [1, 2, 4];

/// Total simulated subframes budgeted per sweep point (split across
/// hosts and cells so every point costs about the same wall-clock).
const SUBFRAME_BUDGET: usize = 400_000;
const SUBFRAME_BUDGET_QUICK: usize = 48_000;

/// A deployment the fleet-level schedulability gate checks: `hosts`
/// hosts of [`CORE_BUDGET`] cores, each aggregating `cells_per_host`
/// cells under `mode`. `cargo xtask analyze` re-fits the pooling curve
/// from `BENCH_sim.json` and flags any deployment whose cell count
/// exceeds the fitted capacity at its fleet size.
#[derive(Clone, Copy, Debug)]
pub struct FleetDeployment {
    /// Deployment label (stable — the analyzer reports it).
    pub name: &'static str,
    /// Fleet size in hosts.
    pub hosts: usize,
    /// Scheduler mode name (must match a [`modes`] entry).
    pub mode: &'static str,
    /// Aggregated cells per host.
    pub cells_per_host: usize,
}

/// The deployments shipped with the repo, gated by `cargo xtask analyze`.
/// Cell counts come from the committed full-scale pooling run in
/// `BENCH_sim.json`.
pub const SHIPPED_FLEET_CONFIGS: [FleetDeployment; 3] = [
    FleetDeployment {
        name: "edge-4",
        hosts: 4,
        mode: "rtopex-steal",
        cells_per_host: 4,
    },
    FleetDeployment {
        name: "metro-16",
        hosts: 16,
        mode: "rtopex-steal",
        cells_per_host: 4,
    },
    FleetDeployment {
        name: "region-64",
        hosts: 64,
        mode: "partitioned",
        cells_per_host: 4,
    },
];

/// The four scheduler modes the pooling sweep compares.
pub fn modes() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        ("partitioned", SchedulerKind::Partitioned),
        (
            "global-edf",
            SchedulerKind::Global {
                cores: CORE_BUDGET,
                policy: QueuePolicy::Edf,
            },
        ),
        ("rtopex-mutex", SchedulerKind::RtOpex { delta_us: 60 }),
        ("rtopex-steal", SchedulerKind::RtOpex { delta_us: 20 }),
    ]
}

/// The fleet sizes at this option level.
pub fn hosts_grid(quick: bool) -> &'static [usize] {
    if quick {
        &HOSTS_QUICK
    } else {
        &HOSTS_FULL
    }
}

/// Builds the fleet configuration for one sweep point, or `None` when
/// the point is infeasible by construction (a partitioned-family mapping
/// needs at least one core per cell, so `cells > CORE_BUDGET` cannot be
/// laid out; the global scheduler has no such floor — its cells share
/// the queue).
pub fn pooling_config(
    opts: &Opts,
    hosts: usize,
    cells: usize,
    kind: SchedulerKind,
) -> Option<FleetConfig> {
    let mut cfg = SimConfig::from_scenario(&opts.scenario(), RTT_HALF_US);
    cfg.num_bs = cells;
    cfg.scheduler = kind;
    // Fleet sweeps keep constant memory per host: counters + the
    // processing-time histogram only.
    cfg.record_samples = false;
    let budget = if opts.quick {
        SUBFRAME_BUDGET_QUICK
    } else {
        SUBFRAME_BUDGET
    };
    cfg.subframes = (budget / (hosts * cells)).clamp(500, 30_000);
    match kind {
        SchedulerKind::Global { .. } => {}
        _ => {
            if cells > CORE_BUDGET {
                return None;
            }
            let per = (CORE_BUDGET / cells).max(1);
            cfg.cores_per_bs = Some(per);
            // Cores the ⌊C/A⌋ layout strands: partitioned cannot touch
            // them, RT-OPEX migrates subtasks into them — the intra-host
            // half of the pooling gain.
            cfg.spare_cores = CORE_BUDGET - cells * per;
        }
    }
    Some(FleetConfig {
        base: cfg,
        hosts,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// One sweep point's outcome.
#[derive(Clone, Copy, Debug)]
pub struct PoolingPoint {
    /// Fleet size.
    pub hosts: usize,
    /// Aggregated cells per host.
    pub cells: usize,
    /// Fleet-wide deadline-miss rate (1.0 for infeasible layouts).
    pub miss: f64,
}

/// A mode's full pooling curve.
#[derive(Clone, Debug)]
pub struct ModeCurve {
    /// Mode name.
    pub name: &'static str,
    /// Fleet sizes swept.
    pub hosts: Vec<usize>,
    /// Largest sustained cells/host at each fleet size (leading run).
    pub a_max: Vec<usize>,
    /// Every measured point (for the tables / JSON dump).
    pub points: Vec<PoolingPoint>,
    /// `cells/core = a + b/H` fitted over the sweep.
    pub fit: InverseFit,
}

/// Least-squares fit of `y = a + b·(1/hosts)` — the pooling curve's
/// shape (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InverseFit {
    /// Fleet-scale asymptote (cells per core as `H → ∞`).
    pub a: f64,
    /// Small-fleet surplus coefficient.
    pub b: f64,
}

impl InverseFit {
    /// Predicted cells per core at a fleet of `hosts` hosts.
    pub fn cells_per_core(&self, hosts: usize) -> f64 {
        self.a + self.b / hosts as f64
    }

    /// Predicted whole-cell capacity of one [`CORE_BUDGET`]-core host in
    /// a fleet of `hosts` hosts.
    pub fn cells_per_host(&self, hosts: usize) -> usize {
        (self.cells_per_core(hosts) * CORE_BUDGET as f64).floor() as usize
    }
}

/// Fits `y = a + b/H` by least squares in `x = 1/H`. With a single
/// point the fit is flat (`b = 0`).
pub fn fit_inverse(hosts: &[usize], y: &[f64]) -> InverseFit {
    assert_eq!(hosts.len(), y.len(), "fit needs one y per fleet size");
    assert!(!hosts.is_empty(), "fit needs at least one point");
    let n = hosts.len() as f64;
    let xs: Vec<f64> = hosts.iter().map(|&h| 1.0 / h as f64).collect();
    let xbar = xs.iter().sum::<f64>() / n;
    let ybar = y.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - xbar) * (x - xbar)).sum();
    if sxx == 0.0 {
        return InverseFit { a: ybar, b: 0.0 };
    }
    let sxy: f64 = xs
        .iter()
        .zip(y)
        .map(|(x, yv)| (x - xbar) * (yv - ybar))
        .sum();
    let b = sxy / sxx;
    InverseFit {
        a: ybar - b * xbar,
        b,
    }
}

/// Sweeps cells/host upward at one fleet size until the fleet miss rate
/// leaves the budget; returns the sustained count (leading run — once a
/// mode collapses, recoveries at higher counts don't count) and the
/// measured points.
pub fn a_max_for(opts: &Opts, hosts: usize, kind: SchedulerKind) -> (usize, Vec<PoolingPoint>) {
    let mut a_max = 0;
    let mut points = Vec::new();
    for cells in 1..=MAX_CELLS_PER_HOST {
        let miss = match pooling_config(opts, hosts, cells, kind) {
            Some(fc) => run_fleet(&fc).miss_rate(),
            None => 1.0,
        };
        points.push(PoolingPoint { hosts, cells, miss });
        if miss <= MISS_BUDGET {
            a_max = cells;
        } else {
            break;
        }
    }
    (a_max, points)
}

/// Runs one mode over the whole fleet-size grid and fits its curve.
pub fn sweep_mode(opts: &Opts, name: &'static str, kind: SchedulerKind) -> ModeCurve {
    let hosts: Vec<usize> = hosts_grid(opts.quick).to_vec();
    let mut a_max = Vec::with_capacity(hosts.len());
    let mut points = Vec::new();
    for &h in &hosts {
        let (am, pts) = a_max_for(opts, h, kind);
        a_max.push(am);
        points.extend(pts);
    }
    let y: Vec<f64> = a_max
        .iter()
        .map(|&a| a as f64 / CORE_BUDGET as f64)
        .collect();
    let fit = fit_inverse(&hosts, &y);
    ModeCurve {
        name,
        hosts,
        a_max,
        points,
        fit,
    }
}

/// Runs the full experiment: every mode's curve plus the fitted
/// parameters and the shipped-deployment check.
pub fn sweep_all(opts: &Opts) -> Vec<ModeCurve> {
    modes()
        .into_iter()
        .map(|(name, kind)| sweep_mode(opts, name, kind))
        .collect()
}

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header(
        "Pooling — cells per core vs. fleet size",
        "§1/§6 consolidation at fleet scale",
    );
    println!(
        "{CORE_BUDGET}-core hosts, RTT/2 = {RTT_HALF_US} µs, fleet miss budget {MISS_BUDGET:.0e}"
    );
    let curves = sweep_all(opts);
    let hosts = hosts_grid(opts.quick);
    println!(
        "{:>14} {}  {:>18}",
        "mode",
        hosts.iter().map(|h| format!("{h:>5}")).collect::<String>(),
        "fit a + b/H"
    );
    for c in &curves {
        println!(
            "{:>14} {}  {:>8.3} + {:.3}/H",
            c.name,
            c.a_max
                .iter()
                .map(|a| format!("{a:>5}"))
                .collect::<String>(),
            c.fit.a,
            c.fit.b
        );
    }
    println!("\nsustained cells/host by fleet size (columns: H); curve is cells/core");
    for c in &curves {
        let worst = c.points.iter().filter(|p| p.miss > MISS_BUDGET).count();
        println!(
            "{:>14}: asymptote {:.3} cells/core ({} over-budget points measured)",
            c.name, c.fit.a, worst
        );
    }
    println!("\nshipped deployments vs fitted capacity:");
    for d in SHIPPED_FLEET_CONFIGS {
        let fit = curves
            .iter()
            .find(|c| c.name == d.mode)
            .map(|c| c.fit)
            .expect("shipped mode swept");
        let cap = fit.cells_per_host(d.hosts);
        let verdict = if d.cells_per_host <= cap {
            "ok"
        } else {
            "OVER"
        };
        println!(
            "{:>14}: {} hosts × {} cells ({}) — fitted capacity {} cells/host [{verdict}]",
            d.name, d.hosts, d.cells_per_host, d.mode, cap
        );
    }
    let part = curves.iter().find(|c| c.name == "partitioned").unwrap();
    let steal = curves.iter().find(|c| c.name == "rtopex-steal").unwrap();
    println!(
        "\npooling gain at H = {}: rtopex-steal {} vs partitioned {} cells/host ({})",
        hosts[hosts.len() - 1],
        steal.a_max[steal.a_max.len() - 1],
        part.a_max[part.a_max.len() - 1],
        fmt_rate(
            steal.a_max[steal.a_max.len() - 1] as f64
                / part.a_max[part.a_max.len() - 1].max(1) as f64
                - 1.0
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Opts {
        Opts {
            quick: true,
            ..Opts::default()
        }
    }

    #[test]
    fn fit_recovers_exact_inverse_law() {
        let hosts = [1usize, 2, 4, 8];
        let y: Vec<f64> = hosts.iter().map(|&h| 0.5 + 0.25 / h as f64).collect();
        let fit = fit_inverse(&hosts, &y);
        assert!((fit.a - 0.5).abs() < 1e-12, "a = {}", fit.a);
        assert!((fit.b - 0.25).abs() < 1e-12, "b = {}", fit.b);
        assert_eq!(fit.cells_per_host(2), (0.625 * 8.0) as usize);
    }

    #[test]
    fn fit_degenerates_gracefully() {
        let f = fit_inverse(&[4], &[0.5]);
        assert_eq!(f, InverseFit { a: 0.5, b: 0.0 });
    }

    #[test]
    fn partitioned_family_cannot_exceed_the_core_budget() {
        let o = opts();
        assert!(pooling_config(&o, 1, CORE_BUDGET + 1, SchedulerKind::Partitioned).is_none());
        assert!(pooling_config(
            &o,
            1,
            CORE_BUDGET + 1,
            SchedulerKind::Global {
                cores: CORE_BUDGET,
                policy: rtopex_core::global::QueuePolicy::Edf,
            }
        )
        .is_some());
    }

    #[test]
    fn layout_spends_the_whole_budget() {
        let o = opts();
        for cells in 1..=CORE_BUDGET {
            let fc = pooling_config(&o, 1, cells, SchedulerKind::RtOpex { delta_us: 20 })
                .expect("feasible");
            let per = fc.base.cores_per_bs.expect("override set");
            assert_eq!(
                per * cells + fc.base.spare_cores,
                CORE_BUDGET,
                "{cells} cells"
            );
        }
    }

    #[test]
    fn single_host_single_cell_is_sustained_by_everyone() {
        let o = opts();
        for (name, kind) in modes() {
            let fc = pooling_config(&o, 1, 1, kind).expect("feasible");
            let miss = run_fleet(&fc).miss_rate();
            assert!(miss <= MISS_BUDGET, "{name}: {miss}");
        }
    }

    #[test]
    fn steal_sustains_at_least_partitioned() {
        let o = opts();
        let (p, _) = a_max_for(&o, 2, SchedulerKind::Partitioned);
        let (s, _) = a_max_for(&o, 2, SchedulerKind::RtOpex { delta_us: 20 });
        assert!(s >= p, "steal {s} vs partitioned {p}");
    }

    #[test]
    fn shipped_deployments_reference_swept_modes() {
        let names: Vec<&str> = modes().iter().map(|(n, _)| *n).collect();
        for d in SHIPPED_FLEET_CONFIGS {
            assert!(names.contains(&d.mode), "{} mode {}", d.name, d.mode);
            assert!(d.cells_per_host <= MAX_CELLS_PER_HOST);
        }
    }
}
