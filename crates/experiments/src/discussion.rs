//! §5 "Discussion" — the paper's qualitative claims about operator
//! deployments, made quantitative:
//!
//! * **B. Flexibility to resources** — spare cores appear (a VM is added,
//!   another tenant departs): a partitioned schedule cannot use them,
//!   RT-OPEX automatically migrates into them; and a core *fails*:
//!   both partitioned-based schedulers lose that core's subframes, the
//!   global scheduler degrades gracefully.
//! * **C. Flexibility to load** — under a doubled burst rate, RT-OPEX
//!   absorbs the extra high-MCS subframes that partitioned drops.

use crate::common::{fmt_rate, header, Opts};
use rtopex_core::global::QueuePolicy;
use rtopex_sim::{run as sim_run, SchedulerKind, SimConfig};

/// §5-B: spare cores.
pub fn run_spares(opts: &Opts) {
    header(
        "§5-B — added resources (spare cores), RTT/2 = 700 µs",
        "Discussion §5-B",
    );
    println!(
        "{:>12} {:>14} {:>14}",
        "spare cores", "partitioned", "rt-opex"
    );
    for spares in [0usize, 1, 2, 4] {
        let mut rates = Vec::new();
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
        ] {
            let mut cfg = SimConfig::from_scenario(&opts.scenario(), 700);
            cfg.scheduler = sched;
            cfg.spare_cores = spares;
            rates.push(sim_run(&cfg).miss_rate());
        }
        println!(
            "{:>12} {:>14} {:>14}",
            spares,
            fmt_rate(rates[0]),
            fmt_rate(rates[1])
        );
    }
    println!("expected: partitioned is flat (cannot use unassigned cores);\nRT-OPEX improves monotonically — \"automatically exploit any added resources\".");
}

/// §5-B: a core failure mid-run.
pub fn run_failure(opts: &Opts) {
    header(
        "§5-B — core 3 fails halfway through the run (RTT/2 = 500 µs)",
        "Discussion §5-B",
    );
    let scenario = opts.scenario();
    let fail_at_us = (scenario.subframes as u64 / 2) * 1_000;
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "", "partitioned", "rt-opex", "global-8"
    );
    for (label, failed) in [
        ("healthy", None),
        ("core 3 dies", Some((3usize, fail_at_us))),
    ] {
        let mut rates = Vec::new();
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
        ] {
            let mut cfg = SimConfig::from_scenario(&scenario, 500);
            cfg.scheduler = sched;
            cfg.failed_core = failed;
            rates.push(sim_run(&cfg).miss_rate());
        }
        println!(
            "{:>14} {:>12} {:>12} {:>12}",
            label,
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            fmt_rate(rates[2])
        );
    }
    println!("expected: the static mapping loses ~1/8 of subframes (half the run,\none of eight cores); global-8 adapts — \"a global schedule, by virtue of\nits design, adapts to the underlying resources\". (The failure model only\napplies to the partitioned-based engines; global keeps all 8 workers.)");
}

/// §5-C: load surges.
pub fn run_load_flex(opts: &Opts) {
    header(
        "§5-C — flexibility to load (burst rate ×4), RTT/2 = 600 µs",
        "Discussion §5-C",
    );
    println!(
        "{:>12} {:>14} {:>14}",
        "burst rate", "partitioned", "rt-opex"
    );
    for (label, mult) in [("nominal", 1.0f64), ("×4", 4.0)] {
        let mut rates = Vec::new();
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
        ] {
            let mut cfg = SimConfig::from_scenario(&opts.scenario(), 600);
            cfg.scheduler = sched;
            for tp in cfg.traces.iter_mut() {
                tp.burst_enter *= mult;
            }
            rates.push(sim_run(&cfg).miss_rate());
        }
        println!(
            "{:>12} {:>14} {:>14}",
            label,
            fmt_rate(rates[0]),
            fmt_rate(rates[1])
        );
    }
    println!("expected: the miss-rate gap widens with burstiness — RT-OPEX \"fills\nthe scheduling gaps … it therefore adapts to the variations in the load\".");
}

/// Runs all §5 experiments.
pub fn run(opts: &Opts) {
    run_spares(opts);
    run_failure(opts);
    run_load_flex(opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Opts {
        Opts {
            quick: true,
            ..Opts::default()
        }
    }

    #[test]
    fn spare_cores_help_rtopex_not_partitioned() {
        let base = |sched, spares| {
            let mut cfg = SimConfig::from_scenario(&quick().scenario(), 700);
            cfg.scheduler = sched;
            cfg.spare_cores = spares;
            sim_run(&cfg)
        };
        let p0 = base(SchedulerKind::Partitioned, 0)
            .deadline
            .overall()
            .missed;
        let p4 = base(SchedulerKind::Partitioned, 4)
            .deadline
            .overall()
            .missed;
        assert_eq!(p0, p4, "partitioned cannot use spare cores");
        let r0 = base(SchedulerKind::RtOpex { delta_us: 20 }, 0);
        let r4 = base(SchedulerKind::RtOpex { delta_us: 20 }, 4);
        assert!(
            r4.deadline.overall().missed <= r0.deadline.overall().missed,
            "spares must not hurt RT-OPEX"
        );
        assert!(
            r4.migration.decode_migrated > r0.migration.decode_migrated,
            "spares should absorb more migrations"
        );
    }

    #[test]
    fn core_failure_loses_the_static_share() {
        let scenario = quick().scenario();
        let fail_at = (scenario.subframes as u64 / 2) * 1_000;
        let mut cfg = SimConfig::from_scenario(&scenario, 500);
        cfg.scheduler = SchedulerKind::Partitioned;
        cfg.failed_core = Some((3, fail_at));
        let r = sim_run(&cfg);
        // Core 3 = BS 1, odd subframes → 1/8 of all subframes for half the
        // run ≈ 6.25 % of the total.
        let rate = r.deadline.overall().rate();
        assert!(
            (0.04..0.09).contains(&rate),
            "failure should cost ≈ 6 %: {rate}"
        );
        // The loss is concentrated on the failed core's basestation.
        assert!(r.deadline.bs_rate(1) > 0.1);
        assert!(r.deadline.bs_rate(0) < 0.02);
    }

    #[test]
    fn rtopex_routes_around_nothing_but_still_not_worse() {
        // RT-OPEX shares the static mapping, so a failed core costs it the
        // same share — but migration must not make anything *worse*, and
        // the dead core must never be used as a host.
        let scenario = quick().scenario();
        let fail_at = 1_000_000u64; // 1 s in
        let mut p = SimConfig::from_scenario(&scenario, 500);
        p.scheduler = SchedulerKind::Partitioned;
        p.failed_core = Some((0, fail_at));
        let mut r = SimConfig::from_scenario(&scenario, 500);
        r.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        r.failed_core = Some((0, fail_at));
        let pm = sim_run(&p).deadline.overall().missed;
        let rm = sim_run(&r).deadline.overall().missed;
        assert!(rm <= pm, "rt-opex {rm} vs partitioned {pm}");
    }
}
