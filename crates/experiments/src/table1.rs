//! Table 1 — linear processing-time model estimates.
//!
//! The paper fits `T = w0 + w1·N + w2·K + w3·D·L` on 4×10⁶ testbed
//! measurements and reports (31.4, 169.1, 49.7, 93.0) µs with r² = 0.992.
//! We regenerate the table two ways:
//!
//! 1. **synthetic** — samples drawn from the calibrated task model plus
//!    the platform-error term, then refit (validates the OLS pipeline and
//!    shows the r² the error tail allows);
//! 2. **real PHY** — wall-clock measurements of the actual Rust decoder
//!    across MCS/SNR/antennas, then fit (absolute coefficients differ
//!    from the paper's OAI/Xeon numbers, but the *linear structure* — the
//!    claim of §2.1 — must hold, i.e. r² close to 1).

use crate::common::{header, Opts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_model::fit::{fit_proc_model, FitResult, ModelSample};
use rtopex_model::iters::IterationModel;
use rtopex_model::platform::PlatformJitter;
use rtopex_model::tasks::TaskTimeModel;
use rtopex_phy::channel::{AwgnChannel, ChannelModel};
use rtopex_phy::mcs::Mcs;
use rtopex_phy::params::Bandwidth;
use rtopex_phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};
use std::time::Instant;

fn print_fit(label: &str, fit: &FitResult) {
    println!(
        "{label:<12} w0={:>8.1}  w1={:>8.1}  w2={:>8.1}  w3={:>8.1}  r²={:.4}  (n={})",
        fit.model.w0, fit.model.w1, fit.model.w2, fit.model.w3, fit.r2, fit.n_samples
    );
}

/// Synthetic regeneration: model + platform error, then refit.
pub fn synthetic_fit(opts: &Opts) -> FitResult {
    let n = if opts.quick { 50_000 } else { 400_000 };
    let ttm = TaskTimeModel::paper_gpp();
    let iters = IterationModel::paper_gpp();
    let jitter = PlatformJitter::paper_gpp();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let bw = Bandwidth::Mhz10;
    let samples: Vec<ModelSample> = (0..n)
        .map(|_| {
            let mcs = Mcs::new(rng.gen_range(0..=27)).expect("valid");
            let ants = [1usize, 2, 4][rng.gen_range(0..3)];
            let snr: f64 = rng.gen_range(0.0..30.0);
            let d = mcs.subcarrier_load(bw);
            let o = iters.sample(mcs.index(), d, snr, &mut rng);
            let t = ttm.subframe_total(ants, mcs.modulation_order(), d, o.iterations as f64)
                + jitter.sample(&mut rng);
            ModelSample {
                n_antennas: ants,
                qm: mcs.modulation_order(),
                d_load: d,
                iters: o.iterations as f64,
                time_us: t,
            }
        })
        .collect();
    fit_proc_model(&samples).expect("rich design matrix")
}

/// Real-PHY regeneration: time the actual decoder and fit.
pub fn real_phy_fit(opts: &Opts) -> FitResult {
    // 1.4 MHz keeps per-decode cost low enough for hundreds of samples.
    let bw = Bandwidth::Mhz1_4;
    let reps = if opts.quick { 1 } else { 3 };
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x7AB1E);
    let mut samples = Vec::new();
    for &ants in &[1usize, 2, 4] {
        for mcs_idx in (0..=27).step_by(3) {
            let cfg = UplinkConfig::new(bw, ants, mcs_idx).expect("config");
            let tx = UplinkTx::new(cfg.clone());
            let payload: Vec<u8> = (0..cfg.transport_block_bytes())
                .map(|_| rng.gen())
                .collect();
            let sf = tx.encode_subframe(&payload).expect("encode");
            let rx = UplinkRx::new(cfg.clone());
            for &snr in &[10.0f64, 20.0, 30.0] {
                for _ in 0..reps {
                    let mut chan = AwgnChannel::new(snr);
                    let rx_samples = chan.apply(&sf.samples, ants, &mut rng);
                    let t0 = Instant::now();
                    let out = rx.decode_subframe(&rx_samples).expect("decode");
                    let us = t0.elapsed().as_secs_f64() * 1e6;
                    samples.push(ModelSample {
                        n_antennas: ants,
                        qm: cfg.mcs.modulation_order(),
                        d_load: cfg.mcs.subcarrier_load(bw),
                        iters: out.max_iterations() as f64,
                        time_us: us,
                    });
                }
            }
        }
    }
    fit_proc_model(&samples).expect("rich design matrix")
}

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Table 1 — model parameter estimates (µs)", "Table 1 (§2.1)");
    println!(
        "{:<12} w0={:>8.1}  w1={:>8.1}  w2={:>8.1}  w3={:>8.1}  r²={:.4}",
        "paper (GPP)", 31.4, 169.1, 49.7, 93.0, 0.992
    );
    let synth = synthetic_fit(opts);
    print_fit("synthetic", &synth);
    let real = real_phy_fit(opts);
    print_fit("real PHY", &real);
    println!(
        "note: real-PHY coefficients reflect this machine and the clarity-first\n\
         Rust kernels; the reproduced claim is the linear structure (r² ≈ 1)."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fit_recovers_paper_model() {
        let fit = synthetic_fit(&Opts {
            quick: true,
            ..Opts::default()
        });
        assert!((fit.model.w0 - 31.4).abs() < 15.0, "w0 {}", fit.model.w0);
        assert!((fit.model.w1 - 169.1).abs() < 5.0, "w1 {}", fit.model.w1);
        assert!((fit.model.w2 - 49.7).abs() < 5.0, "w2 {}", fit.model.w2);
        assert!((fit.model.w3 - 93.0).abs() < 3.0, "w3 {}", fit.model.w3);
        assert!(fit.r2 > 0.97, "r² {}", fit.r2);
    }

    #[test]
    fn real_phy_fit_is_linear() {
        // Wall-clock measurements on a shared single-CPU container are
        // noisy; retry once before judging, and keep the bar at "the
        // linear structure explains most of the variance".
        let mut best = None;
        for seed in [Opts::default().seed, 0xFEED] {
            let fit = real_phy_fit(&Opts { quick: true, seed });
            assert!(fit.model.w3 > 0.0, "w3 {}", fit.model.w3);
            if fit.r2 > 0.5 {
                best = Some(fit);
                break;
            }
            best = Some(fit);
        }
        let fit = best.expect("at least one fit");
        assert!(fit.r2 > 0.5, "r² {} on both attempts", fit.r2);
    }
}
