//! Fig. 17 — deadline misses vs. offered load at RTT/2 = 500 µs.
//!
//! One basestation's offered load (MCS, hence nominal PHY throughput) is
//! swept upward against the usual trace-driven background; the swept
//! basestation's miss rate is reported. Partitioned/global hold low miss
//! rates into the mid-20s Mbps and collapse toward 100 % by ≈ 30 Mbps;
//! RT-OPEX stretches the supported load ~15 % further in the paper
//! (31 vs 27 Mbps at the 1e-2 threshold) by harvesting the other
//! basestations' idle cycles.

use crate::common::{contenders, fmt_rate, header, Opts};
use rtopex_phy::mcs::Mcs;
use rtopex_phy::params::Bandwidth;
use rtopex_sim::{run as sim_run, SimConfig};

/// MCS grid for the load sweep.
pub const MCS_GRID: [u8; 10] = [13, 16, 19, 20, 22, 23, 24, 25, 26, 27];

/// Runs the sweep at RTT/2 = 500 µs; returns `(mbps, rates)` rows.
pub fn sweep(opts: &Opts) -> Vec<(f64, Vec<f64>)> {
    MCS_GRID
        .iter()
        .map(|&mcs| {
            let mbps = Mcs::new(mcs)
                .expect("valid")
                .nominal_throughput_mbps(Bandwidth::Mhz10);
            let rates = contenders()
                .into_iter()
                .map(|(_, sched)| {
                    let mut cfg = SimConfig::from_scenario(&opts.scenario(), 500);
                    cfg.scheduler = sched;
                    cfg.bs0_mcs = Some(mcs);
                    // Report the swept basestation's own miss rate.
                    sim_run(&cfg).deadline.bs_rate(0)
                })
                .collect();
            (mbps, rates)
        })
        .collect()
}

/// Highest offered load (Mbps) a contender sustains at miss ≤ `thresh`.
pub fn supported_load(rows: &[(f64, Vec<f64>)], contender: usize, thresh: f64) -> f64 {
    rows.iter()
        .filter(|(_, r)| r[contender] <= thresh)
        .map(|(m, _)| *m)
        .fold(0.0, f64::max)
}

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header(
        "Fig. 17 — deadline misses vs. load (RTT/2 = 500 µs)",
        "Fig. 17 (§4.3)",
    );
    let names: Vec<&str> = contenders().iter().map(|(n, _)| *n).collect();
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "MCS", "Mbps", names[0], names[1], names[2], names[3]
    );
    let rows = sweep(opts);
    for (mcs, (mbps, rates)) in MCS_GRID.iter().zip(&rows) {
        println!(
            "{:>6} {:>8.1} {:>12} {:>12} {:>12} {:>12}",
            mcs,
            mbps,
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            fmt_rate(rates[2]),
            fmt_rate(rates[3])
        );
    }
    let part = supported_load(&rows, 0, 1e-2);
    let rto = supported_load(&rows, 3, 1e-2);
    println!(
        "supported load at the 1e-2 threshold: partitioned {part:.1} Mbps, rt-opex {rto:.1} Mbps (+{:.0} %)",
        (rto / part - 1.0) * 100.0
    );
    println!("paper: 27 vs 31 Mbps (+15 %); all non-RT-OPEX miss 100 % at ≥ 30 Mbps");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sweep_shape() {
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        let rows = sweep(&opts);
        // Partitioned collapses at the top MCS…
        let top = &rows.last().unwrap().1;
        assert!(top[0] > 0.9, "partitioned @MCS27: {}", top[0]);
        // …while RT-OPEX sustains a strictly higher load at 1e-2.
        let part = supported_load(&rows, 0, 1e-2);
        let rto = supported_load(&rows, 3, 1e-2);
        assert!(
            rto > part,
            "rt-opex {rto} Mbps should exceed partitioned {part} Mbps"
        );
        // Low loads are easy for everyone.
        let low = &rows[0].1;
        assert!(low.iter().all(|&r| r < 1e-2), "misses at 13 Mbps: {low:?}");
    }
}
