//! Fig. 3 — variations in processing time.
//!
//! Four panels:
//! * (a) total time vs. MCS for L = 1..4 iterations (N = 2);
//! * (b) total time vs. MCS at SNR 10/20/30 dB (iterations sampled);
//! * (c) total time vs. antenna count;
//! * (d) the error-term distribution vs. the cyclictest-style stress
//!   benchmark — the order statistics that justify blaming the platform.

use crate::common::{header, Opts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtopex_model::iters::IterationModel;
use rtopex_model::platform::{PlatformJitter, StressBenchmark};
use rtopex_model::stats::Samples;
use rtopex_model::tasks::TaskTimeModel;
use rtopex_phy::mcs::Mcs;
use rtopex_phy::params::Bandwidth;

const BW: Bandwidth = Bandwidth::Mhz10;

/// Panel (a): time vs. MCS per iteration count.
pub fn run_a(_opts: &Opts) {
    header(
        "Fig. 3(a) — processing time vs. iterations (N = 2)",
        "Fig. 3(a)",
    );
    let ttm = TaskTimeModel::paper_gpp();
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9}",
        "MCS", "L=1", "L=2", "L=3", "L=4"
    );
    for mcs in (0..=27).step_by(3).chain([27]) {
        let m = Mcs::new(mcs).expect("valid");
        let d = m.subcarrier_load(BW);
        let row: Vec<f64> = (1..=4)
            .map(|l| ttm.subframe_total(2, m.modulation_order(), d, l as f64))
            .collect();
        println!(
            "{:>5} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
            mcs, row[0], row[1], row[2], row[3]
        );
    }
    let lo = TaskTimeModel::paper_gpp().subframe_total(
        2,
        2,
        Mcs::new(0).unwrap().subcarrier_load(BW),
        1.0,
    );
    let hi = TaskTimeModel::paper_gpp().subframe_total(
        2,
        6,
        Mcs::new(27).unwrap().subcarrier_load(BW),
        2.0,
    );
    println!(
        "MCS 0 (L=1) → MCS 27 (L=2): {:.0} → {:.0} µs (×{:.1})",
        lo,
        hi,
        hi / lo
    );
    println!("paper: 0.5 ms → 1.4 ms, a factor of 2.8; +345 µs per iteration at MCS 27");
}

/// Panel (b): time vs. MCS per SNR (iterations from the outcome model).
pub fn run_b(opts: &Opts) {
    header("Fig. 3(b) — processing time vs. SNR (N = 2)", "Fig. 3(b)");
    let ttm = TaskTimeModel::paper_gpp();
    let im = IterationModel::paper_gpp();
    let trials = if opts.quick { 500 } else { 5_000 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    println!("{:>5} {:>11} {:>11} {:>11}", "MCS", "10dB", "20dB", "30dB");
    for mcs in (1..=27).step_by(4).chain([25, 27]) {
        let m = Mcs::new(mcs).expect("valid");
        let d = m.subcarrier_load(BW);
        let mut row = Vec::new();
        for &snr in &[10.0, 20.0, 30.0] {
            let mean_t: f64 = (0..trials)
                .map(|_| {
                    let o = im.sample(mcs, d, snr, &mut rng);
                    ttm.subframe_total(2, m.modulation_order(), d, o.iterations as f64)
                })
                .sum::<f64>()
                / trials as f64;
            row.push(mean_t);
        }
        println!(
            "{:>5} {:>11.0} {:>11.0} {:>11.0}",
            mcs, row[0], row[1], row[2]
        );
    }
    println!("paper: dropping 20 dB → 10 dB adds > 50 % between MCS 13 and 25");
}

/// Panel (c): time vs. antenna count.
pub fn run_c(_opts: &Opts) {
    header("Fig. 3(c) — processing time vs. antennas", "Fig. 3(c)");
    let ttm = TaskTimeModel::paper_gpp();
    println!("{:>5} {:>9} {:>9} {:>9}", "MCS", "N=1", "N=2", "N=4");
    for mcs in [0u8, 9, 18, 27] {
        let m = Mcs::new(mcs).expect("valid");
        let d = m.subcarrier_load(BW);
        let row: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&n| ttm.subframe_total(n, m.modulation_order(), d, 2.0))
            .collect();
        println!("{:>5} {:>9.0} {:>9.0} {:>9.0}", mcs, row[0], row[1], row[2]);
    }
    println!("paper: each additional antenna adds ≈ 169 µs (Table 1's w1)");
}

/// Panel (d): error-term CCDF vs. the stress benchmark.
pub fn run_d(opts: &Opts) {
    header(
        "Fig. 3(d) — error distribution vs. cyclictest benchmark",
        "Fig. 3(d)",
    );
    let n = if opts.quick { 200_000 } else { 2_000_000 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let jit = PlatformJitter::paper_gpp();
    let bench = StressBenchmark::paper_gpp();
    let mut err = Samples::from_vec((0..n).map(|_| jit.sample(&mut rng).abs()).collect());
    let mut lat = Samples::from_vec((0..n).map(|_| bench.sample(&mut rng)).collect());
    println!("{:>10} {:>14} {:>14}", "x (µs)", "P(|E|>x)", "P(lat>x)");
    for x in [50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0] {
        println!(
            "{:>10.0} {:>14.2e} {:>14.2e}",
            x,
            err.ccdf_at(x),
            lat.ccdf_at(x)
        );
    }
    println!(
        "|E| p99.9 = {:.0} µs; benchmark mean = {:.0} µs",
        err.quantile(0.999),
        lat.mean()
    );
    println!("paper: 99.9 % of |E| < 150 µs; benchmark mean 0.2 ms with a ~1e-5 tail > 0.4 ms");
}

/// Runs all four panels.
pub fn run(opts: &Opts) {
    run_a(opts);
    run_b(opts);
    run_c(opts);
    run_d(opts);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_execute() {
        let o = Opts {
            quick: true,
            ..Opts::default()
        };
        run(&o); // smoke: all panels print without panicking
    }
}
