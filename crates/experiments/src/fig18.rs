//! Fig. 18 — processing times of local vs. migrated tasks (real threads).
//!
//! The paper measures the migration overhead by comparing a subtask's
//! execution time on its own core with its end-to-end time when migrated:
//! FFT 108 → 126 µs, decode +≈20 µs — a fixed cost dominated by pulling
//! shared state into the remote core's cache. We repeat the measurement
//! with the real PHY kernels and real mailboxes.

use crate::common::{header, Opts};
use rtopex_phy::params::Bandwidth;
use rtopex_phy::tasks::TaskKind;
use rtopex_runtime::affinity::num_cpus;
use rtopex_runtime::measure_migration_overhead;

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Fig. 18 — local vs. migrated task times", "Fig. 18 (§4.4)");
    let trials = if opts.quick { 8 } else { 40 };
    println!("machine CPUs: {}", num_cpus());
    println!(
        "{:>8} {:>16} {:>18} {:>12}",
        "task", "local p50 (µs)", "migrated p50 (µs)", "δ (µs)"
    );
    for (task, bw, mcs) in [
        (TaskKind::Fft, Bandwidth::Mhz10, 27u8),
        (TaskKind::Decode, Bandwidth::Mhz5, 16u8),
    ] {
        let mut m = measure_migration_overhead(bw, 2, mcs, task, trials);
        println!(
            "{:>8} {:>16.0} {:>18.0} {:>12.0}",
            task.label(),
            m.local_us.median(),
            m.migrated_us.median(),
            m.delta_us
        );
    }
    println!("paper: FFT 108 → 126 µs and decode +≈20 µs — a fixed per-subtask cost;");
    println!(
        "note: on this substrate δ reflects channel handoff + thread wake-up + cache transfer."
    );
}
