//! Fig. 14 — basestation load CDFs.
//!
//! The paper plots the load distribution of the four measured towers. We
//! print the empirical CDF of each synthetic tower at the same grid.

use crate::common::{header, Opts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtopex_model::stats::Samples;
use rtopex_workload::{LoadTrace, TraceParams};

/// Runs the experiment.
pub fn run(opts: &Opts) {
    header("Fig. 14 — basestation load distribution", "Fig. 14 (§4.1)");
    let n = if opts.quick { 30_000 } else { 200_000 };
    let mut samples: Vec<Samples> = (0..4)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(t as u64 * 7919));
            Samples::from_vec(LoadTrace::new(TraceParams::tower(t)).generate(n, &mut rng))
        })
        .collect();
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8}",
        "load", "BS 1", "BS 2", "BS 3", "BS 4"
    );
    for grid in (0..=10).map(|i| i as f64 / 10.0) {
        let row: Vec<f64> = samples.iter_mut().map(|s| 1.0 - s.ccdf_at(grid)).collect();
        println!(
            "{:>6.1} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            grid, row[0], row[1], row[2], row[3]
        );
    }
    print!("median:");
    for s in samples.iter_mut() {
        print!(" {:>7.3}", s.median());
    }
    println!();
    println!("paper: four towers with visibly distinct CDFs over [0, 1]");
}
