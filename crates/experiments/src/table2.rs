//! Table 2 — qualitative comparison of related C-RAN scheduling systems.

use crate::common::{header, Opts};

/// Runs the experiment (prints the paper's comparison matrix).
pub fn run(_opts: &Opts) {
    header("Table 2 — related scheduling approaches", "Table 2 (§5)");
    println!(
        "{:<14} {:>10} {:>18} {:>12}",
        "system", "migration", "compute resources", "granularity"
    );
    for (name, mig, res, gran) in [
        ("PRAN [31]", "yes", "dynamic", "subtask"),
        ("CloudIQ [15]", "no", "fixed", "task"),
        ("WiBench [34]", "no", "fixed", "subtask"),
        ("BigStation [32]", "no", "fixed", "subtask"),
        ("RT-OPEX", "yes", "fixed/dynamic", "subtask"),
    ] {
        println!("{name:<14} {mig:>10} {res:>18} {gran:>12}");
    }
    println!("RT-OPEX is the only approach combining runtime migration with subtask\ngranularity on either fixed or dynamic resources (work-stealing applied to C-RAN).");
}
