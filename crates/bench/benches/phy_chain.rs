//! End-to-end PHY chain benchmarks: the cost of one subframe through the
//! full transmit and receive paths — the real-world counterpart of the
//! paper's Fig. 3 processing-time measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_phy::channel::{AwgnChannel, ChannelModel};
use rtopex_phy::params::Bandwidth;
use rtopex_phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};
use rtopex_phy::Cf32;
use std::time::Duration;

struct Prepared {
    rx: UplinkRx,
    samples: Vec<Vec<Cf32>>,
    tx: UplinkTx,
    payload: Vec<u8>,
}

fn prepare(bw: Bandwidth, antennas: usize, mcs: u8) -> Prepared {
    let cfg = UplinkConfig::new(bw, antennas, mcs).expect("config");
    let tx = UplinkTx::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(9);
    let payload: Vec<u8> = (0..cfg.transport_block_bytes())
        .map(|_| rng.gen())
        .collect();
    let sf = tx.encode_subframe(&payload).expect("encode");
    let mut chan = AwgnChannel::new(30.0);
    let samples = chan.apply(&sf.samples, antennas, &mut rng);
    Prepared {
        rx: UplinkRx::new(cfg),
        samples,
        tx,
        payload,
    }
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("subframe_decode");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    // MCS sweep at 1.4 MHz (fast enough to iterate) — the Fig. 3(a) axis.
    for mcs in [0u8, 9, 18, 27] {
        let p = prepare(Bandwidth::Mhz1_4, 2, mcs);
        g.bench_with_input(BenchmarkId::new("mhz1_4_mcs", mcs), &mcs, |b, _| {
            b.iter(|| p.rx.decode_subframe(&p.samples).expect("decode"))
        });
    }
    // Antenna sweep — the Fig. 3(c) axis.
    for ants in [1usize, 2, 4] {
        let p = prepare(Bandwidth::Mhz1_4, ants, 16);
        g.bench_with_input(BenchmarkId::new("mhz1_4_antennas", ants), &ants, |b, _| {
            b.iter(|| p.rx.decode_subframe(&p.samples).expect("decode"))
        });
    }
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("subframe_encode");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for mcs in [0u8, 27] {
        let p = prepare(Bandwidth::Mhz1_4, 1, mcs);
        g.bench_with_input(BenchmarkId::new("mhz1_4_mcs", mcs), &mcs, |b, _| {
            b.iter(|| p.tx.encode_subframe(&p.payload).expect("encode"))
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("stages");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let p = prepare(Bandwidth::Mhz5, 2, 20);
    // One FFT subtask (antenna-symbol) — the paper's smallest migration unit.
    let job = {
        let mut job = p.rx.start_job(&p.samples).expect("job");
        for i in 0..job.fft_subtask_count() {
            let out = job.run_fft_subtask(i);
            job.absorb_fft(out);
        }
        job.finish_fft();
        for i in 0..job.demod_subtask_count() {
            let out = job.run_demod_subtask(i);
            job.absorb_demod(out);
        }
        job
    };
    g.bench_function("fft_subtask", |b| b.iter(|| job.run_fft_subtask(0)));
    g.bench_function("demod_subtask", |b| b.iter(|| job.run_demod_subtask(0)));
    g.bench_function("decode_subtask", |b| b.iter(|| job.run_decode_subtask(0)));
    g.finish();
}

criterion_group!(benches, bench_decode, bench_encode, bench_stages);
criterion_main!(benches);
