//! One benchmark per paper table/figure: measures the cost of
//! regenerating each experiment at reduced scale, and — more importantly —
//! pins every experiment into the benched (hence compile-checked and
//! routinely executed) surface of the repository.
//!
//! The printed evaluation itself lives in `rtopex-experiments`; here each
//! figure's computational core runs under Criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_core::global::QueuePolicy;
use rtopex_model::fit::{fit_proc_model, ModelSample};
use rtopex_model::iters::IterationModel;
use rtopex_model::platform::{PlatformJitter, StressBenchmark};
use rtopex_model::tasks::TaskTimeModel;
use rtopex_phy::params::Bandwidth;
use rtopex_sim::{run, SchedulerKind, SimConfig};
use rtopex_transport::{CloudLatency, TestbedLink};
use rtopex_workload::{LoadTrace, Scenario, TraceParams};
use std::time::Duration;

fn tiny_scenario() -> Scenario {
    let mut s = Scenario::paper_default();
    s.subframes = 500;
    s
}

fn group<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    g
}

fn fig01_load_trace(c: &mut Criterion) {
    let mut g = group(c, "fig01_load_trace");
    g.bench_function("generate_50ms_x4", |b| {
        b.iter(|| {
            (0..4)
                .map(|t| {
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    LoadTrace::new(TraceParams::tower(t)).generate(50, &mut rng)
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn table1_model_fit(c: &mut Criterion) {
    let mut g = group(c, "table1_model_fit");
    let ttm = TaskTimeModel::paper_gpp();
    let im = IterationModel::paper_gpp();
    let jit = PlatformJitter::paper_gpp();
    let mut rng = StdRng::seed_from_u64(1);
    let samples: Vec<ModelSample> = (0..10_000)
        .map(|_| {
            let mcs = rng.gen_range(0..=27u8);
            let d = 0.165 + mcs as f64 * 0.13;
            let qm = if mcs <= 10 {
                2
            } else if mcs <= 20 {
                4
            } else {
                6
            };
            let o = im.sample(mcs, d, 30.0, &mut rng);
            ModelSample {
                n_antennas: 1 + (mcs as usize % 3),
                qm,
                d_load: d,
                iters: o.iterations as f64,
                time_us: ttm.subframe_total(1 + (mcs as usize % 3), qm, d, o.iterations as f64)
                    + jit.sample(&mut rng),
            }
        })
        .collect();
    g.bench_function("ols_10k_samples", |b| b.iter(|| fit_proc_model(&samples)));
    g.finish();
}

fn fig03_processing_time(c: &mut Criterion) {
    let mut g = group(c, "fig03_processing_time");
    let ttm = TaskTimeModel::paper_gpp();
    let im = IterationModel::paper_gpp();
    g.bench_function("sweep_mcs_snr", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut acc = 0.0;
            for mcs in 0..=27u8 {
                for snr in [10.0, 20.0, 30.0] {
                    let d = 0.165 + mcs as f64 * 0.13;
                    let o = im.sample(mcs, d, snr, &mut rng);
                    acc += ttm.subframe_total(2, 6, d, o.iterations as f64);
                }
            }
            acc
        })
    });
    g.finish();
}

fn fig04_parallel_tasks(c: &mut Criterion) {
    // The real-thread variant lives in rtopex-runtime (slow, machine-
    // dependent); here the model's split arithmetic is benched.
    let mut g = group(c, "fig04_parallel_tasks");
    let ttm = TaskTimeModel::paper_gpp();
    g.bench_function("split_arithmetic", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cores in 1..=4u32 {
                let (n, tp) = ttm.decode_subtasks(3.774, 2.0, 6);
                acc += tp * (n as f64 / cores as f64).ceil();
            }
            acc
        })
    });
    g.finish();
}

fn fig06_cloud_delay(c: &mut Criterion) {
    let mut g = group(c, "fig06_cloud_delay");
    g.bench_function("sample_100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let m = CloudLatency::gbe10();
            (0..100_000).map(|_| m.sample(&mut rng)).sum::<f64>()
        })
    });
    g.finish();
}

fn fig07_transport_latency(c: &mut Criterion) {
    let mut g = group(c, "fig07_transport_latency");
    let link = TestbedLink::paper_testbed();
    g.bench_function("sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..=16 {
                acc += link.one_way_max_us(Bandwidth::Mhz5, n);
                acc += link.one_way_max_us(Bandwidth::Mhz10, n);
            }
            acc
        })
    });
    g.finish();
}

fn fig14_load_cdf(c: &mut Criterion) {
    let mut g = group(c, "fig14_load_cdf");
    g.bench_function("trace_20k_x4", |b| {
        b.iter(|| {
            (0..4)
                .map(|t| {
                    let mut rng = StdRng::seed_from_u64(20 + t as u64);
                    LoadTrace::new(TraceParams::tower(t)).generate(20_000, &mut rng)
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn fig15_deadline_miss(c: &mut Criterion) {
    let mut g = group(c, "fig15_deadline_miss");
    for (name, sched) in [
        ("partitioned", SchedulerKind::Partitioned),
        ("rtopex", SchedulerKind::RtOpex { delta_us: 20 }),
    ] {
        let mut cfg = SimConfig::from_scenario(&tiny_scenario(), 550);
        cfg.scheduler = sched;
        g.bench_function(name, |b| b.iter(|| run(&cfg)));
    }
    g.finish();
}

fn fig16_gaps(c: &mut Criterion) {
    let mut g = group(c, "fig16_gaps_migrations");
    let mut cfg = SimConfig::from_scenario(&tiny_scenario(), 500);
    cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
    g.bench_function("rtopex_with_accounting", |b| b.iter(|| run(&cfg)));
    g.finish();
}

fn fig17_load_sweep(c: &mut Criterion) {
    let mut g = group(c, "fig17_load_sweep");
    let mut cfg = SimConfig::from_scenario(&tiny_scenario(), 500);
    cfg.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
    cfg.bs0_mcs = Some(25);
    g.bench_function("bs0_mcs25", |b| b.iter(|| run(&cfg)));
    g.finish();
}

fn fig18_migration_overhead(c: &mut Criterion) {
    // The real-thread δ measurement is in rtopex-runtime; here the
    // simulator's migration bookkeeping cost is benched.
    let mut g = group(c, "fig18_migration_overhead");
    let mut cfg = SimConfig::from_scenario(&tiny_scenario(), 600);
    cfg.scheduler = SchedulerKind::RtOpex { delta_us: 100 };
    g.bench_function("high_delta_run", |b| b.iter(|| run(&cfg)));
    g.finish();
}

fn fig19_global_cores(c: &mut Criterion) {
    let mut g = group(c, "fig19_global_cores");
    for cores in [8usize, 16] {
        let mut cfg = SimConfig::from_scenario(&tiny_scenario(), 500);
        cfg.scheduler = SchedulerKind::Global {
            cores,
            policy: QueuePolicy::Edf,
        };
        g.bench_function(format!("global{cores}"), |b| b.iter(|| run(&cfg)));
    }
    g.finish();
}

fn fig3d_platform(c: &mut Criterion) {
    let mut g = group(c, "fig03d_platform_error");
    g.bench_function("jitter_and_benchmark_100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let j = PlatformJitter::paper_gpp();
            let s = StressBenchmark::paper_gpp();
            (0..100_000)
                .map(|_| j.sample(&mut rng) + s.sample(&mut rng))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig01_load_trace,
    table1_model_fit,
    fig03_processing_time,
    fig3d_platform,
    fig04_parallel_tasks,
    fig06_cloud_delay,
    fig07_transport_latency,
    fig14_load_cdf,
    fig15_deadline_miss,
    fig16_gaps,
    fig17_load_sweep,
    fig18_migration_overhead,
    fig19_global_cores
);
criterion_main!(benches);
