//! Scheduler benchmarks: the simulator's throughput per scheduler and the
//! cost of the decisions the paper's runtime takes on its critical path —
//! Algorithm 1 planning, queue operations, CPU-state polling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtopex_core::cpu_state::CpuStateTable;
use rtopex_core::global::{GlobalQueue, QueuePolicy};
use rtopex_core::migration::plan_migration;
use rtopex_core::task::{StageProfile, SubframeTask, TaskProfile};
use rtopex_core::time::Nanos;
use rtopex_sim::{run, SchedulerKind, SimConfig};
use rtopex_workload::Scenario;
use std::time::Duration;

fn small_scenario() -> Scenario {
    let mut s = Scenario::smoke_test();
    s.subframes = 1_000;
    s
}

fn bench_sim_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    let scenario = small_scenario();
    let subframes = (scenario.num_bs * scenario.subframes) as u64;
    for (name, sched) in [
        ("partitioned", SchedulerKind::Partitioned),
        (
            "global8",
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
        ),
        ("rtopex", SchedulerKind::RtOpex { delta_us: 20 }),
    ] {
        let mut cfg = SimConfig::from_scenario(&scenario, 500);
        cfg.scheduler = sched;
        g.throughput(Throughput::Elements(subframes));
        g.bench_function(name, |b| b.iter(|| run(&cfg)));
    }
    g.finish();
}

fn bench_migration_planning(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1");
    g.measurement_time(Duration::from_secs(2)).sample_size(50);
    for hosts in [1usize, 4, 15] {
        let free: Vec<(usize, Nanos)> = (0..hosts)
            .map(|h| (h, Nanos::from_us(200 + 100 * h as u64)))
            .collect();
        g.bench_with_input(BenchmarkId::new("plan", hosts), &hosts, |b, _| {
            b.iter(|| plan_migration(6, Nanos::from_us(117), Nanos::from_us(20), &free))
        });
    }
    g.finish();
}

fn task(deadline_us: u64) -> SubframeTask {
    let stage = StageProfile {
        subtasks: 2,
        subtask: Nanos::from_us(100),
    };
    SubframeTask {
        bs_id: 0,
        subframe_index: 0,
        release: Nanos::ZERO,
        deadline: Nanos::from_us(deadline_us),
        mcs: 16,
        crc_ok: true,
        profile: TaskProfile {
            fft: stage,
            demod: Nanos::from_us(400),
            decode: stage,
            platform_extra: Nanos::ZERO,
        },
    }
}

fn bench_queue_and_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_primitives");
    g.measurement_time(Duration::from_secs(2)).sample_size(50);
    g.bench_function("global_queue_push_pop_edf", |b| {
        b.iter(|| {
            let mut q = GlobalQueue::new(QueuePolicy::Edf, 64);
            for i in 0..32u64 {
                q.push(task(1_500 + (i * 37) % 500));
            }
            let mut out = 0u64;
            while let Some(t) = q.pop() {
                out += t.deadline.0;
            }
            out
        })
    });
    g.bench_function("cpu_state_poll_16cores", |b| {
        let mut table = CpuStateTable::new(16);
        for c in 0..16 {
            if c % 2 == 0 {
                table.set_idle(c, Nanos::from_us(2_000));
            } else {
                table.set_active(c, Nanos::from_us(900));
            }
        }
        b.iter(|| table.idle_cores(Nanos::from_us(100), 0))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sim_engines,
    bench_migration_planning,
    bench_queue_and_state
);
criterion_main!(benches);
