//! Kernel benchmarks: the PHY building blocks whose execution times are
//! the raw material of the paper's Eq. (1) — FFT, turbo codec, rate
//! matching, demapping, CRC, interleaving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_phy::crc::CRC24A;
use rtopex_phy::fft::FftPlan;
use rtopex_phy::modulation::Modulation;
use rtopex_phy::ratematch::RateMatcher;
use rtopex_phy::simd::{force_tier, SimdTier};
use rtopex_phy::turbo::{Qpp, TurboDecoder, TurboEncoder, TurboWorkspace};
use rtopex_phy::Cf32;
use std::time::Duration;

fn quick(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bits(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..2u8)).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [128usize, 600, 1024, 1536] {
        let plan = FftPlan::new(n);
        let data: Vec<Cf32> = (0..n).map(|i| Cf32::from_phase(i as f32 * 0.1)).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                buf
            })
        });
    }
    g.finish();
}

fn bench_turbo(c: &mut Criterion) {
    let mut g = c.benchmark_group("turbo");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for k in [512usize, 2048, 6144] {
        let data = bits(k, 1);
        let enc = TurboEncoder::new(k);
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::new("encode", k), &k, |b, _| {
            b.iter(|| enc.encode(&data))
        });
        let cw = enc.encode(&data);
        let llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&x| 4.0 * (1.0 - 2.0 * x as f32)).collect() };
        let (d0, d1, d2) = (llr(&cw.d0), llr(&cw.d1), llr(&cw.d2));
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        // One full iteration (never converges): the per-iteration cost of
        // the paper's w3·D term.
        g.bench_with_input(BenchmarkId::new("decode_1iter", k), &k, |b, _| {
            b.iter(|| dec.decode(&d0, &d1, &d2, 1, |_| false))
        });
    }
    g.finish();
}

fn bench_ratematch(c: &mut Criterion) {
    let mut g = c.benchmark_group("rate_match");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let k = 6144;
    let enc = TurboEncoder::new(k);
    let cw = enc.encode(&bits(k, 2));
    let rm = RateMatcher::new(k);
    let e = 7200;
    g.bench_function("select_7200", |b| b.iter(|| rm.rate_match(&cw, e)));
    let tx = rm.rate_match(&cw, e);
    let llrs: Vec<f32> = tx.iter().map(|&x| 1.0 - 2.0 * x as f32).collect();
    g.bench_function("deselect_7200", |b| b.iter(|| rm.de_rate_match(&llrs)));
    g.finish();
}

fn bench_modulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("modulation");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for m in [Modulation::Qpsk, Modulation::Qam64] {
        let qm = m.bits_per_symbol();
        let data = bits(600 * qm, 3);
        let syms = m.map(&data);
        let nv = vec![0.05f32; syms.len()];
        g.bench_function(format!("demap_600sym_qm{qm}"), |b| {
            b.iter(|| {
                let mut out = Vec::new();
                m.demap_maxlog(&syms, &nv, &mut out);
                out
            })
        });
    }
    g.finish();
}

fn bench_crc_qpp(c: &mut Criterion) {
    let mut g = c.benchmark_group("misc");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let data = bits(6144, 4);
    g.bench_function("crc24a_6144", |b| b.iter(|| CRC24A.compute(&data)));
    g.bench_function("qpp_build_6144", |b| b.iter(|| Qpp::new(6144)));
    let q = Qpp::new(6144);
    g.bench_function("qpp_interleave_6144", |b| b.iter(|| q.interleave(&data)));
    g.finish();
}

/// Plan-cached, scratch-reusing FFT vs. building a plan (and scratch) per
/// call — the cost the plan cache removes from the resource-grid and
/// DFT-precoding hot paths.
fn bench_fft_planned(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_planned");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [600usize, 1024] {
        let data: Vec<Cf32> = (0..n).map(|i| Cf32::from_phase(i as f32 * 0.1)).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("unplanned", n), &n, |b, _| {
            b.iter(|| {
                let plan = FftPlan::new(n);
                let mut buf = data.clone();
                plan.forward(&mut buf);
                buf
            })
        });
        let plan = rtopex_phy::fft::plan(n);
        let mut buf = data.clone();
        let mut scratch = vec![Cf32::ZERO; n];
        g.bench_with_input(BenchmarkId::new("plan_cached", n), &n, |b, _| {
            b.iter(|| {
                buf.copy_from_slice(&data);
                plan.forward_scratch(&mut buf, &mut scratch);
                buf[0]
            })
        });
    }
    g.finish();
}

/// Turbo decoding with a persistent [`TurboWorkspace`] vs. the allocating
/// wrapper — the per-code-block saving of the workspace arena.
fn bench_turbo_workspace(c: &mut Criterion) {
    let mut g = c.benchmark_group("turbo_workspace");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for k in [2048usize, 6144] {
        let data = bits(k, 5);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&x| 4.0 * (1.0 - 2.0 * x as f32)).collect() };
        let (d0, d1, d2) = (llr(&cw.d0), llr(&cw.d1), llr(&cw.d2));
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::new("fresh", k), &k, |b, _| {
            b.iter(|| dec.decode(&d0, &d1, &d2, 1, |_| false))
        });
        let mut ws = TurboWorkspace::new();
        dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws);
        g.bench_with_input(BenchmarkId::new("reused_ws", k), &k, |b, _| {
            b.iter(|| dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws))
        });
    }
    g.finish();
}

/// Forced-scalar vs. auto-dispatched turbo decoding: the win of the SIMD
/// tier (and the autovectorized lane form it falls back to) over the
/// historical per-state scalar recursions is visible in `BENCH_kernels.json`.
fn bench_turbo_simd(c: &mut Criterion) {
    let mut g = c.benchmark_group("turbo_simd");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for k in [2048usize, 6144] {
        let data = bits(k, 6);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&x| 4.0 * (1.0 - 2.0 * x as f32)).collect() };
        let (d0, d1, d2) = (llr(&cw.d0), llr(&cw.d1), llr(&cw.d2));
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let mut ws = TurboWorkspace::new();
        dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws);
        g.throughput(Throughput::Elements(k as u64));
        force_tier(Some(SimdTier::Scalar));
        g.bench_with_input(BenchmarkId::new("decode_scalar", k), &k, |b, _| {
            b.iter(|| dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws))
        });
        force_tier(None);
        g.bench_with_input(BenchmarkId::new("decode_auto", k), &k, |b, _| {
            b.iter(|| dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws))
        });
    }
    g.finish();
}

/// Forced-scalar vs. auto-dispatched soft demapping.
fn bench_demap_simd(c: &mut Criterion) {
    let mut g = c.benchmark_group("demap_simd");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for m in [Modulation::Qpsk, Modulation::Qam64] {
        let qm = m.bits_per_symbol();
        let data = bits(600 * qm, 7);
        let syms = m.map(&data);
        let nv = vec![0.05f32; syms.len()];
        let mut out = Vec::with_capacity(600 * qm);
        force_tier(Some(SimdTier::Scalar));
        g.bench_function(format!("demap_scalar_qm{qm}"), |b| {
            b.iter(|| {
                out.clear();
                m.demap_maxlog(&syms, &nv, &mut out);
                out.len()
            })
        });
        force_tier(None);
        g.bench_function(format!("demap_auto_qm{qm}"), |b| {
            b.iter(|| {
                out.clear();
                m.demap_maxlog(&syms, &nv, &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_turbo,
    bench_ratematch,
    bench_modulation,
    bench_crc_qpp,
    bench_fft_planned,
    bench_turbo_workspace,
    bench_turbo_simd,
    bench_demap_simd
);
criterion_main!(benches);

#[allow(dead_code)]
fn _unused(c: &mut Criterion) {
    quick(c);
}
