//! `rtopex-bench --node` — emits `BENCH_node.json`, the tracked node-level
//! throughput baseline for the multi-cell cluster runtime.
//!
//! Three measurement groups, one JSON object:
//!
//! * `steal_path` — per-subtask handoff latency of the lock-free steal
//!   path vs. the boxed-closure mailbox path (`measure_steal_overhead` /
//!   `measure_migration_overhead`), for the two migratable stages. This
//!   is the microscopic claim: a steal ticket costs less than a mailbox
//!   round trip.
//! * `single_cell` — one 1.4 MHz cell through the full `CranCluster`
//!   staged path, checked against the `subframe_decode` kernel mean in
//!   `BENCH_kernels.json`: the arena/epoch protocol must not tax the
//!   unstolen fast path.
//! * `sweep` — the Figs. 17/18 capacity sweep (cells sustained under the
//!   0.5 % miss threshold) reusing the exact geometry from
//!   `rtopex_experiments::cluster_scale`, so the committed baseline and
//!   the interactive experiment can never drift apart. The `headline`
//!   block distills it to the one number this PR is about: RT-OPEX(steal)
//!   must sustain at least as many cells as RT-OPEX(mutex).
//! * `batching` — the steal sweep repeated with `batch_decode = false`,
//!   so the capacity contribution of cross-cell batched decode dispatch
//!   (paired trellises through `turbo::decode_batch`) is visible in the
//!   committed file rather than folded invisibly into the headline.
//! * `multihost` — real-network fronthaul overheads (per-transport
//!   loopback handoff latency + steady-state rx cost per subframe) and
//!   the spawned `rtopex-fronthaul --spawn 2` demo verdict — see
//!   `multihost.rs`. `--refresh-multihost` re-measures only this
//!   section and splices it into an existing file.
//!
//! ```text
//! cargo run --release -p rtopex-bench -- --node [--quick] [OUTPUT.json]
//! cargo run --release -p rtopex-bench -- --node --refresh-multihost [FILE.json]
//! ```
//!
//! `--quick` shrinks the sweep (2 cells, 1 trial) for CI smoke runs where
//! only the schema and the steal-path numbers are being sanity-checked.

use rtopex_experiments::cluster_scale::{
    best_of, cells_sustained, cluster_cfg, ScalePoint, MISS_THRESHOLD,
};
use rtopex_experiments::common::Opts;
use rtopex_phy::params::Bandwidth;
use rtopex_phy::tasks::TaskKind;
use rtopex_runtime::cluster::{ClusterConfig, CranCluster, SchedulerMode};
use rtopex_runtime::measure::{measure_migration_overhead, measure_steal_overhead};
use std::fmt::Write as _;
use std::time::Duration;

/// Steal-ticket vs. mailbox handoff numbers for one migratable stage.
struct PathEntry {
    task: TaskKind,
    local_p50_us: f64,
    stolen_p50_us: f64,
    steal_delta_us: f64,
    mailbox_p50_us: f64,
    mailbox_delta_us: f64,
}

fn steal_path_entry(task: TaskKind, trials: usize) -> PathEntry {
    let mut steal = measure_steal_overhead(Bandwidth::Mhz5, 2, 16, task, trials);
    let mut mbox = measure_migration_overhead(Bandwidth::Mhz5, 2, 16, task, trials);
    PathEntry {
        task,
        local_p50_us: steal.local_us.median(),
        stolen_p50_us: steal.stolen_us.median(),
        steal_delta_us: steal.delta_us,
        mailbox_p50_us: mbox.migrated_us.median(),
        mailbox_delta_us: mbox.delta_us,
    }
}

/// Single 1.4 MHz cell through the staged cluster path, plus the tracked
/// kernel-bench mean for the same decode, read from `BENCH_kernels.json`.
struct SingleCell {
    period_us: u64,
    proc_p50_us: f64,
    proc_p99_us: f64,
    sf_per_sec: f64,
    miss_rate: f64,
    kernel_mean_us: Option<f64>,
}

fn single_cell(quick: bool) -> SingleCell {
    // Same PHY configuration as the tracked `subframe_decode_mhz1_4_mcs_27`
    // kernel entry; a 2.5 ms period leaves the cell unloaded so proc_us
    // measures the staged path itself, not queueing.
    let period = Duration::from_micros(2_500);
    let cfg = ClusterConfig {
        bandwidth: Bandwidth::Mhz1_4,
        num_antennas: 2,
        num_cells: 1,
        subframes: if quick { 150 } else { 400 },
        period,
        rtt_half: period, // Eq. 3 budget = one full period
        mode: SchedulerMode::RtOpexSteal,
        snr_db: 30.0,
        mcs_pool: vec![27],
        delta_us: 60.0,
        seed: 0xC0DE,
        batch_decode: true,
    };
    let best = (0..if quick { 1 } else { 3 })
        .map(|_| CranCluster::new(cfg.clone()).run())
        .min_by(|a, b| {
            let (mut ap, mut bp) = (a.proc_us.clone(), b.proc_us.clone());
            ap.median().partial_cmp(&bp.median()).unwrap()
        })
        .expect("at least one run");
    let mut proc = best.proc_us.clone();
    SingleCell {
        period_us: period.as_micros() as u64,
        proc_p50_us: proc.median(),
        proc_p99_us: proc.quantile(0.99),
        sf_per_sec: best.subframes_per_sec(),
        miss_rate: best.miss_rate(),
        kernel_mean_us: kernel_baseline_us(),
    }
}

/// Pulls `subframe_decode_mhz1_4_mcs_27.mean_ns` out of the committed
/// kernel baseline with a plain string scan (no JSON dep in-tree).
fn kernel_baseline_us() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_kernels.json").ok()?;
    let at = text.find("subframe_decode_mhz1_4_mcs_27")?;
    let tail = &text[at..];
    let at = tail.find("\"mean_ns\":")? + "\"mean_ns\":".len();
    let digits: String = tail[at..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse::<f64>().ok().map(|ns| ns / 1_000.0)
}

/// One mode's capacity column.
struct SweepRow {
    mode: SchedulerMode,
    miss: Vec<f64>,
    sustained: usize,
    sf_per_sec: f64,
    steals: u64,
}

fn sweep(opts: &Opts, max_cells: usize, trials: usize) -> Vec<SweepRow> {
    SchedulerMode::ALL
        .iter()
        .map(|&mode| {
            eprintln!("  sweeping {} to {max_cells} cells…", mode.name());
            let points: Vec<_> = (1..=max_cells)
                .map(|n| best_of(opts, mode, n, trials))
                .collect();
            let sustained = cells_sustained(&points);
            let at = points.iter().find(|p| p.cells == sustained);
            SweepRow {
                mode,
                miss: points.iter().map(|p| p.miss).collect(),
                sustained,
                sf_per_sec: at.map(|p| p.sf_per_sec).unwrap_or(0.0),
                steals: at.map(|p| p.steals).unwrap_or(0),
            }
        })
        .collect()
}

/// The steal sweep re-run with cross-cell batched decode dispatch
/// disabled (`batch_decode = false`), isolating what draining ready
/// decode subtasks through the paired-trellis `decode_batch` entry point
/// buys at the capacity cliff. Same geometry, trials and best-of rule as
/// the main sweep.
fn unbatched_steal_sweep(opts: &Opts, max_cells: usize, trials: usize) -> Vec<ScalePoint> {
    (1..=max_cells)
        .map(|n| {
            (0..trials.max(1))
                .map(|_| {
                    let mut cfg = cluster_cfg(opts, SchedulerMode::RtOpexSteal, n);
                    cfg.batch_decode = false;
                    let r = CranCluster::new(cfg).run();
                    ScalePoint {
                        cells: n,
                        miss: r.miss_rate(),
                        sf_per_sec: r.subframes_per_sec(),
                        steals: r.steals,
                        migrated: r.migration.fft_migrated + r.migration.decode_migrated,
                    }
                })
                .min_by(|a, b| {
                    a.miss
                        .partial_cmp(&b.miss)
                        .unwrap()
                        .then(b.sf_per_sec.partial_cmp(&a.sf_per_sec).unwrap())
                })
                .expect("at least one trial")
        })
        .collect()
}

fn task_key(task: TaskKind) -> &'static str {
    match task {
        TaskKind::Fft => "fft",
        TaskKind::Demod => "demod",
        TaskKind::Decode => "decode",
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Runs the node benchmark and writes `path`.
pub fn run(quick: bool, path: &str) {
    let opts = Opts {
        quick,
        ..Opts::default()
    };
    let (max_cells, trials) = if quick { (2, 1) } else { (5, 4) };

    eprintln!("steal-path handoff latency…");
    let paths: Vec<PathEntry> = [TaskKind::Fft, TaskKind::Decode]
        .into_iter()
        .map(|t| steal_path_entry(t, if quick { 8 } else { 24 }))
        .collect();
    eprintln!("single-cell staged path…");
    let cell = single_cell(quick);
    eprintln!("capacity sweep ({max_cells} cells, best of {trials})…");
    let rows = sweep(&opts, max_cells, trials);
    eprintln!("unbatched steal sweep ({max_cells} cells, best of {trials})…");
    let unbatched = unbatched_steal_sweep(&opts, max_cells, trials);
    let unbatched_sustained = cells_sustained(&unbatched);

    let sustained = |m: SchedulerMode| {
        rows.iter()
            .find(|r| r.mode == m)
            .map(|r| r.sustained)
            .unwrap_or(0)
    };
    let mutex_n = sustained(SchedulerMode::RtOpexMutex);
    let steal_n = sustained(SchedulerMode::RtOpexSteal);

    let sweep_cfg = cluster_cfg(&opts, SchedulerMode::RtOpexSteal, 1);
    let budget_us = 2 * sweep_cfg.period.as_micros() as u64 - sweep_cfg.rtt_half.as_micros() as u64;

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": 1,").unwrap();
    writeln!(body, "  \"quick\": {quick},").unwrap();
    writeln!(
        body,
        "  \"git_rev\": \"{}\",",
        crate::json_escape(&crate::git_rev())
    )
    .unwrap();
    writeln!(body, "  \"machine\": {},", crate::machine_json()).unwrap();

    writeln!(body, "  \"steal_path\": {{").unwrap();
    for (i, p) in paths.iter().enumerate() {
        let comma = if i + 1 < paths.len() { "," } else { "" };
        writeln!(
            body,
            "    \"{}\": {{ \"local_p50_us\": {}, \"stolen_p50_us\": {}, \
             \"steal_delta_us\": {}, \"mailbox_p50_us\": {}, \"mailbox_delta_us\": {} }}{}",
            task_key(p.task),
            fmt_f(p.local_p50_us),
            fmt_f(p.stolen_p50_us),
            fmt_f(p.steal_delta_us),
            fmt_f(p.mailbox_p50_us),
            fmt_f(p.mailbox_delta_us),
            comma
        )
        .unwrap();
    }
    writeln!(body, "  }},").unwrap();

    writeln!(body, "  \"single_cell\": {{").unwrap();
    writeln!(body, "    \"bandwidth\": \"1.4MHz\",").unwrap();
    writeln!(body, "    \"period_us\": {},", cell.period_us).unwrap();
    writeln!(body, "    \"proc_p50_us\": {},", fmt_f(cell.proc_p50_us)).unwrap();
    writeln!(body, "    \"proc_p99_us\": {},", fmt_f(cell.proc_p99_us)).unwrap();
    writeln!(body, "    \"sf_per_sec\": {},", fmt_f(cell.sf_per_sec)).unwrap();
    writeln!(body, "    \"miss_rate\": {},", fmt_f(cell.miss_rate)).unwrap();
    match cell.kernel_mean_us {
        Some(k) => {
            // The staged path adds arena bookkeeping and scheduling around
            // the same decode; within 1.5× of the bare-kernel mean counts
            // as no regression (the slack absorbs host-noise jitter).
            writeln!(body, "    \"kernel_baseline_us\": {},", fmt_f(k)).unwrap();
            writeln!(
                body,
                "    \"p50_vs_kernel\": {},",
                fmt_f(cell.proc_p50_us / k)
            )
            .unwrap();
            writeln!(
                body,
                "    \"no_regression\": {}",
                cell.proc_p50_us <= k * 1.5
            )
            .unwrap();
        }
        None => {
            writeln!(body, "    \"kernel_baseline_us\": null,").unwrap();
            writeln!(body, "    \"no_regression\": null").unwrap();
        }
    }
    writeln!(body, "  }},").unwrap();

    writeln!(body, "  \"sweep\": {{").unwrap();
    writeln!(
        body,
        "    \"config\": {{ \"bandwidth\": \"5MHz\", \"antennas\": 2, \
         \"period_us\": {}, \"budget_us\": {}, \"miss_threshold\": {}, \
         \"trials\": {}, \"max_cells\": {} }},",
        sweep_cfg.period.as_micros(),
        budget_us,
        MISS_THRESHOLD,
        trials,
        max_cells
    )
    .unwrap();
    writeln!(body, "    \"modes\": {{").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let miss: Vec<String> = r.miss.iter().map(|m| fmt_f(*m)).collect();
        writeln!(
            body,
            "      \"{}\": {{ \"miss\": [{}], \"cells_sustained\": {}, \
             \"sf_per_sec\": {}, \"steals\": {} }}{}",
            r.mode.name(),
            miss.join(", "),
            r.sustained,
            fmt_f(r.sf_per_sec),
            r.steals,
            comma
        )
        .unwrap();
    }
    writeln!(body, "    }}").unwrap();
    writeln!(body, "  }},").unwrap();

    let steal_row_miss: Vec<String> = rows
        .iter()
        .find(|r| r.mode == SchedulerMode::RtOpexSteal)
        .map(|r| r.miss.iter().map(|m| fmt_f(*m)).collect())
        .unwrap_or_default();
    let unbatched_miss: Vec<String> = unbatched.iter().map(|p| fmt_f(p.miss)).collect();
    writeln!(body, "  \"batching\": {{").unwrap();
    writeln!(body, "    \"mode\": \"rtopex_steal\",").unwrap();
    writeln!(
        body,
        "    \"batched\": {{ \"miss\": [{}], \"cells_sustained\": {steal_n} }},",
        steal_row_miss.join(", ")
    )
    .unwrap();
    writeln!(
        body,
        "    \"unbatched\": {{ \"miss\": [{}], \"cells_sustained\": {unbatched_sustained} }},",
        unbatched_miss.join(", ")
    )
    .unwrap();
    writeln!(
        body,
        "    \"batched_ge_unbatched\": {}",
        steal_n >= unbatched_sustained
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();

    eprintln!("multihost fronthaul overheads + demo…");
    body.push_str(&crate::multihost::section(quick));

    writeln!(body, "  \"headline\": {{").unwrap();
    writeln!(body, "    \"mutex_cells_sustained\": {mutex_n},").unwrap();
    writeln!(body, "    \"steal_cells_sustained\": {steal_n},").unwrap();
    writeln!(body, "    \"steal_ge_mutex\": {}", steal_n >= mutex_n).unwrap();
    writeln!(body, "  }}").unwrap();
    writeln!(body, "}}").unwrap();

    std::fs::write(path, body).expect("write node baseline");
    eprintln!(
        "wrote {path}: steal sustains {steal_n} cell(s), mutex {mutex_n}, \
         single-cell p50 {:.0} µs",
        cell.proc_p50_us
    );
}
