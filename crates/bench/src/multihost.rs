//! The `multihost` section of `BENCH_node.json`: real-network fronthaul
//! overheads plus the localhost multi-process demo verdict.
//!
//! Two measurement groups, all on loopback so the numbers isolate the
//! transport stack rather than a NIC:
//!
//! * **per-transport overheads** — for each of the three fronthaul
//!   transports (in-process emulation, UDP datagrams, length-framed
//!   TCP): the p50 handoff latency of one quantized IQ subframe
//!   (aggregator `send` → worker `recv_into` swap, 5 MHz × 2 antennas),
//!   and the steady-state rx cost per subframe measured by draining a
//!   paced burst (receive-side wall clock between the first and last
//!   delivery). The analyzer gates `rx_per_subframe_us < period`:
//!   a transport whose ingest cannot keep the cadence would turn
//!   `run_fed` into a shedding loop.
//! * **demo** — spawns the sibling `rtopex-fronthaul --spawn 2` binary
//!   (1 aggregator + 2 `rtopex-node` workers over real UDP sockets,
//!   4 cells) and records its aggregated verdict: full delivery, miss
//!   rate under the 0.5 % bar, zero sequence gaps.
//!
//! `rtopex-bench --node --refresh-multihost [FILE]` re-measures only
//! this section and splices it into an existing baseline, so the
//! multi-minute capacity sweep (whose arrays the analyzer pins) does
//! not have to be re-run — and cannot drift — when only the fronthaul
//! changed.

use rtopex_phy::Cf32;
use rtopex_transport::{inproc_pair, FronthaulRx, FronthaulTx, Recv, StreamParams, SubframeBuf};
use rtopex_transport_net::{TcpRxPending, UdpRxPending};
use std::fmt::Write as _;
use std::process::Command;
use std::time::{Duration, Instant};

/// Demo cadence: the 5 MHz deadline-dilated geometry every distributed
/// demo and the capacity sweep share (period 6 ms, Eq. 3 budget 5 ms).
pub const PERIOD_US: u64 = 6_000;
const BUDGET_US: u64 = 5_000;
const ANTENNAS: u8 = 2;
const SAMPLES_PER_SUBFRAME: u32 = 3_840; // 5 MHz

/// Loopback overheads for one transport.
pub struct TransportOverhead {
    pub name: &'static str,
    pub handoff_p50_us: f64,
    pub rx_per_subframe_us: f64,
    pub delivered: u64,
    pub gaps: u64,
}

/// Aggregated verdict of the spawned multi-process demo.
pub struct DemoResult {
    pub workers: u64,
    pub cells: u64,
    pub subframes_per_cell: u64,
    pub delivered: u64,
    pub miss_rate: f64,
    pub gaps: u64,
    pub ok: bool,
}

fn stream_params(cells: Vec<u16>) -> StreamParams {
    StreamParams {
        samples_per_subframe: SAMPLES_PER_SUBFRAME,
        antennas: ANTENNAS,
        cells,
        period_us: PERIOD_US as u32,
        budget_us: BUDGET_US as u32,
        mcs_pool: vec![5, 10, 16, 22, 27],
        subframes: 0, // open-ended; finish() closes the stream
    }
}

/// Deterministic full-scale IQ payload (content is irrelevant to the
/// transport; non-zero keeps the i16 quantizer honest).
fn test_samples() -> Vec<Vec<Cf32>> {
    (0..ANTENNAS as usize)
        .map(|a| {
            (0..SAMPLES_PER_SUBFRAME as usize)
                .map(|i| Cf32::from_phase((i + a * 7) as f32 * 0.013) * 0.3)
                .collect()
        })
        .collect()
}

/// Ping-pong then burst over one established link. Returns
/// `(handoff_p50_us, rx_per_subframe_us, delivered, gaps)`.
fn measure_link(
    mut tx: Box<dyn FronthaulTx>,
    mut rx: Box<dyn FronthaulRx>,
    handoffs: usize,
    burst: usize,
) -> (f64, f64, u64, u64) {
    let samples = test_samples();
    let mut buf = SubframeBuf::for_stream(rx.params());
    let poll = Duration::from_millis(2_000);

    // Handoff: one in-flight subframe at a time, full rx round trip.
    let mut lat_us: Vec<f64> = Vec::with_capacity(handoffs);
    for seq in 0..handoffs as u32 {
        let t = Instant::now();
        tx.send(0, seq, 27, &samples).expect("handoff send");
        tx.flush().expect("handoff flush");
        match rx.recv_into(&mut buf, poll).expect("handoff recv") {
            Recv::Subframe => lat_us.push(t.elapsed().as_secs_f64() * 1e6),
            other => panic!("handoff probe got {other:?}"),
        }
    }
    lat_us.sort_by(|a, b| a.total_cmp(b));
    let handoff_p50 = lat_us[lat_us.len() / 2];

    // Burst: a paced sender thread streams `burst` subframes across both
    // cells; the receiver drains flat out. Wall clock between the first
    // and last delivery is the steady-state rx pipeline cost.
    let (mut first, mut last): (Option<Instant>, Option<Instant>) = (None, None);
    let mut delivered = 0u64;
    std::thread::scope(|s| {
        let sender = s.spawn(|| {
            let base = handoffs as u32;
            for i in 0..burst as u32 {
                let cell = (i % 2) as u16;
                tx.send(cell, base + i / 2, 27, &samples)
                    .expect("burst send");
                if i % 2 == 1 {
                    tx.flush().expect("burst flush");
                }
            }
            tx.finish().expect("finish");
        });
        loop {
            match rx.recv_into(&mut buf, poll).expect("burst recv") {
                Recv::Subframe => {
                    let now = Instant::now();
                    first.get_or_insert(now);
                    last = Some(now);
                    delivered += 1;
                }
                Recv::Closed => break,
                Recv::TimedOut => break,
            }
        }
        sender.join().expect("sender thread");
    });
    let rx_per_subframe = match (first, last) {
        (Some(a), Some(b)) if delivered > 1 => (b - a).as_secs_f64() * 1e6 / (delivered - 1) as f64,
        _ => f64::NAN,
    };
    let stats = rx.stats();
    (handoff_p50, rx_per_subframe, delivered, stats.gaps)
}

/// Measures all three transports on loopback.
pub fn transport_overheads(quick: bool) -> Vec<TransportOverhead> {
    let (handoffs, burst) = if quick { (24, 64) } else { (96, 256) };
    let mut out = Vec::new();

    eprintln!("  multihost: in-process link ({handoffs} handoffs, {burst} burst)…");
    let params = stream_params(vec![0, 1]);
    let (tx, rx) = inproc_pair(params.clone(), burst + 8);
    let (h, r, d, g) = measure_link(Box::new(tx), Box::new(rx), handoffs, burst);
    out.push(TransportOverhead {
        name: "inproc",
        handoff_p50_us: h,
        rx_per_subframe_us: r,
        delivered: d,
        gaps: g,
    });

    eprintln!("  multihost: udp loopback link…");
    let pending = UdpRxPending::bind("127.0.0.1:0").expect("udp bind");
    let addr = pending.local_addr().expect("udp addr").to_string();
    let accept = std::thread::spawn(move || {
        pending
            .accept(Duration::from_secs(10), burst + 8)
            .expect("udp accept")
    });
    let tx =
        rtopex_transport_net::UdpFronthaulTx::connect(&addr, params.clone()).expect("udp connect");
    let rx = accept.join().expect("udp accept thread");
    let (h, r, d, g) = measure_link(Box::new(tx), Box::new(rx), handoffs, burst);
    out.push(TransportOverhead {
        name: "udp",
        handoff_p50_us: h,
        rx_per_subframe_us: r,
        delivered: d,
        gaps: g,
    });

    eprintln!("  multihost: tcp loopback link…");
    let pending = TcpRxPending::bind("127.0.0.1:0").expect("tcp bind");
    let addr = pending.local_addr().expect("tcp addr").to_string();
    let accept = std::thread::spawn(move || {
        pending
            .accept(Duration::from_secs(10), burst + 8)
            .expect("tcp accept")
    });
    let tx = rtopex_transport_net::TcpFronthaulTx::connect(&addr, params).expect("tcp connect");
    let rx = accept.join().expect("tcp accept thread");
    let (h, r, d, g) = measure_link(Box::new(tx), Box::new(rx), handoffs, burst);
    out.push(TransportOverhead {
        name: "tcp",
        handoff_p50_us: h,
        rx_per_subframe_us: r,
        delivered: d,
        gaps: g,
    });

    out
}

/// Flat-JSON number scan (same convention as `rtopex-distrib`: tracked
/// report keys are unique in the document).
fn scan_num(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let tail = text[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Spawns the sibling `rtopex-fronthaul --spawn 2` demo and parses its
/// aggregated report. A missing binary yields `ok = false` (the
/// analyzer will flag the recorded file) rather than a panic, so the
/// kernel/sweep sections of a bench run still get written.
pub fn run_demo(quick: bool) -> DemoResult {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("rtopex-fronthaul")))
        .unwrap_or_else(|| "rtopex-fronthaul".into());
    let mut args = vec!["--cells", "4", "--spawn", "2", "--transport", "udp"];
    if quick {
        args.push("--quick");
    }
    eprintln!("  multihost: demo `{} {}`…", exe.display(), args.join(" "));
    let failed = DemoResult {
        workers: 2,
        cells: 4,
        subframes_per_cell: 0,
        delivered: 0,
        miss_rate: 1.0,
        gaps: 0,
        ok: false,
    };
    let out = match Command::new(&exe).args(&args).output() {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "  multihost: cannot spawn {}: {e} — build rtopex-distrib first \
                 (`cargo build --release -p rtopex-distrib`)",
                exe.display()
            );
            return failed;
        }
    };
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let num = |k: &str| scan_num(&text, k).unwrap_or(-1.0);
    DemoResult {
        workers: num("workers").max(0.0) as u64,
        cells: num("cells").max(0.0) as u64,
        subframes_per_cell: num("subframes_per_cell").max(0.0) as u64,
        delivered: num("delivered").max(0.0) as u64,
        miss_rate: num("miss_rate").max(0.0),
        gaps: num("gaps").max(0.0) as u64,
        ok: out.status.success() && text.contains("\"ok\": true"),
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Measures everything and renders the section, ready to sit directly
/// before the `"headline"` key of `BENCH_node.json`:
///
/// ```text
///   "multihost": { … },
/// ```
pub fn section(quick: bool) -> String {
    let overheads = transport_overheads(quick);
    let demo = run_demo(quick);

    let mut s = String::new();
    writeln!(s, "  \"multihost\": {{").unwrap();
    writeln!(s, "    \"period_us\": {PERIOD_US},").unwrap();
    writeln!(s, "    \"transports\": {{").unwrap();
    for (i, t) in overheads.iter().enumerate() {
        let comma = if i + 1 < overheads.len() { "," } else { "" };
        writeln!(
            s,
            "      \"{}\": {{ \"handoff_p50_us\": {}, \"rx_per_subframe_us\": {}, \
             \"delivered\": {}, \"gaps\": {} }}{}",
            t.name,
            fmt_f(t.handoff_p50_us),
            fmt_f(t.rx_per_subframe_us),
            t.delivered,
            t.gaps,
            comma
        )
        .unwrap();
        eprintln!(
            "  multihost {}: handoff p50 {:.1} µs, rx {:.1} µs/subframe ({} delivered, {} gaps)",
            t.name, t.handoff_p50_us, t.rx_per_subframe_us, t.delivered, t.gaps
        );
    }
    writeln!(s, "    }},").unwrap();
    writeln!(s, "    \"demo\": {{").unwrap();
    writeln!(s, "      \"transport\": \"udp\",").unwrap();
    writeln!(s, "      \"workers\": {},", demo.workers).unwrap();
    writeln!(s, "      \"cells\": {},", demo.cells).unwrap();
    writeln!(
        s,
        "      \"cells_per_worker\": {},",
        demo.cells.checked_div(demo.workers).unwrap_or(0)
    )
    .unwrap();
    writeln!(
        s,
        "      \"subframes_per_cell\": {},",
        demo.subframes_per_cell
    )
    .unwrap();
    writeln!(s, "      \"delivered\": {},", demo.delivered).unwrap();
    writeln!(s, "      \"miss_rate\": {},", fmt_f(demo.miss_rate)).unwrap();
    writeln!(s, "      \"gaps\": {},", demo.gaps).unwrap();
    writeln!(s, "      \"ok\": {}", demo.ok).unwrap();
    writeln!(s, "    }}").unwrap();
    writeln!(s, "  }},").unwrap();
    eprintln!(
        "  multihost demo: {} workers × {} cells, delivered {}, miss {:.4}, ok = {}",
        demo.workers, demo.cells, demo.delivered, demo.miss_rate, demo.ok
    );
    s
}

/// Re-measures only the multihost section and splices it into an
/// existing `BENCH_node.json`, leaving every other byte — in particular
/// the pinned capacity arrays — untouched.
pub fn refresh(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} — run `rtopex-bench --node` first"));
    let head_at = text
        .find("  \"headline\": {")
        .expect("node baseline has a headline section");
    let start = match text.find("  \"multihost\": {") {
        Some(m) if m < head_at => m,
        _ => head_at,
    };
    let fresh = section(false);
    let spliced = format!("{}{}{}", &text[..start], fresh, &text[head_at..]);
    std::fs::write(path, spliced).expect("write node baseline");
    eprintln!("refreshed multihost section in {path}");
}
