//! `rtopex-bench` — emits `BENCH_kernels.json`, the tracked kernel-latency
//! baseline.
//!
//! Times the four vectorized PHY kernels (turbo max-log-MAP, soft demapper,
//! MRC equalizer, FFT) plus the end-to-end MCS 27 subframe decode with a
//! plain `Instant` loop (no criterion), and writes one JSON object with the
//! per-kernel mean in nanoseconds, a machine fingerprint, the git revision
//! and the active SIMD tier. Commit the output at the repository root to
//! refresh the baseline:
//!
//! ```text
//! cargo run --release -p rtopex-bench [OUTPUT.json]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex_phy::channel::{AwgnChannel, ChannelModel};
use rtopex_phy::equalizer::{mrc_combine, ChannelEstimate};
use rtopex_phy::fft::FftPlan;
use rtopex_phy::modulation::Modulation;
use rtopex_phy::params::Bandwidth;
use rtopex_phy::simd::{self, SimdTier};
use rtopex_phy::turbo::{decode_batch, TurboBatchJob, TurboDecoder, TurboEncoder, TurboWorkspace};
use rtopex_phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};
use rtopex_phy::Cf32;
use rtopex_runtime::affinity::NumaTopology;
use std::fmt::Write as _;
use std::time::Instant;

mod multihost;
mod node;
mod sim;

/// Measured mean for one kernel.
struct Entry {
    name: &'static str,
    size: usize,
    mean_ns: u64,
    iters: u32,
}

/// Runs `f` until roughly `target_ms` of wall clock is spent (after a short
/// warmup) and returns the mean iteration time in nanoseconds.
fn time_kernel<R>(target_ms: u64, mut f: impl FnMut() -> R) -> (u64, u32) {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    // Pilot run to size the batch.
    let t = Instant::now();
    std::hint::black_box(f());
    let pilot_ns = t.elapsed().as_nanos().max(1) as u64;
    let iters = ((target_ms * 1_000_000) / pilot_ns).clamp(5, 10_000) as u32;
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    ((t.elapsed().as_nanos() as u64) / iters as u64, iters)
}

fn bits(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..2u8)).collect()
}

fn turbo_entries(out: &mut Vec<Entry>) {
    for k in [512usize, 2048, 6144] {
        let data = bits(k, 1);
        let enc = TurboEncoder::new(k);
        let cw = enc.encode(&data);
        let llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&x| 4.0 * (1.0 - 2.0 * x as f32)).collect() };
        let (d0, d1, d2) = (llr(&cw.d0), llr(&cw.d1), llr(&cw.d2));
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let mut ws = TurboWorkspace::new();
        dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws);
        let (mean_ns, iters) = time_kernel(300, || {
            dec.decode_with(&d0, &d1, &d2, 1, |_| false, &mut ws)
        });
        out.push(Entry {
            name: "turbo_decode_1iter",
            size: k,
            mean_ns,
            iters,
        });
    }
}

fn demap_entries(out: &mut Vec<Entry>) {
    for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
        let qm = m.bits_per_symbol();
        let data = bits(600 * qm, 2);
        let syms = m.map(&data);
        let nv = vec![0.05f32; syms.len()];
        let mut llrs = Vec::with_capacity(600 * qm);
        let (mean_ns, iters) = time_kernel(200, || {
            llrs.clear();
            m.demap_maxlog(&syms, &nv, &mut llrs);
            llrs.len()
        });
        out.push(Entry {
            name: "demap_600sym_qm",
            size: qm,
            mean_ns,
            iters,
        });
    }
}

fn mrc_entries(out: &mut Vec<Entry>) {
    let m = 600usize;
    let nant = 2usize;
    let mut rng = StdRng::seed_from_u64(3);
    let cplx = |rng: &mut StdRng| Cf32::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5);
    let h: Vec<Vec<Cf32>> = (0..nant)
        .map(|_| (0..m).map(|_| cplx(&mut rng)).collect())
        .collect();
    let data: Vec<Vec<Cf32>> = (0..nant)
        .map(|_| (0..m).map(|_| cplx(&mut rng)).collect())
        .collect();
    let est = ChannelEstimate { h, noise_var: 0.05 };
    let rows: Vec<&[Cf32]> = data.iter().map(Vec::as_slice).collect();
    let (mean_ns, iters) = time_kernel(200, || mrc_combine(&rows, &est));
    out.push(Entry {
        name: "mrc_600sc_2ant",
        size: m,
        mean_ns,
        iters,
    });
}

fn fft_entries(out: &mut Vec<Entry>) {
    for n in [128usize, 600, 1024, 1536] {
        let plan = FftPlan::new(n);
        let data: Vec<Cf32> = (0..n).map(|i| Cf32::from_phase(i as f32 * 0.1)).collect();
        let mut buf = data.clone();
        let mut scratch = vec![Cf32::ZERO; n];
        let (mean_ns, iters) = time_kernel(200, || {
            buf.copy_from_slice(&data);
            plan.forward_scratch(&mut buf, &mut scratch);
            buf[0]
        });
        out.push(Entry {
            name: "fft_forward",
            size: n,
            mean_ns,
            iters,
        });
    }
}

fn subframe_entry(out: &mut Vec<Entry>) {
    // Same configuration as the tracked `subframe_decode/mhz1_4_mcs/27`
    // criterion entry (1.4 MHz, 2 antennas, MCS 27).
    let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 27).expect("config");
    let tx = UplinkTx::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(4);
    let payload: Vec<u8> = (0..cfg.transport_block_bytes())
        .map(|_| rng.gen())
        .collect();
    let sf = tx.encode_subframe(&payload).expect("encode");
    let mut chan = AwgnChannel::new(30.0);
    let samples = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
    let rx = UplinkRx::new(cfg);
    let (mean_ns, iters) = time_kernel(500, || rx.decode_subframe(&samples).expect("decode"));
    out.push(Entry {
        name: "subframe_decode_mhz1_4_mcs",
        size: 27,
        mean_ns,
        iters,
    });
}

/// Per-tier rows: every kernel generator re-run with each supported tier
/// forced, so the committed baseline records what each instruction-set
/// tier buys on this machine (and the scalar reference cost the
/// equivalence tests compare against).
fn tier_entries() -> Vec<(&'static str, Vec<Entry>)> {
    let mut out = Vec::new();
    for tier in simd::supported_tiers() {
        eprintln!("timing kernels at forced tier {}…", tier.name());
        simd::force_tier(Some(tier));
        let mut entries = Vec::new();
        turbo_entries(&mut entries);
        demap_entries(&mut entries);
        fft_entries(&mut entries);
        subframe_entry(&mut entries);
        out.push((tier.name(), entries));
    }
    simd::force_tier(None);
    out
}

/// One batched-vs-per-call turbo measurement.
struct BatchedEntry {
    k: usize,
    batch: usize,
    per_call_ns: u64,
    batched_ns: u64,
    speedup: f64,
}

/// Cross-cell batched dispatch headline: `decode_batch` at the widest
/// detected tier (paired trellises sharing AVX-512 lanes) vs. the same
/// jobs decoded one `decode_with` call at a time on the per-call AVX2
/// path — the best pre-batching configuration. Both sides decode the
/// same four distinct codewords per invocation.
fn batched_entries() -> Vec<BatchedEntry> {
    const BATCH: usize = 4;
    let per_call_tier = if simd::supports(SimdTier::Avx2) {
        SimdTier::Avx2
    } else {
        simd::hardware_tier()
    };
    let mut out = Vec::new();
    for k in [2048usize, 6144] {
        let enc = TurboEncoder::new(k);
        let llr =
            |v: &[u8]| -> Vec<f32> { v.iter().map(|&x| 4.0 * (1.0 - 2.0 * x as f32)).collect() };
        let streams: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..BATCH)
            .map(|i| {
                let cw = enc.encode(&bits(k, 10 + i as u64));
                (llr(&cw.d0), llr(&cw.d1), llr(&cw.d2))
            })
            .collect();
        let dec = TurboDecoder::with_qpp(enc.qpp().clone());
        let mut wss: Vec<TurboWorkspace> = (0..BATCH).map(|_| TurboWorkspace::new()).collect();
        let mut results = vec![(0usize, false); BATCH];

        simd::force_tier(Some(per_call_tier));
        let (per_call_ns, _) = time_kernel(300, || {
            for (s, ws) in streams.iter().zip(wss.iter_mut()) {
                dec.decode_with(&s.0, &s.1, &s.2, 1, |_| false, ws);
            }
        });

        simd::force_tier(None);
        let jobs: Vec<TurboBatchJob> = streams
            .iter()
            .map(|s| TurboBatchJob {
                decoder: &dec,
                d0: &s.0,
                d1: &s.1,
                d2: &s.2,
                max_iters: 1,
            })
            .collect();
        let (batched_ns, _) = time_kernel(300, || {
            decode_batch(&jobs, |_, _| false, &mut wss, &mut results)
        });
        out.push(BatchedEntry {
            k,
            batch: BATCH,
            per_call_ns,
            batched_ns,
            speedup: per_call_ns as f64 / batched_ns as f64,
        });
    }
    out
}

/// Ad-hoc probe behind `--demap-batch`: per-call [`Modulation::demap_maxlog`]
/// vs. a [`demap_batch`] drain over the same four jobs. Stdout only — the
/// result is NOT written to `BENCH_kernels.json`, because each 600-symbol
/// job already fills whole SIMD blocks internally, so cross-job batching
/// can only amortize the per-call tier resolution (nanoseconds against a
/// multi-microsecond kernel). The measured ~1.0x is recorded as a negative
/// result in EXPERIMENTS.md; adding it to the tracked baseline would trip
/// the analyzer's batching-regression floor for no information gain.
fn demap_batch_probe() {
    use rtopex_phy::modulation::{demap_batch, DemapJob};
    const BATCH: usize = 4;
    const SYMS: usize = 600;
    println!("demap batch-drain probe (batch {BATCH}, {SYMS} symbols/job)");
    for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
        let qm = m.bits_per_symbol();
        let streams: Vec<(Vec<Cf32>, Vec<f32>)> = (0..BATCH)
            .map(|i| {
                let syms = m.map(&bits(SYMS * qm, 20 + i as u64));
                let nv = vec![0.05f32; syms.len()];
                (syms, nv)
            })
            .collect();
        let mut outs: Vec<Vec<f32>> = (0..BATCH).map(|_| Vec::with_capacity(SYMS * qm)).collect();

        let (per_call_ns, _) = time_kernel(200, || {
            for ((syms, nv), out) in streams.iter().zip(outs.iter_mut()) {
                out.clear();
                m.demap_maxlog(syms, nv, out);
            }
        });
        let (batched_ns, _) = time_kernel(200, || {
            for out in outs.iter_mut() {
                out.clear();
            }
            let mut jobs: Vec<DemapJob<'_>> = streams
                .iter()
                .zip(outs.iter_mut())
                .map(|((syms, nv), out)| DemapJob {
                    modulation: m,
                    symbols: syms,
                    noise_var: nv,
                    out,
                })
                .collect();
            demap_batch(&mut jobs);
        });
        println!(
            "  qm={qm}: per-call {per_call_ns} ns, batch-drain {batched_ns} ns \
             ({:.3}x)",
            per_call_ns as f64 / batched_ns as f64
        );
    }
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string())
}

/// Cache sizes in KiB from cpu0's sysfs cache directory: (L1d, L2, L3);
/// 0 for a level the kernel does not expose.
fn cache_topology_kb() -> (u64, u64, u64) {
    let mut caches = (0u64, 0u64, 0u64);
    for idx in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let read = |f: &str| std::fs::read_to_string(format!("{base}/{f}")).ok();
        let (Some(level), Some(ty), Some(size)) = (read("level"), read("type"), read("size"))
        else {
            continue;
        };
        let kb = size
            .trim()
            .trim_end_matches(['K', 'k'])
            .parse::<u64>()
            .unwrap_or(0);
        match (level.trim(), ty.trim()) {
            ("1", "Data") => caches.0 = kb,
            ("2", "Unified") => caches.1 = kb,
            ("3", "Unified") => caches.2 = kb,
            _ => {}
        }
    }
    caches
}

/// The machine fingerprint every `BENCH_*.json` carries: CPU model, core
/// count, cache topology, NUMA domain count (honouring the `RTOPEX_NUMA`
/// emulation override so a run's sharding assumptions are visible in the
/// file it produced) and the widest SIMD tier. The analyzer refuses to
/// compare baselines whose fingerprints disagree, so all three emitters
/// share this one constructor.
fn machine_json() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (l1d, l2, l3) = cache_topology_kb();
    format!(
        "{{ \"cpu\": \"{}\", \"cores\": {cores}, \"l1d_kb\": {l1d}, \"l2_kb\": {l2}, \
         \"l3_kb\": {l3}, \"numa_domains\": {}, \"simd_tier\": \"{}\" }}",
        json_escape(&cpu_model()),
        NumaTopology::detect().num_domains(),
        simd::hardware_tier().name()
    )
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--node") {
        let quick = args.iter().any(|a| a == "--quick");
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_node.json".to_string());
        if args.iter().any(|a| a == "--refresh-multihost") {
            // Re-measure only the fronthaul section; the capacity sweep
            // arrays in the existing file stay byte-identical.
            multihost::refresh(&path);
            return;
        }
        node::run(quick, &path);
        return;
    }
    if args.iter().any(|a| a == "--demap-batch") {
        demap_batch_probe();
        return;
    }
    if args.iter().any(|a| a == "--sim") {
        let quick = args.iter().any(|a| a == "--quick");
        let path = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_sim.json".to_string());
        sim::run_bench(quick, &path);
        return;
    }
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let tier = simd::detected_tier().name();
    let mut entries = Vec::new();
    eprintln!("timing kernels (tier: {tier})…");
    turbo_entries(&mut entries);
    demap_entries(&mut entries);
    mrc_entries(&mut entries);
    fft_entries(&mut entries);
    subframe_entry(&mut entries);
    let tiers = tier_entries();
    eprintln!("timing batched turbo dispatch…");
    let batched = batched_entries();

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": 1,").unwrap();
    writeln!(body, "  \"git_rev\": \"{}\",", json_escape(&git_rev())).unwrap();
    writeln!(body, "  \"machine\": {},", machine_json()).unwrap();
    writeln!(body, "  \"simd_tier\": \"{tier}\",").unwrap();
    writeln!(body, "  \"kernels\": {{").unwrap();
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            body,
            "    \"{}_{}\": {{ \"mean_ns\": {}, \"iters\": {} }}{}",
            e.name, e.size, e.mean_ns, e.iters, comma
        )
        .unwrap();
        eprintln!(
            "  {:>28}_{:<5} {:>12} ns  ({} iters)",
            e.name, e.size, e.mean_ns, e.iters
        );
    }
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"tiers\": {{").unwrap();
    for (ti, (name, entries)) in tiers.iter().enumerate() {
        let tcomma = if ti + 1 < tiers.len() { "," } else { "" };
        writeln!(body, "    \"{name}\": {{").unwrap();
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 < entries.len() { "," } else { "" };
            writeln!(
                body,
                "      \"{}_{}\": {{ \"mean_ns\": {}, \"iters\": {} }}{}",
                e.name, e.size, e.mean_ns, e.iters, comma
            )
            .unwrap();
        }
        writeln!(body, "    }}{tcomma}").unwrap();
    }
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"batched\": {{").unwrap();
    for (i, b) in batched.iter().enumerate() {
        let comma = if i + 1 < batched.len() { "," } else { "" };
        writeln!(
            body,
            "    \"turbo_k{}_b{}\": {{ \"per_call_avx2_ns\": {}, \"batched_ns\": {}, \
             \"speedup\": {:.3} }}{}",
            b.k, b.batch, b.per_call_ns, b.batched_ns, b.speedup, comma
        )
        .unwrap();
        eprintln!(
            "  turbo k={} batch {}: per-call {} ns, batched {} ns ({:.2}x)",
            b.k, b.batch, b.per_call_ns, b.batched_ns, b.speedup
        );
    }
    writeln!(body, "  }}").unwrap();
    writeln!(body, "}}").unwrap();
    std::fs::write(&path, body).expect("write baseline");
    eprintln!("wrote {path}");
}
