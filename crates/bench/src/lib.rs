//! Bench support crate (benches live in the `benches/` directory).
