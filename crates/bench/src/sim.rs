//! `rtopex-bench --sim` — emits `BENCH_sim.json`, the tracked simulator
//! throughput + pooling baseline.
//!
//! Three measurement groups, one JSON object:
//!
//! * `engine` — subframes/second of the production engine (timing wheel +
//!   streaming workload) against the seed baseline (binary heap holding
//!   every release up front + fully materialized schedule), per
//!   scheduler. The `engine_speedup` headline is the **partitioned**
//!   row: with no migration or global-queue simulation in the loop, that
//!   configuration isolates the event-queue + workload-generation change
//!   the PR makes, and its committed full-scale number backs the ≥ 10×
//!   claim the analyzer's `sim-throughput-regression` gate enforces.
//!   The rtopex/global rows carry the same bit-identity witness but
//!   their speedups are diluted by scheduler logic both engines share
//!   (migration scans, queue policy), so they are recorded, not gated.
//!   Each pair of runs is checked for bit-identical miss counts, so the
//!   speedup is never bought with a behavior change.
//! * `shards` — fleet-run scaling across worker threads (same merged
//!   report at every thread count; only wall clock moves).
//! * `pooling` — the cells/core vs fleet-size curves from
//!   `rtopex_experiments::pooling`, with the fitted `a + b/H` parameters
//!   the fleet-level schedulability gate extrapolates from, and the
//!   shipped deployments it checks.
//!
//! ```text
//! cargo run --release -p rtopex-bench -- --sim [--quick] [OUTPUT.json]
//! ```
//!
//! `--quick` shrinks every run to CI scale, where only the schema is
//! being checked; the tracked `BENCH_sim.json` is regenerated full-scale.

use rtopex_core::global::QueuePolicy;
use rtopex_experiments::common::Opts;
use rtopex_experiments::pooling::{
    sweep_all, CORE_BUDGET, MISS_BUDGET, RTT_HALF_US, SHIPPED_FLEET_CONFIGS,
};
use rtopex_sim::{run, run_baseline, run_fleet, FleetConfig, SchedulerKind, SimConfig};
use rtopex_workload::Scenario;
use std::fmt::Write as _;
use std::time::Instant;

/// One scheduler's wheel-vs-heap measurement.
struct EnginePoint {
    name: &'static str,
    wheel_sf_per_sec: f64,
    heap_sf_per_sec: f64,
    speedup: f64,
    reports_match: bool,
}

/// The engine-benchmark workload: enough cells × subframes that the seed
/// baseline's up-front release heap (cells × subframes entries, every
/// pop a cache-hostile O(log n) sift) and materialized schedule dominate
/// its runtime — the pathology the wheel + streaming design removes.
/// Full scale is 128 cells × 300 000 subframes = 38.4M heap entries
/// (~3.4 GB standing state for the baseline vs constant memory for the
/// streaming engine); smaller workloads understate the gap because the
/// seed heap still fits in cache.
fn engine_cfg(quick: bool, sched: SchedulerKind) -> SimConfig {
    let mut s = Scenario::paper_default();
    s.num_bs = if quick { 4 } else { 128 };
    s.subframes = if quick { 3_000 } else { 300_000 };
    let mut cfg = SimConfig::from_scenario(&s, RTT_HALF_US);
    cfg.scheduler = sched;
    cfg.record_samples = false;
    cfg
}

fn engine_point(quick: bool, name: &'static str, sched: SchedulerKind) -> EnginePoint {
    let cfg = engine_cfg(quick, sched);
    let total_sf = (cfg.num_bs * cfg.subframes) as f64;
    // Best-of-N wall time per side: standard practice for wall-clock
    // benchmarks on a shared machine — the minimum is the least-noisy
    // estimate of the true cost, and both sides get the same treatment.
    let reps = if quick { 1 } else { 2 };
    eprintln!(
        "  {name}: {} cells × {} subframes, best of {reps}…",
        cfg.num_bs, cfg.subframes
    );
    let mut wheel_s = f64::INFINITY;
    let mut heap_s = f64::INFINITY;
    let mut reports_match = true;
    for _ in 0..reps {
        let t = Instant::now();
        let wheel = run(&cfg);
        wheel_s = wheel_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let heap = run_baseline(&cfg);
        heap_s = heap_s.min(t.elapsed().as_secs_f64());
        reports_match &= wheel.deadline.per_bs() == heap.deadline.per_bs()
            && wheel.proc_hist == heap.proc_hist
            && wheel.dropped == heap.dropped;
    }
    EnginePoint {
        name,
        wheel_sf_per_sec: total_sf / wheel_s,
        heap_sf_per_sec: total_sf / heap_s,
        speedup: heap_s / wheel_s,
        reports_match,
    }
}

/// Times the fleet run at each thread count (identical merged report;
/// only wall clock changes).
fn shard_scaling(quick: bool) -> (FleetConfig, Vec<(usize, f64)>) {
    let mut s = Scenario::paper_default();
    s.subframes = if quick { 1_000 } else { 10_000 };
    let mut base = SimConfig::from_scenario(&s, RTT_HALF_US);
    base.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
    base.record_samples = false;
    let fc = FleetConfig {
        base,
        hosts: 8,
        threads: 1,
    };
    let total_sf = (fc.hosts * fc.base.num_bs * fc.base.subframes) as f64;
    let points = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let t = Instant::now();
            run_fleet(&FleetConfig {
                threads,
                base: fc.base.clone(),
                hosts: fc.hosts,
            });
            (threads, total_sf / t.elapsed().as_secs_f64())
        })
        .collect();
    (fc, points)
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Runs the simulator benchmark and writes `path`.
pub fn run_bench(quick: bool, path: &str) {
    let opts = Opts {
        quick,
        ..Opts::default()
    };

    eprintln!("engine wheel-vs-heap throughput…");
    let engines = [
        ("partitioned", SchedulerKind::Partitioned),
        ("rtopex", SchedulerKind::RtOpex { delta_us: 20 }),
        (
            "global",
            SchedulerKind::Global {
                cores: CORE_BUDGET,
                policy: QueuePolicy::Edf,
            },
        ),
    ]
    .map(|(name, sched)| engine_point(quick, name, sched));
    // The gated headline: the partitioned row isolates the event-queue
    // change (see the module docs).
    let engine_speedup = engines
        .iter()
        .find(|e| e.name == "partitioned")
        .map(|e| e.speedup)
        .expect("partitioned engine row");

    eprintln!("fleet shard scaling…");
    let (shard_cfg, shard_points) = shard_scaling(quick);

    eprintln!("pooling sweep ({})…", if quick { "quick" } else { "full" });
    let curves = sweep_all(&opts);

    let ecfg = engine_cfg(quick, SchedulerKind::Partitioned);

    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": 1,").unwrap();
    writeln!(body, "  \"quick\": {quick},").unwrap();
    writeln!(
        body,
        "  \"git_rev\": \"{}\",",
        crate::json_escape(&crate::git_rev())
    )
    .unwrap();
    writeln!(body, "  \"machine\": {},", crate::machine_json()).unwrap();

    writeln!(body, "  \"engine\": {{").unwrap();
    writeln!(
        body,
        "    \"config\": {{ \"cells\": {}, \"subframes\": {}, \"rtt_half_us\": {} }},",
        ecfg.num_bs, ecfg.subframes, RTT_HALF_US
    )
    .unwrap();
    writeln!(body, "    \"wheel_vs_heap\": {{").unwrap();
    for (i, e) in engines.iter().enumerate() {
        let comma = if i + 1 < engines.len() { "," } else { "" };
        writeln!(
            body,
            "      \"{}\": {{ \"wheel_sf_per_sec\": {}, \"heap_sf_per_sec\": {}, \
             \"speedup\": {}, \"reports_match\": {} }}{}",
            e.name,
            fmt_f(e.wheel_sf_per_sec),
            fmt_f(e.heap_sf_per_sec),
            fmt_f(e.speedup),
            e.reports_match,
            comma
        )
        .unwrap();
        eprintln!(
            "  {:>12}: wheel {:>12.0} sf/s, heap {:>12.0} sf/s, speedup {:.1}x (match: {})",
            e.name, e.wheel_sf_per_sec, e.heap_sf_per_sec, e.speedup, e.reports_match
        );
    }
    writeln!(body, "    }},").unwrap();
    writeln!(
        body,
        "    \"engine_speedup\": {}, \"engine_speedup_config\": \"partitioned\"",
        fmt_f(engine_speedup)
    )
    .unwrap();
    writeln!(body, "  }},").unwrap();

    writeln!(body, "  \"shards\": {{").unwrap();
    writeln!(
        body,
        "    \"hosts\": {}, \"cells\": {}, \"subframes\": {},",
        shard_cfg.hosts, shard_cfg.base.num_bs, shard_cfg.base.subframes
    )
    .unwrap();
    let threads: Vec<String> = shard_points.iter().map(|(t, _)| t.to_string()).collect();
    let rates: Vec<String> = shard_points.iter().map(|(_, r)| fmt_f(*r)).collect();
    let base_rate = shard_points[0].1;
    let speedups: Vec<String> = shard_points
        .iter()
        .map(|(_, r)| fmt_f(r / base_rate))
        .collect();
    writeln!(body, "    \"threads\": [{}],", threads.join(", ")).unwrap();
    writeln!(body, "    \"sf_per_sec\": [{}],", rates.join(", ")).unwrap();
    writeln!(body, "    \"speedup_vs_1\": [{}]", speedups.join(", ")).unwrap();
    writeln!(body, "  }},").unwrap();

    writeln!(body, "  \"pooling\": {{").unwrap();
    writeln!(
        body,
        "    \"core_budget\": {CORE_BUDGET}, \"miss_budget\": {MISS_BUDGET}, \
         \"rtt_half_us\": {RTT_HALF_US},"
    )
    .unwrap();
    writeln!(body, "    \"modes\": {{").unwrap();
    for (i, c) in curves.iter().enumerate() {
        let comma = if i + 1 < curves.len() { "," } else { "" };
        let hosts: Vec<String> = c.hosts.iter().map(|h| h.to_string()).collect();
        let a_max: Vec<String> = c.a_max.iter().map(|a| a.to_string()).collect();
        let cpc: Vec<String> = c
            .a_max
            .iter()
            .map(|&a| fmt_f(a as f64 / CORE_BUDGET as f64))
            .collect();
        writeln!(
            body,
            "      \"{}\": {{ \"hosts\": [{}], \"a_max\": [{}], \
             \"cells_per_core\": [{}], \"fit_a\": {}, \"fit_b\": {} }}{}",
            c.name,
            hosts.join(", "),
            a_max.join(", "),
            cpc.join(", "),
            fmt_f(c.fit.a),
            fmt_f(c.fit.b),
            comma
        )
        .unwrap();
        eprintln!(
            "  {:>14}: a_max {:?}, fit {:.3} + {:.3}/H",
            c.name, c.a_max, c.fit.a, c.fit.b
        );
    }
    writeln!(body, "    }},").unwrap();
    writeln!(body, "    \"shipped\": [").unwrap();
    for (i, d) in SHIPPED_FLEET_CONFIGS.iter().enumerate() {
        let comma = if i + 1 < SHIPPED_FLEET_CONFIGS.len() {
            ","
        } else {
            ""
        };
        writeln!(
            body,
            "      {{ \"name\": \"{}\", \"hosts\": {}, \"mode\": \"{}\", \
             \"cells_per_host\": {} }}{}",
            d.name, d.hosts, d.mode, d.cells_per_host, comma
        )
        .unwrap();
    }
    writeln!(body, "    ]").unwrap();
    writeln!(body, "  }}").unwrap();
    writeln!(body, "}}").unwrap();

    std::fs::write(path, body).expect("write sim baseline");
    let gate_ok = SHIPPED_FLEET_CONFIGS.iter().all(|d| {
        curves
            .iter()
            .find(|c| c.name == d.mode)
            .map(|c| d.cells_per_host <= c.fit.cells_per_host(d.hosts))
            .unwrap_or(false)
    });
    eprintln!(
        "wrote {path}: engine (partitioned) wheel-vs-heap speedup {:.1}x, shipped deployments {}",
        engine_speedup,
        if gate_ok {
            "within capacity"
        } else {
            "OVER capacity"
        }
    );
}
