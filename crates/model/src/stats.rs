//! Small statistics toolkit: percentiles, empirical CDFs, histograms, and
//! rate accumulators used by the experiment harness and tests.

/// An online accumulator for scalar samples with percentile queries.
///
/// Stores all samples (the experiments need exact tail quantiles down to
/// 10⁻⁴, which sketches would distort). Memory is 8 bytes/sample.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accumulator from existing values.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Samples {
            data,
            sorted: false,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.data.push(v);
        self.sorted = false;
    }

    /// Appends every sample of `other` (per-worker accumulators merged at
    /// the end of a run).
    pub fn merge(&mut self, other: &Samples) {
        self.data.extend_from_slice(&other.data);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw samples — insertion order until a quantile query sorts
    /// them in place. The determinism tests compare these element for
    /// element before any query has run.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Sample standard deviation (0.0 for < 2 samples).
    pub fn std_dev(&self) -> f64 {
        if self.data.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (self.data.len() - 1) as f64;
        var.sqrt()
    }

    /// Minimum (NaN when empty).
    pub fn min(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NAN, f64::min)
    }

    /// Maximum (NaN when empty).
    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NAN, f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.data
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Quantile `q ∈ [0, 1]` by nearest-rank (NaN when empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.data.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.data.len() as f64 - 1.0) * q).round() as usize;
        self.data[idx]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Empirical `P(X > x)` — the complementary CDF at `x`.
    pub fn ccdf_at(&mut self, x: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let above = self.data.partition_point(|v| *v <= x);
        (self.data.len() - above) as f64 / self.data.len() as f64
    }

    /// Evaluates the empirical CDF at each of `points` (values in `[0,1]`).
    pub fn cdf(&mut self, points: &[f64]) -> Vec<f64> {
        points.iter().map(|&x| 1.0 - self.ccdf_at(x)).collect()
    }

    /// Consumes the accumulator and returns the (sorted) raw samples.
    pub fn into_sorted_vec(mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.data
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0 && hi > lo, "invalid histogram range");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a value.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total recorded values including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_center, fraction)` pairs.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.count().max(1) as f64;
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c as f64 / total))
            .collect()
    }

    /// Values recorded below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Merges another histogram of the *same shape* (per-shard
    /// accumulators summed at the end of a fleet run). Bin-wise addition
    /// is associative and commutative, so any merge order gives the same
    /// result — the property the sharded simulator's determinism test
    /// relies on.
    ///
    /// # Panics
    /// Panics on a range or bin-count mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        // analyze: allow(panic): merging differently-shaped histograms silently would corrupt fleet metrics — abort loudly
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "merging histograms of different shape"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

/// Counts deadline outcomes and reports the miss rate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissRate {
    /// Subframes that met their deadline.
    pub met: u64,
    /// Subframes that missed their deadline.
    pub missed: u64,
}

impl MissRate {
    /// Records one subframe outcome.
    pub fn record(&mut self, missed: bool) {
        if missed {
            self.missed += 1;
        } else {
            self.met += 1;
        }
    }

    /// Total subframes observed.
    pub fn total(&self) -> u64 {
        self.met + self.missed
    }

    /// Miss rate in `[0, 1]` (0.0 when nothing recorded).
    pub fn rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.missed as f64 / self.total() as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MissRate) {
        self.met += other.met;
        self.missed += other.missed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let s = Samples::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert!((s.std_dev() - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Samples::from_vec((1..=101).map(|i| i as f64).collect());
        assert_eq!(s.median(), 51.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 101.0);
        assert_eq!(s.quantile(0.9), 91.0);
    }

    #[test]
    fn ccdf_tail() {
        let mut s = Samples::from_vec((0..10_000).map(|i| i as f64).collect());
        assert!((s.ccdf_at(9899.0) - 0.01).abs() < 1e-3);
        assert_eq!(s.ccdf_at(1e9), 0.0);
        assert_eq!(s.ccdf_at(-1.0), 1.0);
    }

    #[test]
    fn empty_samples_are_safe() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert!(s.quantile(0.5).is_nan());
        assert_eq!(s.ccdf_at(0.0), 0.0);
    }

    #[test]
    fn push_after_sort_stays_correct() {
        let mut s = Samples::new();
        s.push(3.0);
        s.push(1.0);
        // Nearest-rank on 2 samples: index round(0.5) = 1 → upper value.
        assert_eq!(s.median(), 3.0);
        s.push(0.0);
        assert_eq!(s.median(), 1.0);
        s.push(10.0);
        s.push(12.0);
        assert_eq!(s.quantile(1.0), 12.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(11.0);
        assert_eq!(h.count(), 12);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.out_of_range(), (1, 1));
    }

    #[test]
    fn histogram_merge_is_binwise() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(9.0);
        b.record(-1.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bins()[0], 2);
        assert_eq!(a.bins()[4], 1);
        assert_eq!(a.out_of_range(), (1, 0));
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn histogram_merge_shape_mismatch_panics() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        a.merge(&Histogram::new(0.0, 10.0, 6));
    }

    #[test]
    fn histogram_normalized_sums_below_one_with_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for _ in 0..3 {
            h.record(0.5);
        }
        h.record(5.0);
        let total: f64 = h.normalized().iter().map(|(_, f)| f).sum();
        assert!((total - 0.75).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_accumulation() {
        let mut m = MissRate::default();
        for i in 0..1000 {
            m.record(i % 100 == 0);
        }
        assert_eq!(m.total(), 1000);
        assert!((m.rate() - 0.01).abs() < 1e-12);
        let mut other = MissRate::default();
        other.record(true);
        m.merge(&other);
        assert_eq!(m.missed, 11);
    }

    #[test]
    #[should_panic(expected = "invalid histogram")]
    fn bad_histogram_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
