//! Calibrated model of the turbo decoder's iteration count and outcome.
//!
//! The real decoder in `rtopex-phy` produces the iteration count `L`
//! natively, but the headline experiments need millions of subframes —
//! far beyond what running the full PHY allows. This module provides a
//! statistical surrogate: given the MCS, its subcarrier load `D`, and the
//! channel SNR, it samples `(L, CRC outcome)` with the qualitative
//! properties the paper measures:
//!
//! * high-margin channels decode in 1 iteration, low-margin channels climb
//!   toward the cap `Lm` (Fig. 3(a));
//! * dropping SNR from 20 dB to 10 dB adds > 50 % processing time at
//!   mid/high MCS (Fig. 3(b));
//! * at the paper's operating point (30 dB SNR), the top MCSes (26–28)
//!   still run 3–4 iterations — which is why subframes above ≈ 30 Mbps
//!   miss a 1.5 ms budget on a single core 100 % of the time (Fig. 17);
//! * the CRC fails with rapidly increasing probability once the SNR falls
//!   below the MCS's requirement.
//!
//! The calibration constants are centralized here and covered by tests;
//! `DESIGN.md` records this as a documented substitution for the authors'
//! OAI decoder statistics.

use rand::Rng;

/// Outcome of one (modeled) transport-block decode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecodeOutcome {
    /// Turbo iterations executed, `1..=l_max`.
    pub iterations: usize,
    /// Whether the transport block passed its CRC.
    pub crc_ok: bool,
}

/// Iteration/outcome model. See the module docs for the calibration targets.
#[derive(Clone, Copy, Debug)]
pub struct IterationModel {
    /// Iteration cap `Lm` (paper: 4).
    pub l_max: usize,
    /// Weight of the SNR-margin deficit term.
    pub margin_gain: f64,
    /// Margin (dB) below which extra iterations start being needed.
    pub margin_knee_db: f64,
    /// Weight of the subcarrier-load term.
    pub load_gain: f64,
    /// Std-dev of the per-subframe iteration noise.
    pub noise_sigma: f64,
}

impl IterationModel {
    /// Calibration used throughout the reproduction (targets above).
    ///
    /// With these constants at the paper's 30 dB operating point:
    /// mean L ≈ 1.1 at MCS 0, ≈ 2.2 at MCS 20, ≈ 3 at MCS 25, pinned at
    /// 4 for MCS 27 — which makes subframes above ≈ 30 Mbps exceed a
    /// 1.5 ms budget on one core essentially always (Fig. 17) while the
    /// MCS ≤ 19 bulk fits every budget in the paper's sweep.
    pub const fn paper_gpp() -> Self {
        IterationModel {
            l_max: 4,
            margin_gain: 0.5,
            margin_knee_db: 6.0,
            load_gain: 0.45,
            noise_sigma: 0.42,
        }
    }

    /// Approximate SNR (dB) required by MCS `m` for reliable decoding.
    ///
    /// Linear ≈ 1 dB/MCS through MCS 20, steeper (2.2 dB/MCS) above — the
    /// top of the 64-QAM range operates very close to capacity.
    pub fn required_snr_db(mcs: u8) -> f64 {
        let m = mcs as f64;
        if m <= 20.0 {
            -6.0 + m
        } else {
            14.0 + 2.2 * (m - 20.0)
        }
    }

    /// Mean iteration count for MCS `mcs` (subcarrier load `d_load`) at
    /// `snr_db`, before clamping to `[1, l_max]`.
    pub fn mean_iterations(&self, mcs: u8, d_load: f64, snr_db: f64) -> f64 {
        let margin = snr_db - Self::required_snr_db(mcs);
        1.0 + self.margin_gain * (self.margin_knee_db - margin).max(0.0) + self.load_gain * d_load
    }

    /// Probability the transport block fails its CRC even at `Lm`.
    pub fn crc_fail_prob(&self, mcs: u8, snr_db: f64) -> f64 {
        let margin = snr_db - Self::required_snr_db(mcs);
        logistic((-1.0 - margin) / 0.7)
    }

    /// Samples one decode outcome.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        mcs: u8,
        d_load: f64,
        snr_db: f64,
        rng: &mut R,
    ) -> DecodeOutcome {
        if rng.gen_bool(self.crc_fail_prob(mcs, snr_db).clamp(0.0, 1.0)) {
            // A failing block burns the whole iteration budget.
            return DecodeOutcome {
                iterations: self.l_max,
                crc_ok: false,
            };
        }
        let mean = self.mean_iterations(mcs, d_load, snr_db);
        let noisy = mean + gaussian(rng) * self.noise_sigma;
        let l = noisy.round().clamp(1.0, self.l_max as f64) as usize;
        DecodeOutcome {
            iterations: l,
            crc_ok: true,
        }
    }
}

impl Default for IterationModel {
    fn default() -> Self {
        Self::paper_gpp()
    }
}

fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-15..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subcarrier load for MCS at 10 MHz (matches `rtopex-phy`'s table for
    /// the values used here; duplicated to keep this crate PHY-independent).
    fn d_load(mcs: u8) -> f64 {
        match mcs {
            0 => 0.165,  // TBS 1384 / 8400 REs
            13 => 1.363, // TBS 11448
            20 => 2.546, // TBS 21384
            21 => 2.546, // same I_TBS as MCS 20 (Qm switch)
            23 => 3.030, // TBS 25456
            26 => 3.640, // TBS 30576
            27 => 3.774, // TBS 31704
            _ => 0.5 + 0.12 * mcs as f64,
        }
    }

    fn mean_sampled_l(mcs: u8, snr: f64, seed: u64) -> f64 {
        let m = IterationModel::paper_gpp();
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        (0..n)
            .map(|_| m.sample(mcs, d_load(mcs), snr, &mut rng).iterations)
            .sum::<usize>() as f64
            / n as f64
    }

    #[test]
    fn low_mcs_high_snr_is_one_iteration() {
        let l = mean_sampled_l(0, 30.0, 1);
        assert!(l < 1.2, "MCS 0 @ 30 dB: mean L = {l}");
    }

    #[test]
    fn top_mcs_at_30db_runs_3_to_4_iterations() {
        // The Fig. 17 calibration target: MCS 26+ needs L ≥ 3 essentially
        // always, which makes >30 Mbps subframes exceed a 1.5 ms budget.
        let l27 = mean_sampled_l(27, 30.0, 2);
        assert!((3.4..=4.0).contains(&l27), "MCS 27: {l27}");
        let m = IterationModel::paper_gpp();
        let mut rng = StdRng::seed_from_u64(3);
        let le2 = (0..50_000)
            .filter(|_| m.sample(26, d_load(26), 30.0, &mut rng).iterations <= 2)
            .count();
        assert!(le2 < 200, "MCS 26 decoded in ≤2 iters {le2}/50000 times");
    }

    #[test]
    fn mid_mcs_iteration_gradient() {
        // The Fig. 17 cliff: partitioned scheduling holds ≈ 1e-2 misses
        // through the mid-20s Mbps and collapses above ≈ 28 Mbps. That
        // requires P(L ≥ 3) to climb steeply across MCS 20 → 25 while
        // P(L = 4) stays small below MCS 25.
        let m = IterationModel::paper_gpp();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let p_ge = |mcs: u8, lmin: usize, rng: &mut StdRng| {
            (0..n)
                .filter(|_| m.sample(mcs, d_load(mcs), 30.0, rng).iterations >= lmin)
                .count() as f64
                / n as f64
        };
        let p20 = p_ge(20, 3, &mut rng);
        let p23 = p_ge(23, 3, &mut rng);
        let p26 = p_ge(26, 3, &mut rng);
        assert!(p20 < p23 && p23 < p26, "gradient {p20} {p23} {p26}");
        assert!((0.1..0.5).contains(&p20), "P(L≥3|MCS20) = {p20}");
        assert!(p26 > 0.95, "P(L≥3|MCS26) = {p26}");
        // L = 4 remains rare in the low-20s band.
        let p21_4 = p_ge(21, 4, &mut rng);
        assert!(p21_4 < 0.02, "P(L=4|MCS21) = {p21_4}");
    }

    #[test]
    fn fig3b_snr_drop_adds_iterations() {
        // 20 dB → 10 dB at MCS 13 adds > 50 % iterations (hence time).
        let hi = mean_sampled_l(13, 20.0, 5);
        let lo = mean_sampled_l(13, 10.0, 5);
        assert!(lo > 1.5 * hi, "20 dB: {hi}, 10 dB: {lo}");
    }

    #[test]
    fn crc_fails_below_requirement() {
        let m = IterationModel::paper_gpp();
        let req = IterationModel::required_snr_db(16);
        assert!(m.crc_fail_prob(16, req - 5.0) > 0.9);
        assert!(m.crc_fail_prob(16, req + 5.0) < 0.01);
    }

    #[test]
    fn crc_failures_cost_full_budget() {
        let m = IterationModel::paper_gpp();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let o = m.sample(27, d_load(27), 0.0, &mut rng);
            if !o.crc_ok {
                assert_eq!(o.iterations, m.l_max);
            }
        }
    }

    #[test]
    fn required_snr_is_monotone() {
        let mut prev = f64::MIN;
        for mcs in 0..=28 {
            let r = IterationModel::required_snr_db(mcs);
            assert!(r > prev, "MCS {mcs}");
            prev = r;
        }
    }

    #[test]
    fn iterations_always_in_range() {
        let m = IterationModel::paper_gpp();
        let mut rng = StdRng::seed_from_u64(7);
        for mcs in [0u8, 10, 20, 27] {
            for snr in [-10.0, 5.0, 15.0, 30.0] {
                for _ in 0..200 {
                    let o = m.sample(mcs, d_load(mcs), snr, &mut rng);
                    assert!((1..=m.l_max).contains(&o.iterations));
                }
            }
        }
    }

    #[test]
    fn paper_operating_point_has_low_bler() {
        // At 30 dB / MCS ≤ 23 the CRC should almost never fail; the top
        // MCS may sit near the standard 10 % BLER operating target.
        let m = IterationModel::paper_gpp();
        assert!(m.crc_fail_prob(23, 30.0) < 1e-5);
        assert!(m.crc_fail_prob(27, 30.0) < 0.15);
    }
}
