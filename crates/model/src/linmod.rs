//! The linear uplink processing-time model — Eq. (1) of the paper.
//!
//! ```text
//! T_rxproc = w0 + w1·N + w2·K + w3·D·L + E        [µs]
//! ```
//!
//! * `N` — number of receive antennas,
//! * `K` — modulation order (2 / 4 / 6),
//! * `D` — subcarrier load in bits per resource element,
//! * `L` — turbo iterations actually executed,
//! * `E` — platform error term (see [`crate::platform`]).

use serde::{Deserialize, Serialize};

/// Coefficients of the Eq. (1) processing-time model, in microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcModel {
    /// Constant overhead `w0`.
    pub w0: f64,
    /// Per-antenna cost `w1` (symbol-level blocks: FFT, equalization, copies).
    pub w1: f64,
    /// Per-modulation-order cost `w2` (constellation-level blocks).
    pub w2: f64,
    /// Per-`D·L` cost `w3` (decoder: `D` bits per subcarrier per iteration).
    pub w3: f64,
}

impl ProcModel {
    /// The paper's Table 1 estimates for the GPP platform
    /// (Xeon E5-2660, r² = 0.992).
    pub const fn paper_gpp() -> Self {
        ProcModel {
            w0: 31.4,
            w1: 169.1,
            w2: 49.7,
            w3: 93.0,
        }
    }

    /// Predicted processing time in µs (without the error term `E`).
    pub fn predict(&self, n_antennas: usize, qm: usize, d_load: f64, iters: f64) -> f64 {
        self.w0 + self.w1 * n_antennas as f64 + self.w2 * qm as f64 + self.w3 * d_load * iters
    }

    /// Worst-case execution time: `L` replaced by the iteration cap `Lm`
    /// (§2.1: "we obtain an WCET bound by substituting L with Lm").
    pub fn wcet(&self, n_antennas: usize, qm: usize, d_load: f64, l_max: usize) -> f64 {
        self.predict(n_antennas, qm, d_load, l_max as f64)
    }

    /// Marginal cost of one extra turbo iteration at subcarrier load `d`
    /// (the paper quotes ≈ 345 µs at MCS 27, where `D ≈ 3.7`).
    pub fn per_iteration_cost(&self, d_load: f64) -> f64 {
        self.w3 * d_load
    }
}

impl Default for ProcModel {
    fn default() -> Self {
        Self::paper_gpp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D_MCS0: f64 = 0.165; // 1384 bits / 8400 REs
    const D_MCS27: f64 = 3.774; // 31704 bits / 8400 REs

    #[test]
    fn paper_headline_numbers() {
        let m = ProcModel::paper_gpp();
        // "each additional antenna adds 169µs"
        let t1 = m.predict(1, 6, D_MCS27, 2.0);
        let t2 = m.predict(2, 6, D_MCS27, 2.0);
        assert!((t2 - t1 - 169.1).abs() < 1e-9);
        // "each Turbo iteration at MCS 27 adds 345µs"
        let per_iter = m.per_iteration_cost(D_MCS27);
        assert!((per_iter - 351.0).abs() < 10.0, "per-iter {per_iter}");
    }

    #[test]
    fn mcs_span_factor_matches_fig3a() {
        // Fig. 3(a): processing time grows ≈ 2.8× from MCS 0 to MCS 27 (N=2).
        let m = ProcModel::paper_gpp();
        let lo = m.predict(2, 2, D_MCS0, 1.0);
        let hi = m.predict(2, 6, D_MCS27, 2.0);
        let ratio = hi / lo;
        assert!(lo > 450.0 && lo < 550.0, "MCS0 time {lo}");
        assert!((2.3..=3.2).contains(&ratio), "span ratio {ratio}");
    }

    #[test]
    fn wcet_uses_iteration_cap() {
        let m = ProcModel::paper_gpp();
        assert_eq!(m.wcet(2, 6, D_MCS27, 4), m.predict(2, 6, D_MCS27, 4.0));
        // WCET at MCS 27 exceeds 2 ms — the over-provisioning the paper
        // blames partitioned schedulers for.
        assert!(m.wcet(2, 6, D_MCS27, 4) > 2000.0);
    }

    #[test]
    fn predict_is_monotone_in_everything() {
        let m = ProcModel::paper_gpp();
        let base = m.predict(1, 2, 1.0, 1.0);
        assert!(m.predict(2, 2, 1.0, 1.0) > base);
        assert!(m.predict(1, 4, 1.0, 1.0) > base);
        assert!(m.predict(1, 2, 2.0, 1.0) > base);
        assert!(m.predict(1, 2, 1.0, 2.0) > base);
    }

    #[test]
    fn default_is_paper_gpp() {
        assert_eq!(ProcModel::default(), ProcModel::paper_gpp());
    }
}
