//! Ordinary-least-squares fitting of the Eq. (1) model — regenerates Table 1.
//!
//! The paper fits `T = w0 + w1·N + w2·K + w3·(D·L)` on 4×10⁶ measurements
//! and reports r² = 0.992. This module solves the 4×4 normal equations with
//! Gaussian elimination (no linear-algebra dependency needed for a
//! four-parameter regression).

use crate::linmod::ProcModel;

/// One processing-time measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelSample {
    /// Number of receive antennas `N`.
    pub n_antennas: usize,
    /// Modulation order `K`.
    pub qm: usize,
    /// Subcarrier load `D` (bits per RE).
    pub d_load: f64,
    /// Turbo iterations `L`.
    pub iters: f64,
    /// Measured total processing time, µs.
    pub time_us: f64,
}

impl ModelSample {
    /// The regressor vector `(1, N, K, D·L)`.
    fn regressors(&self) -> [f64; 4] {
        [
            1.0,
            self.n_antennas as f64,
            self.qm as f64,
            self.d_load * self.iters,
        ]
    }
}

/// Result of a model fit.
#[derive(Clone, Copy, Debug)]
pub struct FitResult {
    /// Estimated coefficients.
    pub model: ProcModel,
    /// Coefficient of determination r².
    pub r2: f64,
    /// Number of samples used.
    pub n_samples: usize,
}

/// Solves `A·x = b` for a small dense system by Gaussian elimination with
/// partial pivoting. Returns `None` if the system is singular.
pub fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    #[allow(clippy::needless_range_loop)] // textbook Gaussian elimination indices
    for col in 0..n {
        // Pivot: largest |a[row][col]| among remaining rows.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Fits the Eq. (1) coefficients by OLS. Returns `None` when the design
/// matrix is singular (e.g. all samples share the same antenna count).
pub fn fit_proc_model(samples: &[ModelSample]) -> Option<FitResult> {
    if samples.len() < 4 {
        return None;
    }
    // Normal equations: (XᵀX) w = Xᵀy.
    let mut xtx = vec![vec![0.0f64; 4]; 4];
    let mut xty = vec![0.0f64; 4];
    for s in samples {
        let x = s.regressors();
        for i in 0..4 {
            for j in 0..4 {
                xtx[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * s.time_us;
        }
    }
    let w = solve_dense(xtx, xty)?;
    let model = ProcModel {
        w0: w[0],
        w1: w[1],
        w2: w[2],
        w3: w[3],
    };
    // r² = 1 − SS_res / SS_tot.
    let mean = samples.iter().map(|s| s.time_us).sum::<f64>() / samples.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for s in samples {
        let pred = model.predict(s.n_antennas, s.qm, s.d_load, s.iters);
        ss_res += (s.time_us - pred).powi(2);
        ss_tot += (s.time_us - mean).powi(2);
    }
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(FitResult {
        model,
        r2,
        n_samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synth_samples(truth: &ProcModel, noise_us: f64, n: usize, seed: u64) -> Vec<ModelSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let ants = rng.gen_range(1..=4usize);
                let qm = [2usize, 4, 6][rng.gen_range(0..3)];
                let d: f64 = rng.gen_range(0.16..3.8);
                let l = rng.gen_range(1..=4usize) as f64;
                let e: f64 = rng.gen_range(-noise_us..=noise_us);
                ModelSample {
                    n_antennas: ants,
                    qm,
                    d_load: d,
                    iters: l,
                    time_us: truth.predict(ants, qm, d, l) + e,
                }
            })
            .collect()
    }

    #[test]
    fn exact_recovery_without_noise() {
        let truth = ProcModel::paper_gpp();
        let fit = fit_proc_model(&synth_samples(&truth, 0.0, 500, 1)).unwrap();
        assert!((fit.model.w0 - truth.w0).abs() < 1e-6);
        assert!((fit.model.w1 - truth.w1).abs() < 1e-6);
        assert!((fit.model.w2 - truth.w2).abs() < 1e-6);
        assert!((fit.model.w3 - truth.w3).abs() < 1e-6);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn noisy_recovery_close_and_high_r2() {
        let truth = ProcModel::paper_gpp();
        let fit = fit_proc_model(&synth_samples(&truth, 30.0, 20_000, 2)).unwrap();
        assert!((fit.model.w1 - truth.w1).abs() < 3.0, "w1 {}", fit.model.w1);
        assert!((fit.model.w3 - truth.w3).abs() < 2.0, "w3 {}", fit.model.w3);
        assert!(fit.r2 > 0.98, "r² {}", fit.r2);
    }

    #[test]
    fn degenerate_design_is_rejected() {
        // All samples identical → singular normal equations.
        let s = ModelSample {
            n_antennas: 2,
            qm: 4,
            d_load: 1.0,
            iters: 2.0,
            time_us: 500.0,
        };
        assert!(fit_proc_model(&vec![s; 100]).is_none());
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = ModelSample {
            n_antennas: 1,
            qm: 2,
            d_load: 0.5,
            iters: 1.0,
            time_us: 300.0,
        };
        assert!(fit_proc_model(&[s; 3]).is_none());
    }

    #[test]
    fn solve_dense_known_system() {
        // x + y = 3; x − y = 1 → x = 2, y = 1.
        let x = solve_dense(vec![vec![1.0, 1.0], vec![1.0, -1.0]], vec![3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_singular_returns_none() {
        assert!(solve_dense(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_dense_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let x = solve_dense(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn r2_decreases_with_noise() {
        let truth = ProcModel::paper_gpp();
        let clean = fit_proc_model(&synth_samples(&truth, 5.0, 5000, 3)).unwrap();
        let noisy = fit_proc_model(&synth_samples(&truth, 200.0, 5000, 3)).unwrap();
        assert!(clean.r2 > noisy.r2);
    }
}
