//! Per-task and per-subtask time split of the Eq. (1) total.
//!
//! §2.2 of the paper decomposes subframe processing into three sequential
//! tasks — FFT, demod, decode — and measures (Fig. 4) that the FFT task
//! parallelizes almost perfectly while the decode task parallelizes over
//! code blocks. RT-OPEX's migration algorithm needs a *deterministic
//! per-subtask execution time* `tp` (Alg. 1); this module provides it,
//! splitting the model so the three tasks sum exactly back to Eq. (1).
//!
//! Defaults are calibrated to the paper's measurements: the per-antenna FFT
//! task costs ≈ 108 µs (Fig. 18, local FFT median) and the decode task is
//! the `w3·D·L` term, evenly split across `C` code blocks.

use crate::linmod::ProcModel;

/// Splits the Eq. (1) total into FFT / demod / decode task times.
#[derive(Clone, Copy, Debug)]
pub struct TaskTimeModel {
    /// The underlying total-time model.
    pub proc: ProcModel,
    /// FFT-task cost per receive antenna (µs). Must stay below `w1` so the
    /// demod task's antenna share remains positive.
    pub fft_per_antenna_us: f64,
}

impl TaskTimeModel {
    /// Paper calibration (Table 1 + Fig. 18).
    pub const fn paper_gpp() -> Self {
        TaskTimeModel {
            proc: ProcModel::paper_gpp(),
            fft_per_antenna_us: 108.0,
        }
    }

    /// Total FFT-task time for `n` antennas (µs).
    pub fn fft_total(&self, n_antennas: usize) -> f64 {
        self.fft_per_antenna_us * n_antennas as f64
    }

    /// Number of migratable FFT subtasks and each one's time `tp` (µs).
    ///
    /// Granularity: one antenna's 14-symbol FFT batch — the unit the paper
    /// migrates (its Fig. 18 "FFT" tasks are ≈ 108 µs each).
    pub fn fft_subtasks(&self, n_antennas: usize) -> (usize, f64) {
        (n_antennas, self.fft_per_antenna_us)
    }

    /// Total demod-task time (channel estimation, equalization, demapping)
    /// for `n` antennas and modulation order `qm` (µs).
    pub fn demod_total(&self, n_antennas: usize, qm: usize) -> f64 {
        self.proc.w0
            + (self.proc.w1 - self.fft_per_antenna_us) * n_antennas as f64
            + self.proc.w2 * qm as f64
    }

    /// Total decode-task time at subcarrier load `d` with `l` iterations (µs).
    pub fn decode_total(&self, d_load: f64, iters: f64) -> f64 {
        self.proc.w3 * d_load * iters
    }

    /// Number of decode subtasks (= code blocks `c`) and each one's `tp`
    /// (µs), assuming the per-block iteration counts average to `iters`.
    ///
    /// # Panics
    /// Panics if `c == 0`.
    pub fn decode_subtasks(&self, d_load: f64, iters: f64, c: usize) -> (usize, f64) {
        assert!(c > 0, "at least one code block");
        (c, self.decode_total(d_load, iters) / c as f64)
    }

    /// Total subframe processing time — identical to
    /// [`ProcModel::predict`], by construction.
    pub fn subframe_total(&self, n_antennas: usize, qm: usize, d_load: f64, iters: f64) -> f64 {
        self.fft_total(n_antennas)
            + self.demod_total(n_antennas, qm)
            + self.decode_total(d_load, iters)
    }
}

impl Default for TaskTimeModel {
    fn default() -> Self {
        Self::paper_gpp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tasks_sum_to_eq1() {
        let m = TaskTimeModel::paper_gpp();
        for (n, qm, d, l) in [(1, 2, 0.165, 1.0), (2, 6, 3.77, 4.0), (4, 4, 1.5, 2.0)] {
            let split = m.subframe_total(n, qm, d, l);
            let direct = m.proc.predict(n, qm, d, l);
            assert!((split - direct).abs() < 1e-9, "n={n} qm={qm}");
        }
    }

    #[test]
    fn fig4a_fft_halves_over_two_cores() {
        // Splitting the N=2 FFT task across 2 cores ⇒ each core does one
        // antenna's batch: exactly half the serial time.
        let m = TaskTimeModel::paper_gpp();
        let serial = m.fft_total(2);
        let (count, tp) = m.fft_subtasks(2);
        assert_eq!(count, 2);
        assert!((tp - serial / 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig4b_decode_parallel_gain() {
        // Paper Fig. 4(b): parallelizing MCS-27 decode over 2 cores cuts
        // ≈ 310 µs (980 → 670 µs). In the model, moving half the code
        // blocks halves the decode-task critical path.
        let m = TaskTimeModel::paper_gpp();
        let total = m.decode_total(3.77, 2.0);
        let (c, tp) = m.decode_subtasks(3.77, 2.0, 6);
        let two_core_critical_path = tp * (c as f64 / 2.0);
        let saving = total - two_core_critical_path;
        assert!(
            (250.0..=400.0).contains(&saving),
            "saving {saving} µs should be near the paper's 310 µs"
        );
    }

    #[test]
    fn demod_share_positive_for_all_antennas() {
        let m = TaskTimeModel::paper_gpp();
        for n in 1..=8 {
            for qm in [2, 4, 6] {
                assert!(m.demod_total(n, qm) > 0.0);
            }
        }
    }

    #[test]
    fn decode_subtask_times_scale_inverse_c() {
        let m = TaskTimeModel::paper_gpp();
        let (_, tp6) = m.decode_subtasks(3.77, 4.0, 6);
        let (_, tp3) = m.decode_subtasks(3.77, 4.0, 3);
        assert!((tp3 - 2.0 * tp6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "code block")]
    fn zero_blocks_panics() {
        TaskTimeModel::paper_gpp().decode_subtasks(1.0, 1.0, 0);
    }

    proptest! {
        #[test]
        fn prop_split_consistency(n in 1usize..8, qm in prop::sample::select(vec![2usize, 4, 6]),
                                  d in 0.1f64..4.0, l in 1f64..4.0) {
            let m = TaskTimeModel::paper_gpp();
            let total = m.subframe_total(n, qm, d, l);
            let direct = m.proc.predict(n, qm, d, l);
            prop_assert!((total - direct).abs() < 1e-6);
            prop_assert!(m.fft_total(n) > 0.0);
            prop_assert!(m.decode_total(d, l) > 0.0);
        }
    }
}
