//! Platform-error and stress-benchmark models — the `E` term of Eq. (1).
//!
//! The paper attributes the residual between its linear model and measured
//! processing times almost entirely to the soft-real-time platform (kernel
//! tasks, interrupts): 99.9 % of errors are below 0.15 ms, but a ~10⁻⁵
//! tail reaches several hundred µs (Fig. 3(d)). It validates this with a
//! `cyclictest` run under `hackbench` load whose order statistics match.
//!
//! We model `E` as a zero-mean Gaussian body plus a rare exponential
//! positive tail (a kernel preemption only ever *adds* latency), and the
//! stress benchmark as a lognormal body with the same kind of tail.

use rand::Rng;

/// Samples the Eq. (1) error term `E` (µs).
#[derive(Clone, Copy, Debug)]
pub struct PlatformJitter {
    /// Standard deviation of the Gaussian body (µs).
    pub body_sigma_us: f64,
    /// Probability that a sample lands in the preemption tail.
    pub tail_prob: f64,
    /// Offset where the tail starts (µs).
    pub tail_offset_us: f64,
    /// Mean of the exponential tail beyond the offset (µs).
    pub tail_mean_us: f64,
    /// Hard cap on the tail (µs) — the paper observed ≤ 0.7 ms.
    pub tail_cap_us: f64,
}

impl PlatformJitter {
    /// Calibration matching Fig. 3(d): 99.9 % < 150 µs, ≈ 10⁻⁵ above
    /// 400 µs, capped at 700 µs.
    pub const fn paper_gpp() -> Self {
        PlatformJitter {
            body_sigma_us: 40.0,
            tail_prob: 8.0e-4,
            tail_offset_us: 150.0,
            tail_mean_us: 60.0,
            tail_cap_us: 700.0,
        }
    }

    /// A quiet platform (for ablation experiments): body only.
    pub const fn quiet() -> Self {
        PlatformJitter {
            body_sigma_us: 10.0,
            tail_prob: 0.0,
            tail_offset_us: 0.0,
            tail_mean_us: 0.0,
            tail_cap_us: 0.0,
        }
    }

    /// Draws one error sample in µs. May be negative (model error), but the
    /// tail contribution is always positive (kernel preemption adds time).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let body = gaussian(rng) * self.body_sigma_us;
        if self.tail_prob > 0.0 && rng.gen_bool(self.tail_prob) {
            let extra = -self.tail_mean_us * (1.0 - rng.gen::<f64>()).ln();
            body + (self.tail_offset_us + extra).min(self.tail_cap_us)
        } else {
            body
        }
    }
}

impl Default for PlatformJitter {
    fn default() -> Self {
        Self::paper_gpp()
    }
}

/// Samples cyclictest-style wake-up latencies under background load (µs)
/// — the paper's stress benchmark (Fig. 3(d), "benchmark" curve).
#[derive(Clone, Copy, Debug)]
pub struct StressBenchmark {
    /// Median latency (µs); the paper reports a 0.2 ms mean.
    pub median_us: f64,
    /// Lognormal shape parameter of the body.
    pub sigma: f64,
    /// Probability of an outlier preemption event.
    pub tail_prob: f64,
    /// Mean of the outlier's exponential excess (µs).
    pub tail_mean_us: f64,
}

impl StressBenchmark {
    /// Calibration matching the paper: mean ≈ 0.2 ms, occasional samples
    /// above 0.4 ms (≈ 1 in 10⁵ above a few hundred µs excess).
    pub const fn paper_gpp() -> Self {
        StressBenchmark {
            median_us: 195.0,
            sigma: 0.16,
            tail_prob: 1.0e-4,
            tail_mean_us: 120.0,
        }
    }

    /// Draws one latency sample in µs (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let body = self.median_us * (gaussian(rng) * self.sigma).exp();
        if self.tail_prob > 0.0 && rng.gen_bool(self.tail_prob) {
            body + -self.tail_mean_us * (1.0 - rng.gen::<f64>()).ln()
        } else {
            body
        }
    }
}

impl Default for StressBenchmark {
    fn default() -> Self {
        Self::paper_gpp()
    }
}

/// Standard normal sample (Box-Muller).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-15..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw_jitter(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let j = PlatformJitter::paper_gpp();
        (0..n).map(|_| j.sample(&mut rng)).collect()
    }

    #[test]
    fn body_is_roughly_zero_mean() {
        let v = draw_jitter(100_000, 1);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 2.0, "mean {mean} µs");
    }

    #[test]
    fn fig3d_order_statistics() {
        // 99.9 % of |E| below 150 µs.
        let mut v = draw_jitter(1_000_000, 2);
        v.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());
        let p999 = v[(v.len() as f64 * 0.999) as usize].abs();
        assert!(p999 < 160.0, "p99.9 = {p999} µs");
        // A real tail exists: some samples beyond 200 µs…
        let above200 = v.iter().filter(|x| **x > 200.0).count();
        assert!(above200 > 0, "no tail at all");
        // …but it is rare and capped at 700 µs + body.
        assert!((above200 as f64) < 1e-3 * v.len() as f64);
        assert!(v.iter().all(|x| *x < 900.0));
    }

    #[test]
    fn quiet_platform_has_no_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let j = PlatformJitter::quiet();
        for _ in 0..100_000 {
            let s = j.sample(&mut rng);
            assert!(s.abs() < 100.0, "outlier {s} on quiet platform");
        }
    }

    #[test]
    fn stress_benchmark_mean_near_200us() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = StressBenchmark::paper_gpp();
        let n = 200_000;
        let mean = (0..n).map(|_| b.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 15.0, "mean {mean} µs");
    }

    #[test]
    fn stress_benchmark_has_rare_tail_above_400us() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = StressBenchmark::paper_gpp();
        let n = 1_000_000;
        let above400 = (0..n).filter(|_| b.sample(&mut rng) > 400.0).count();
        // The paper: "some of the measurements have a latency above 0.4ms",
        // at roughly the 1-in-10⁵ level.
        assert!(above400 >= 1, "tail missing");
        assert!(above400 < n / 5_000, "tail too fat: {above400}");
    }

    #[test]
    fn stress_samples_always_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = StressBenchmark::paper_gpp();
        assert!((0..50_000).all(|_| b.sample(&mut rng) > 0.0));
    }

    #[test]
    fn jitter_tail_is_positive_only() {
        // Negative samples must stay within the Gaussian body range.
        let v = draw_jitter(500_000, 7);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min > -6.0 * 40.0, "negative outlier {min}");
    }
}
