//! # rtopex-model — processing-time and platform models
//!
//! Implements §2.1 of the paper:
//!
//! * [`linmod`] — the linear uplink processing-time model, Eq. (1):
//!   `T = w0 + w1·N + w2·K + w3·D·L + E`, with the paper's Table 1
//!   GPP coefficients as defaults;
//! * [`fit`] — ordinary-least-squares estimation of the coefficients from
//!   measurements (regenerates Table 1) with the r² goodness-of-fit metric;
//! * [`platform`] — the error term `E`: soft-real-time platform jitter with
//!   the long tail of Fig. 3(d), plus a cyclictest-style stress benchmark
//!   model;
//! * [`tasks`] — the per-task (FFT / demod / decode) and per-subtask time
//!   split used by the schedulers' migration decisions;
//! * [`iters`] — a calibrated model of the turbo decoder's iteration count
//!   and CRC outcome as a function of MCS and SNR, used by the simulator in
//!   place of running the real decoder millions of times;
//! * [`stats`] — small statistics toolkit (percentiles, CDFs, histograms)
//!   shared by the experiment harness.
//!
//! All times are **microseconds** (`f64`) in this crate; the discrete-event
//! simulator converts to integer nanoseconds at its boundary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fit;
pub mod iters;
pub mod linmod;
pub mod platform;
pub mod stats;
pub mod tasks;

pub use fit::{fit_proc_model, FitResult, ModelSample};
pub use linmod::ProcModel;
pub use platform::{PlatformJitter, StressBenchmark};
pub use tasks::TaskTimeModel;
