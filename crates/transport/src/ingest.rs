//! Batched multi-cell fronthaul ingest.
//!
//! When one host consolidates N RAPs (the Fig. 17/18 regime), their IQ
//! streams do not arrive over N independent transports: every radio's
//! 1 GbE link funnels through the same aggregation switch into the GPP's
//! single 10 GbE port, and a single delivery thread demultiplexes the
//! stream to the per-cell workers. This module models that shared path:
//! the per-radio serialization still happens in parallel, but the
//! aggregation link carries all cells' subframes back-to-back each 1 ms
//! period, so cell *k*'s samples land `Σ_{j≤k} serialize(j)` after the
//! first byte — a deterministic stagger the cluster scheduler can exploit
//! (cells do not all release at the same instant, spreading the load).
//!
//! All steady-state methods write into caller-owned buffers so the
//! delivery thread stays allocation-free.

use crate::link::{TestbedLink, BYTES_PER_SAMPLE};
use rand::Rng;
use rtopex_phy::params::Bandwidth;

/// One consolidated cell's fronthaul demand.
#[derive(Clone, Copy, Debug)]
pub struct CellFeed {
    /// The cell's LTE bandwidth.
    pub bandwidth: Bandwidth,
    /// Receive antennas at the RAP.
    pub num_antennas: usize,
}

impl CellFeed {
    /// Bytes this cell ships per subframe period (all antennas).
    pub fn bytes_per_subframe(&self) -> usize {
        self.bandwidth.samples_per_subframe() * BYTES_PER_SAMPLE * self.num_antennas
    }
}

/// Shared-port ingest for N consolidated cells.
#[derive(Clone, Debug)]
pub struct MulticellIngest {
    link: TestbedLink,
    cells: Vec<CellFeed>,
}

impl MulticellIngest {
    /// Builds an ingest plan for `cells` sharing `link`'s aggregation port.
    pub fn new(link: TestbedLink, cells: Vec<CellFeed>) -> Self {
        MulticellIngest { link, cells }
    }

    /// A homogeneous cluster: `n` identical cells.
    pub fn homogeneous(link: TestbedLink, n: usize, bandwidth: Bandwidth, ants: usize) -> Self {
        Self::new(
            link,
            vec![
                CellFeed {
                    bandwidth,
                    num_antennas: ants
                };
                n
            ],
        )
    }

    /// Number of consolidated cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The per-cell feeds.
    pub fn cells(&self) -> &[CellFeed] {
        &self.cells
    }

    /// Total bytes crossing the aggregation port per subframe period.
    pub fn aggregate_bytes_per_subframe(&self) -> usize {
        self.cells.iter().map(CellFeed::bytes_per_subframe).sum()
    }

    /// Time to serialize one period's worth of every cell over the shared
    /// aggregation link, µs — the quantity that must stay below the period
    /// for the port not to build a queue.
    pub fn aggregate_serialize_us(&self) -> f64 {
        self.aggregate_bytes_per_subframe() as f64 * 8.0 / self.link.aggregate_bps * 1e6
    }

    /// Whether the shared port can sustain all cells at `period_us`
    /// (worst-case delivery of the last cell, jitter included, inside the
    /// period — the paper's supportability criterion generalized to N
    /// cells).
    pub fn sustainable(&self, period_us: f64) -> bool {
        let last = self
            .deterministic_delivery_us(self.cells.len().saturating_sub(1))
            .unwrap_or(0.0);
        last + self.link.jitter_us < period_us
    }

    /// Deterministic delivery offset of cell `idx` within a period, µs:
    /// base latency + its radio-link serialization (parallel across
    /// antennas/radios) + the aggregation link's back-to-back serialization
    /// of every cell up to and including it.
    pub fn deterministic_delivery_us(&self, idx: usize) -> Option<f64> {
        let cell = self.cells.get(idx)?;
        let radio =
            TestbedLink::subframe_bytes(cell.bandwidth) as f64 * 8.0 / self.link.radio_bps * 1e6;
        let agg_bytes: usize = self.cells[..=idx]
            .iter()
            .map(CellFeed::bytes_per_subframe)
            .sum();
        let agg = agg_bytes as f64 * 8.0 / self.link.aggregate_bps * 1e6;
        Some(self.link.base_us + radio + agg)
    }

    /// Fills `out[k]` with cell `k`'s delivery offset for one period,
    /// adding a single shared jitter draw (one delivery thread, one port).
    /// Reuses `out`'s capacity — allocation-free once warmed.
    pub fn plan_deliveries_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<f64>) {
        let jitter = if self.link.jitter_us > 0.0 {
            rng.gen_range(0.0..=self.link.jitter_us)
        } else {
            0.0
        };
        out.clear();
        for k in 0..self.cells.len() {
            let d = self.deterministic_delivery_us(k).unwrap_or(0.0);
            out.push(d + jitter);
        }
    }

    /// The largest homogeneous cell count the shared port sustains at
    /// `period_us`.
    pub fn max_supported_cells(
        link: TestbedLink,
        bandwidth: Bandwidth,
        ants: usize,
        period_us: f64,
    ) -> usize {
        (1..=256)
            .take_while(|&n| Self::homogeneous(link, n, bandwidth, ants).sustainable(period_us))
            .last()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn link() -> TestbedLink {
        TestbedLink::paper_testbed()
    }

    #[test]
    fn aggregate_bytes_sum_over_cells() {
        let ing = MulticellIngest::homogeneous(link(), 3, Bandwidth::Mhz5, 2);
        assert_eq!(ing.aggregate_bytes_per_subframe(), 3 * 2 * 7_680 * 4);
        assert_eq!(ing.num_cells(), 3);
    }

    #[test]
    fn deliveries_are_staggered_and_monotone() {
        let ing = MulticellIngest::homogeneous(link(), 4, Bandwidth::Mhz5, 2);
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        ing.plan_deliveries_into(&mut rng, &mut out);
        assert_eq!(out.len(), 4);
        for w in out.windows(2) {
            assert!(w[1] > w[0], "later cells deliver strictly later");
        }
        // The stagger between adjacent cells equals one cell's aggregate
        // serialization time.
        let per_cell = ing.aggregate_serialize_us() / 4.0;
        assert!((out[1] - out[0] - per_cell).abs() < 1e-9);
    }

    #[test]
    fn single_cell_matches_link_model() {
        let ing = MulticellIngest::homogeneous(link(), 1, Bandwidth::Mhz5, 2);
        let d = ing.deterministic_delivery_us(0).unwrap();
        let expect = link().one_way_deterministic_us(Bandwidth::Mhz5, 2);
        assert!((d - expect).abs() < 1e-9);
    }

    #[test]
    fn sustainability_bounds_cell_count() {
        let max = MulticellIngest::max_supported_cells(link(), Bandwidth::Mhz5, 2, 1000.0);
        assert!(max >= 2, "a 10 GbE port carries several 5 MHz cells");
        let over = MulticellIngest::homogeneous(link(), max + 1, Bandwidth::Mhz5, 2);
        assert!(!over.sustainable(1000.0));
    }

    #[test]
    fn plan_reuses_buffer() {
        let ing = MulticellIngest::homogeneous(link(), 8, Bandwidth::Mhz1_4, 2);
        let mut out = Vec::with_capacity(8);
        let ptr = out.as_ptr();
        let mut rng = StdRng::seed_from_u64(2);
        ing.plan_deliveries_into(&mut rng, &mut out);
        ing.plan_deliveries_into(&mut rng, &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out.as_ptr(), ptr, "no reallocation when warmed");
    }
}
