//! Optical fronthaul: fixed propagation delay, negligible jitter (§2.3).

/// Propagation speed of light in fiber, expressed as delay per km.
pub const FIBER_US_PER_KM: f64 = 5.0;

/// A CPRI-style fronthaul link between remote radios and the cloud.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fronthaul {
    /// Fiber length in km (paper: deployments of up to 20–40 km).
    pub fiber_km: f64,
    /// Fixed optical switching + (de)packetization overhead, µs.
    pub switch_overhead_us: f64,
}

impl Fronthaul {
    /// A co-located deployment (radios at the cloud site).
    pub const fn on_site() -> Self {
        Fronthaul {
            fiber_km: 1.0,
            switch_overhead_us: 10.0,
        }
    }

    /// A 20 km off-site deployment (the near end of the paper's range).
    pub const fn off_site_20km() -> Self {
        Fronthaul {
            fiber_km: 20.0,
            switch_overhead_us: 10.0,
        }
    }

    /// A 40 km off-site deployment (the far end of the paper's range).
    pub const fn off_site_40km() -> Self {
        Fronthaul {
            fiber_km: 40.0,
            switch_overhead_us: 10.0,
        }
    }

    /// One-way fronthaul delay in µs. Deterministic: the paper treats the
    /// fronthaul as fixed-delay with "almost negligible jitter".
    pub fn one_way_us(&self) -> f64 {
        self.fiber_km * FIBER_US_PER_KM + self.switch_overhead_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_range_is_100_to_200us() {
        // §2.3: 20–40 km ⇒ 0.1–0.2 ms one-way propagation.
        let near = Fronthaul::off_site_20km().one_way_us();
        let far = Fronthaul::off_site_40km().one_way_us();
        assert!((100.0..=130.0).contains(&near), "{near}");
        assert!((200.0..=230.0).contains(&far), "{far}");
    }

    #[test]
    fn on_site_is_small() {
        assert!(Fronthaul::on_site().one_way_us() < 20.0);
    }

    #[test]
    fn delay_scales_linearly_with_fiber() {
        let a = Fronthaul {
            fiber_km: 10.0,
            switch_overhead_us: 0.0,
        };
        let b = Fronthaul {
            fiber_km: 30.0,
            switch_overhead_us: 0.0,
        };
        assert!((b.one_way_us() - 3.0 * a.one_way_us()).abs() < 1e-12);
    }
}
