//! Branch-edge coverage probes for the adversarial-input fuzzer.
//!
//! `rtopex-fuzz` cannot lean on compiler instrumentation (no extra
//! toolchain components in this environment), so the parsing hot spots
//! carry explicit probes instead: each interesting decision point calls
//! [`reach`] with an interned site id, and the probe folds the
//! *previous* site into an AFL-style edge counter — `(prev <<< 5) ^
//! site` indexes a fixed byte map, so the map distinguishes *paths
//! between* decision points, not just which points fired.
//!
//! The probes are disarmed by default and cost one relaxed atomic load
//! on the rx path; the fuzzer arms them around each input. Everything
//! here is allocation- and panic-free because probes execute inside
//! functions the taint pass proves allocation- and panic-free —
//! instrumentation must not weaken the property it helps test.
//!
//! The map is process-global. The fuzzer is single-threaded by design
//! (determinism is a feature), so no per-thread maps are needed; the
//! `prev` site is still thread-local to keep stray runtime threads from
//! corrupting each other's edge chains.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Number of edge counters; a power of two so folding is a mask.
pub const MAP_SIZE: usize = 4096;

static ARMED: AtomicBool = AtomicBool::new(false);

// A `const` item is the one stable way to repeat a non-Copy initializer.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU8 = AtomicU8::new(0);
static EDGES: [AtomicU8; MAP_SIZE] = [ZERO; MAP_SIZE];

thread_local! {
    static PREV: Cell<u16> = const { Cell::new(0) };
}

/// Clears the edge map and arms the probes.
pub fn arm() {
    reset();
    // ORDERING: store-load fence — the map zeroing above must be
    // globally visible before any thread's relaxed `reach` load can
    // observe ARMED=true and start writing counters.
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the probes; the map keeps its contents for [`snapshot`].
pub fn disarm() {
    // ORDERING: store-load fence — pairs with `arm`; the harness reads
    // the map right after disarming, so probe writes sequenced before
    // this flip must not sail past it.
    ARMED.store(false, Ordering::SeqCst);
}

/// Zeroes the edge map and the per-thread predecessor site.
pub fn reset() {
    for c in &EDGES {
        c.store(0, Ordering::Relaxed);
    }
    PREV.with(|p| p.set(0));
}

/// Records the edge from the previous probe site to `site`.
///
/// Near-free while disarmed. Sites are small interned constants chosen
/// by hand at each instrumented decision point; collisions under the
/// fold are tolerable (AFL tolerates far worse at the same map size).
pub fn reach(site: u16) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    PREV.with(|p| {
        let idx = (p.get().rotate_left(5) ^ site) as usize;
        if let Some(c) = EDGES.get(idx & (MAP_SIZE - 1)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        p.set(site);
    });
}

/// Copies the edge map out (counter values, AFL-style u8 saturation by
/// wraparound — the fuzzer buckets them before comparing).
pub fn snapshot(out: &mut [u8; MAP_SIZE]) {
    for (o, c) in out.iter_mut().zip(EDGES.iter()) {
        *o = c.load(Ordering::Relaxed);
    }
}

/// Number of distinct edges hit since the last [`reset`].
pub fn edges_hit() -> usize {
    EDGES
        .iter()
        .filter(|c| c.load(Ordering::Relaxed) != 0)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The map is process-global; serialize the tests that arm it.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_probes_record_nothing() {
        let _g = GATE.lock().unwrap();
        disarm();
        reset();
        reach(0x11);
        reach(0x22);
        assert_eq!(edges_hit(), 0);
    }

    #[test]
    fn armed_probes_record_edges_not_just_sites() {
        let _g = GATE.lock().unwrap();
        arm();
        reach(0x11);
        reach(0x22);
        let ab = edges_hit();
        arm(); // re-arm resets
        reach(0x22);
        reach(0x11);
        let ba = edges_hit();
        disarm();
        // Same two sites, both orders: two edges each, but the maps
        // differ because the fold is order-sensitive.
        assert_eq!(ab, 2);
        assert_eq!(ba, 2);
        let mut m1 = [0u8; MAP_SIZE];
        arm();
        reach(0x11);
        reach(0x22);
        snapshot(&mut m1);
        let mut m2 = [0u8; MAP_SIZE];
        arm();
        reach(0x22);
        reach(0x11);
        snapshot(&mut m2);
        disarm();
        assert_ne!(m1, m2);
    }
}
