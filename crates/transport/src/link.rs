//! Testbed transport serialization model — Fig. 7 of the paper.
//!
//! The testbed connects each WARPv3 radio over 1 GbE, aggregated by a
//! 1/10 GbE switch into the GPP's 10 GbE port. A subframe of IQ samples
//! (16-bit I + 16-bit Q per sample) must be serialized over the radio's
//! link, then over the shared aggregation link — once per antenna. The
//! model reproduces Fig. 7's observations: a 620 µs maximum at 5 MHz with
//! 8 antennas, crossing 1 ms at 10 MHz, hence "at most 8 antennas at
//! 10 MHz can be supported on the GPP".

use rand::Rng;
use rtopex_phy::params::Bandwidth;

/// Bytes per IQ sample on the wire (16-bit I + 16-bit Q).
pub const BYTES_PER_SAMPLE: usize = 4;

/// The radio-to-GPP Ethernet transport of the testbed.
#[derive(Clone, Copy, Debug)]
pub struct TestbedLink {
    /// Effective per-radio link goodput, bits/s (1 GbE minus overheads).
    pub radio_bps: f64,
    /// Effective aggregation link goodput into the GPP, bits/s.
    pub aggregate_bps: f64,
    /// Fixed base latency: driver, interrupt, switch forwarding, µs.
    pub base_us: f64,
    /// Jitter ceiling added uniformly at random, µs.
    pub jitter_us: f64,
}

impl TestbedLink {
    /// The paper's testbed: 1 GbE radio links into a 10 GbE GPP port,
    /// with ~5 % protocol overhead on each.
    pub const fn paper_testbed() -> Self {
        TestbedLink {
            radio_bps: 0.95e9,
            aggregate_bps: 9.5e9,
            base_us: 30.0,
            jitter_us: 30.0,
        }
    }

    /// Payload bytes a subframe occupies per antenna.
    pub fn subframe_bytes(bw: Bandwidth) -> usize {
        bw.samples_per_subframe() * BYTES_PER_SAMPLE
    }

    /// Deterministic part of the one-way latency for `n_antennas`, µs.
    ///
    /// The radio links serialize in parallel (one per antenna); the
    /// aggregation link carries all antennas' samples back-to-back.
    pub fn one_way_deterministic_us(&self, bw: Bandwidth, n_antennas: usize) -> f64 {
        let bytes = Self::subframe_bytes(bw) as f64;
        let radio = bytes * 8.0 / self.radio_bps * 1e6;
        let aggregate = bytes * 8.0 * n_antennas as f64 / self.aggregate_bps * 1e6;
        self.base_us + radio + aggregate
    }

    /// Samples the one-way latency including jitter, µs.
    pub fn one_way_us<R: Rng + ?Sized>(
        &self,
        bw: Bandwidth,
        n_antennas: usize,
        rng: &mut R,
    ) -> f64 {
        self.one_way_deterministic_us(bw, n_antennas) + rng.gen_range(0.0..=self.jitter_us)
    }

    /// Worst-case one-way latency (deterministic + full jitter), µs.
    pub fn one_way_max_us(&self, bw: Bandwidth, n_antennas: usize) -> f64 {
        self.one_way_deterministic_us(bw, n_antennas) + self.jitter_us
    }

    /// The largest antenna count whose worst-case one-way latency stays
    /// below the 1 ms subframe period (no queuing build-up) — the paper's
    /// supportability criterion.
    pub fn max_supported_antennas(&self, bw: Bandwidth) -> usize {
        (1..=64)
            .take_while(|&n| self.one_way_max_us(bw, n) < 1000.0)
            .last()
            .unwrap_or(0)
    }
}

impl Default for TestbedLink {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn subframe_byte_counts() {
        assert_eq!(TestbedLink::subframe_bytes(Bandwidth::Mhz10), 15_360 * 4);
        assert_eq!(TestbedLink::subframe_bytes(Bandwidth::Mhz5), 7_680 * 4);
    }

    #[test]
    fn fig7_5mhz_max_is_about_620us() {
        // "In the 5 MHz case … the maximum latency is 620µs" (8 antennas).
        let link = TestbedLink::paper_testbed();
        let max = link.one_way_max_us(Bandwidth::Mhz5, 8);
        assert!((520.0..=680.0).contains(&max), "max {max}");
    }

    #[test]
    fn fig7_10mhz_exceeds_1ms() {
        // "it exceeds 1000µs (or 1ms) for 10MHz bandwidth" at high antenna
        // counts.
        let link = TestbedLink::paper_testbed();
        assert!(link.one_way_max_us(Bandwidth::Mhz10, 12) > 1000.0);
    }

    #[test]
    fn paper_8_antenna_limit_at_10mhz() {
        // "at most 8 antennas at 10 MHz can be supported on the GPP".
        let link = TestbedLink::paper_testbed();
        let max_ants = link.max_supported_antennas(Bandwidth::Mhz10);
        assert!((7..=9).contains(&max_ants), "supported antennas {max_ants}");
        assert!(link.one_way_max_us(Bandwidth::Mhz10, 8) < 1000.0);
    }

    #[test]
    fn latency_monotone_in_antennas_and_bandwidth() {
        let link = TestbedLink::paper_testbed();
        let mut prev = 0.0;
        for n in 1..=16 {
            let t = link.one_way_deterministic_us(Bandwidth::Mhz10, n);
            assert!(t > prev);
            prev = t;
        }
        assert!(
            link.one_way_deterministic_us(Bandwidth::Mhz10, 4)
                > link.one_way_deterministic_us(Bandwidth::Mhz5, 4)
        );
    }

    #[test]
    fn jitter_bounded() {
        let link = TestbedLink::paper_testbed();
        let det = link.one_way_deterministic_us(Bandwidth::Mhz10, 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let t = link.one_way_us(Bandwidth::Mhz10, 2, &mut rng);
            assert!(t >= det && t <= det + link.jitter_us);
        }
    }

    #[test]
    fn narrowband_supports_many_radios() {
        let link = TestbedLink::paper_testbed();
        assert!(link.max_supported_antennas(Bandwidth::Mhz1_4) >= 16);
    }
}
