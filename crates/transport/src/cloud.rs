//! Cloud-network latency distribution — Fig. 6 of the paper.
//!
//! Measured between a host and a cloud resource through a switch at
//! 1000 packets/s: the one-way latency has a ≈ 0.15 ms mean but a long
//! tail — about 1 in 10⁴ packets above 0.25 ms for both 1 GbE and 10 GbE.
//! The paper's conclusion ("the mean statistic is not good enough to
//! provide latency guarantees") is exactly what this sampler preserves:
//! a lognormal body plus a rare exponential excess.

use rand::Rng;

/// One-way cloud-network latency sampler.
#[derive(Clone, Copy, Debug)]
pub struct CloudLatency {
    /// Median of the lognormal body, µs.
    pub median_us: f64,
    /// Lognormal shape parameter.
    pub sigma: f64,
    /// Probability of a tail event.
    pub tail_prob: f64,
    /// Mean of the tail's exponential excess, µs.
    pub tail_mean_us: f64,
}

impl CloudLatency {
    /// 1 GbE calibration (Fig. 6 left): slightly wider body.
    pub const fn gbe1() -> Self {
        CloudLatency {
            median_us: 150.0,
            sigma: 0.14,
            tail_prob: 2.0e-4,
            tail_mean_us: 80.0,
        }
    }

    /// 10 GbE calibration (Fig. 6 right): tighter body, same tail order.
    pub const fn gbe10() -> Self {
        CloudLatency {
            median_us: 145.0,
            sigma: 0.09,
            tail_prob: 2.0e-4,
            tail_mean_us: 80.0,
        }
    }

    /// Draws one one-way latency in µs.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(1e-15..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let body = self.median_us * (g * self.sigma).exp();
        if self.tail_prob > 0.0 && rng.gen_bool(self.tail_prob) {
            body + 100.0 + -self.tail_mean_us * (1.0 - rng.gen::<f64>()).ln()
        } else {
            body
        }
    }

    /// Mean of `n` samples — a quick empirical-mean helper for reports.
    pub fn empirical_mean<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> f64 {
        (0..n).map(|_| self.sample(rng)).sum::<f64>() / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(c: CloudLatency, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| c.sample(&mut rng)).collect()
    }

    #[test]
    fn mean_is_near_150us_both_speeds() {
        for (name, c) in [
            ("1GbE", CloudLatency::gbe1()),
            ("10GbE", CloudLatency::gbe10()),
        ] {
            let v = draw(c, 200_000, 1);
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            assert!((140.0..=165.0).contains(&mean), "{name}: mean {mean}");
        }
    }

    #[test]
    fn tail_is_about_1e4_above_250us() {
        // "around one in 10⁴ packets … has a latency more than 0.25ms".
        for c in [CloudLatency::gbe1(), CloudLatency::gbe10()] {
            let n = 1_000_000;
            let above = draw(c, n, 2).into_iter().filter(|&x| x > 250.0).count();
            let frac = above as f64 / n as f64;
            assert!((1.0e-5..2.0e-3).contains(&frac), "P(>250µs) = {frac}");
        }
    }

    #[test]
    fn ten_gbe_body_is_tighter() {
        let mut v1 = draw(CloudLatency::gbe1(), 100_000, 3);
        let mut v10 = draw(CloudLatency::gbe10(), 100_000, 3);
        v1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v10.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let iqr = |v: &[f64]| v[v.len() * 3 / 4] - v[v.len() / 4];
        assert!(iqr(&v10) < iqr(&v1), "10GbE IQR should be smaller");
    }

    #[test]
    fn samples_are_positive() {
        assert!(draw(CloudLatency::gbe1(), 50_000, 4)
            .iter()
            .all(|&x| x > 0.0));
    }

    #[test]
    fn empirical_mean_helper() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = CloudLatency::gbe10().empirical_mean(50_000, &mut rng);
        assert!((130.0..=170.0).contains(&m));
    }
}
