//! In-process fronthaul transport: the existing emulation refactored
//! behind the [`crate::iface`] trait pair.
//!
//! Tx and Rx share a bounded ready queue plus a freelist of recycled
//! [`SubframeBuf`]s, so the steady state moves subframes by pointer swap
//! with zero allocation — the same discipline the byte transports use
//! with their rx rings. Payloads pass through the wire's i16
//! quantization ([`SubframeBuf::fill_quantized`]), so a subframe
//! delivered in-process is bit-identical to one delivered over UDP or
//! TCP. Overrun policy matches the network side too: when the consumer
//! falls behind a full queue, the *oldest* queued subframe is dropped —
//! a slow host degrades instead of queueing without bound.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rtopex_phy::Cf32;

use crate::iface::{
    FronthaulRx, FronthaulTx, Recv, RxStats, StreamParams, SubframeBuf, TransportError,
};
use crate::packet::{SeqEvent, SeqTracker};

struct ChanState {
    ready: VecDeque<SubframeBuf>,
    free: Vec<SubframeBuf>,
    closed: bool,
    drops: u64,
}

struct Chan {
    state: Mutex<ChanState>,
    cv: Condvar,
}

/// Builds a connected in-process transport pair with a ready queue of
/// `depth` subframes (the rx overrun horizon).
pub fn inproc_pair(params: StreamParams, depth: usize) -> (InProcTx, InProcRx) {
    assert!(depth >= 1, "queue depth must be at least 1");
    let free = (0..depth)
        .map(|_| SubframeBuf::for_stream(&params))
        .collect();
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            ready: VecDeque::with_capacity(depth),
            free,
            closed: false,
            drops: 0,
        }),
        cv: Condvar::new(),
    });
    let trackers = vec![SeqTracker::new(); params.cells.len()];
    (
        InProcTx {
            params: params.clone(),
            chan: Arc::clone(&chan),
        },
        InProcRx {
            params,
            chan,
            trackers,
            stats: RxStats::default(),
        },
    )
}

/// Aggregator half of [`inproc_pair`].
pub struct InProcTx {
    params: StreamParams,
    chan: Arc<Chan>,
}

impl FronthaulTx for InProcTx {
    fn params(&self) -> &StreamParams {
        &self.params
    }

    fn send(
        &mut self,
        cell: u16,
        seq: u32,
        mcs: u8,
        samples: &[Vec<Cf32>],
    ) -> Result<(), TransportError> {
        // analyze: allow(panic): std mutex poisoning only follows another
        // holder's panic; propagating it is the correct response
        let mut st = self.chan.state.lock().unwrap();
        if st.closed {
            return Err(TransportError::Closed);
        }
        let mut buf = match st.free.pop() {
            Some(b) => b,
            // Freelist dry with a full queue: recycle the oldest queued
            // subframe (drop-oldest backpressure).
            None => {
                st.drops += 1;
                st.ready
                    .pop_front()
                    .ok_or_else(|| TransportError::Protocol("buffer pool exhausted".into()))?
            }
        };
        buf.fill_quantized(cell, seq, mcs, samples);
        st.ready.push_back(buf);
        drop(st);
        self.chan.cv.notify_one();
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TransportError> {
        // analyze: allow(panic): std mutex poisoning only follows another
        // holder's panic; propagating it is the correct response
        let mut st = self.chan.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.chan.cv.notify_all();
        Ok(())
    }
}

impl Drop for InProcTx {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Worker half of [`inproc_pair`].
pub struct InProcRx {
    params: StreamParams,
    chan: Arc<Chan>,
    trackers: Vec<SeqTracker>,
    stats: RxStats,
}

impl FronthaulRx for InProcRx {
    fn params(&self) -> &StreamParams {
        &self.params
    }

    fn recv_into(
        &mut self,
        buf: &mut SubframeBuf,
        timeout: Duration,
    ) -> Result<Recv, TransportError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(mut next) = st.ready.pop_front() {
                std::mem::swap(buf, &mut next);
                st.free.push(next);
                self.stats.drops = st.drops;
                drop(st);
                self.stats.delivered += 1;
                match self.params.local_cell(buf.cell) {
                    Some(i) => match self.trackers[i].observe(buf.seq) {
                        SeqEvent::Gap(n) => self.stats.gaps += n as u64,
                        SeqEvent::Stale(_) => self.stats.stale += 1,
                        SeqEvent::First | SeqEvent::InOrder => {}
                    },
                    None => self.stats.bad_frames += 1,
                }
                return Ok(Recv::Subframe);
            }
            if st.closed {
                self.stats.drops = st.drops;
                return Ok(Recv::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.drops = st.drops;
                return Ok(Recv::TimedOut);
            }
            let (guard, _) = self
                .chan
                .cv
                .wait_timeout(st, deadline - now)
                .map_err(|_| TransportError::Io("poisoned channel lock".into()))?;
            st = guard;
        }
    }

    fn stats(&self) -> RxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StreamParams {
        StreamParams {
            samples_per_subframe: 64,
            antennas: 1,
            cells: vec![0, 1],
            period_us: 1000,
            budget_us: 1000,
            mcs_pool: vec![27],
            subframes: 0,
        }
    }

    fn subframe(v: f32) -> Vec<Vec<Cf32>> {
        vec![vec![Cf32::new(v, -v); 64]]
    }

    #[test]
    fn delivers_in_fifo_order_and_recycles() {
        let (mut tx, mut rx) = inproc_pair(params(), 4);
        for seq in 0..3u32 {
            tx.send(0, seq, 27, &subframe(seq as f32 / 10.0)).unwrap();
        }
        let mut buf = SubframeBuf::for_stream(rx.params());
        for seq in 0..3u32 {
            assert_eq!(
                rx.recv_into(&mut buf, Duration::from_millis(100)).unwrap(),
                Recv::Subframe
            );
            assert_eq!(buf.seq, seq);
        }
        assert_eq!(rx.stats().delivered, 3);
        assert_eq!(rx.stats().drops, 0);
    }

    #[test]
    fn overrun_drops_oldest() {
        let (mut tx, mut rx) = inproc_pair(params(), 2);
        let mut buf = SubframeBuf::for_stream(rx.params());
        // Lock the sequence tracker onto the stream first.
        tx.send(0, 0, 27, &subframe(0.1)).unwrap();
        rx.recv_into(&mut buf, Duration::from_millis(100)).unwrap();
        assert_eq!(buf.seq, 0);
        // Now flood a depth-2 queue: the three oldest are recycled.
        for seq in 1..6u32 {
            tx.send(0, seq, 27, &subframe(0.1)).unwrap();
        }
        rx.recv_into(&mut buf, Duration::from_millis(100)).unwrap();
        assert_eq!(buf.seq, 4);
        rx.recv_into(&mut buf, Duration::from_millis(100)).unwrap();
        assert_eq!(buf.seq, 5);
        assert_eq!(rx.stats().drops, 3);
        assert_eq!(rx.stats().gaps, 3, "dropped subframes surface as gaps");
    }

    #[test]
    fn close_is_observed_after_drain() {
        let (mut tx, mut rx) = inproc_pair(params(), 2);
        tx.send(1, 0, 27, &subframe(0.2)).unwrap();
        tx.finish().unwrap();
        assert!(tx.send(1, 1, 27, &subframe(0.2)).is_err());
        let mut buf = SubframeBuf::for_stream(rx.params());
        assert_eq!(
            rx.recv_into(&mut buf, Duration::from_millis(100)).unwrap(),
            Recv::Subframe
        );
        assert_eq!(
            rx.recv_into(&mut buf, Duration::from_millis(100)).unwrap(),
            Recv::Closed
        );
    }

    #[test]
    fn empty_queue_times_out() {
        let (_tx, mut rx) = inproc_pair(params(), 2);
        let mut buf = SubframeBuf::for_stream(rx.params());
        assert_eq!(
            rx.recv_into(&mut buf, Duration::from_millis(10)).unwrap(),
            Recv::TimedOut
        );
    }
}
