//! IQ sample packetization — the reproduction's stand-in for the CWARP
//! transport library used by the paper's testbed.
//!
//! A subframe of complex baseband samples is quantized to 16-bit I/Q,
//! split into MTU-sized frames, and prefixed with a small header carrying
//! the basestation id, antenna, subframe counter and fragment sequence so
//! the receive side can reassemble and detect loss. Uses the `bytes` crate
//! for zero-copy-friendly buffer handling.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtopex_phy::Cf32;

/// Maximum payload bytes per packet (Ethernet MTU minus IP/UDP headroom).
pub const MAX_PAYLOAD: usize = 1440;

/// Fixed-point scale: full-scale i16 corresponds to this float amplitude.
/// Baseband is normalized near unit power, so 8× headroom avoids clipping.
const IQ_SCALE: f32 = 4096.0;

/// Wire header of an IQ fragment (12 bytes, big-endian).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketHeader {
    /// Basestation identifier.
    pub bs_id: u16,
    /// Antenna index.
    pub antenna: u8,
    /// Fragment index within the subframe.
    pub fragment: u8,
    /// Total fragments in the subframe.
    pub total_fragments: u16,
    /// Subframe counter (wraps).
    pub subframe: u32,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// Serialized header size in bytes.
pub const HEADER_LEN: usize = 12;

impl PacketHeader {
    /// Writes the header into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.bs_id);
        buf.put_u8(self.antenna);
        buf.put_u8(self.fragment);
        buf.put_u16(self.total_fragments);
        buf.put_u32(self.subframe);
        buf.put_u16(self.payload_len);
    }

    /// Parses a header from the front of `buf`; returns `None` if `buf` is
    /// shorter than [`HEADER_LEN`].
    pub fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        Some(PacketHeader {
            bs_id: buf.get_u16(),
            antenna: buf.get_u8(),
            fragment: buf.get_u8(),
            total_fragments: buf.get_u16(),
            subframe: buf.get_u32(),
            payload_len: buf.get_u16(),
        })
    }
}

/// Packetizes/reassembles IQ subframes.
#[derive(Clone, Copy, Debug, Default)]
pub struct IqPacketizer;

impl IqPacketizer {
    /// Splits one antenna's subframe samples into wire packets.
    pub fn packetize(
        &self,
        bs_id: u16,
        antenna: u8,
        subframe: u32,
        samples: &[Cf32],
    ) -> Vec<Bytes> {
        let total_bytes = samples.len() * 4;
        let samples_per_pkt = MAX_PAYLOAD / 4;
        let total_fragments = total_bytes.div_ceil(samples_per_pkt * 4).max(1) as u16;
        samples
            .chunks(samples_per_pkt)
            .enumerate()
            .map(|(i, chunk)| {
                let mut buf = BytesMut::with_capacity(HEADER_LEN + chunk.len() * 4);
                PacketHeader {
                    bs_id,
                    antenna,
                    fragment: i as u8,
                    total_fragments,
                    subframe,
                    payload_len: (chunk.len() * 4) as u16,
                }
                .encode(&mut buf);
                for s in chunk {
                    buf.put_i16(quantize(s.re));
                    buf.put_i16(quantize(s.im));
                }
                buf.freeze()
            })
            .collect()
    }

    /// Reassembles packets (any order) into the subframe's samples.
    ///
    /// Returns `None` on a missing/duplicate fragment, truncated packet, or
    /// inconsistent metadata — the caller drops the subframe, as the
    /// testbed transport does.
    pub fn reassemble(&self, packets: &[Bytes]) -> Option<Vec<Cf32>> {
        if packets.is_empty() {
            return None;
        }
        let mut parsed: Vec<(PacketHeader, Bytes)> = Vec::with_capacity(packets.len());
        for p in packets {
            let mut b = p.clone();
            let h = PacketHeader::decode(&mut b)?;
            if b.len() != h.payload_len as usize || h.payload_len % 4 != 0 {
                return None;
            }
            parsed.push((h, b));
        }
        let first = parsed[0].0;
        if parsed.len() != first.total_fragments as usize {
            return None;
        }
        let mut seen = vec![false; parsed.len()];
        for (h, _) in &parsed {
            if h.bs_id != first.bs_id
                || h.antenna != first.antenna
                || h.subframe != first.subframe
                || h.total_fragments != first.total_fragments
            {
                return None;
            }
            let idx = h.fragment as usize;
            if idx >= seen.len() || seen[idx] {
                return None;
            }
            seen[idx] = true;
        }
        parsed.sort_by_key(|(h, _)| h.fragment);
        let mut out = Vec::new();
        for (_, mut b) in parsed {
            while b.remaining() >= 4 {
                let re = b.get_i16();
                let im = b.get_i16();
                out.push(Cf32::new(dequantize(re), dequantize(im)));
            }
        }
        Some(out)
    }
}

fn quantize(v: f32) -> i16 {
    (v * IQ_SCALE)
        .round()
        .clamp(i16::MIN as f32, i16::MAX as f32) as i16
}

fn dequantize(v: i16) -> f32 {
    v as f32 / IQ_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| {
                Cf32::new(
                    ((i % 101) as f32 - 50.0) / 60.0,
                    ((i % 37) as f32 - 18.0) / 25.0,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_full_subframe() {
        let pk = IqPacketizer;
        let s = samples(15_360); // one 10 MHz subframe
        let pkts = pk.packetize(3, 1, 42, &s);
        assert_eq!(pkts.len(), 15_360usize.div_ceil(MAX_PAYLOAD / 4));
        let back = pk.reassemble(&pkts).unwrap();
        assert_eq!(back.len(), s.len());
        for (a, b) in s.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1.0 / IQ_SCALE);
            assert!((a.im - b.im).abs() < 1.0 / IQ_SCALE);
        }
    }

    #[test]
    fn out_of_order_reassembly() {
        let pk = IqPacketizer;
        let s = samples(2000);
        let mut pkts = pk.packetize(1, 0, 7, &s);
        pkts.reverse();
        let back = pk.reassemble(&pkts).unwrap();
        assert_eq!(back.len(), s.len());
    }

    #[test]
    fn missing_fragment_detected() {
        let pk = IqPacketizer;
        let s = samples(2000);
        let mut pkts = pk.packetize(1, 0, 7, &s);
        pkts.remove(1);
        assert!(pk.reassemble(&pkts).is_none());
    }

    #[test]
    fn duplicate_fragment_detected() {
        let pk = IqPacketizer;
        let s = samples(1000);
        let mut pkts = pk.packetize(1, 0, 7, &s);
        let dup = pkts[0].clone();
        pkts[1] = dup;
        assert!(pk.reassemble(&pkts).is_none());
    }

    #[test]
    fn mixed_subframes_rejected() {
        let pk = IqPacketizer;
        let a = pk.packetize(1, 0, 7, &samples(720));
        let b = pk.packetize(1, 0, 8, &samples(720));
        let mixed = vec![a[0].clone(), b[1].clone()];
        assert!(pk.reassemble(&mixed).is_none());
    }

    #[test]
    fn truncated_packet_rejected() {
        let pk = IqPacketizer;
        let pkts = pk.packetize(1, 0, 7, &samples(720));
        let cut = pkts[0].slice(0..pkts[0].len() - 2);
        assert!(pk.reassemble(&[cut]).is_none());
    }

    #[test]
    fn header_roundtrip() {
        let h = PacketHeader {
            bs_id: 0xBEEF,
            antenna: 3,
            fragment: 9,
            total_fragments: 43,
            subframe: 0xDEADBEEF,
            payload_len: 1440,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let mut b = buf.freeze();
        assert_eq!(PacketHeader::decode(&mut b), Some(h));
    }

    #[test]
    fn clipping_is_bounded() {
        let pk = IqPacketizer;
        let hot = vec![Cf32::new(100.0, -100.0); 10]; // way out of range
        let pkts = pk.packetize(0, 0, 0, &hot);
        let back = pk.reassemble(&pkts).unwrap();
        for s in back {
            assert!(s.re.abs() <= (i16::MAX as f32) / IQ_SCALE + 1e-3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(n in 1usize..4000, bs in 0u16..100, ant in 0u8..8) {
            let pk = IqPacketizer;
            let s = samples(n);
            let pkts = pk.packetize(bs, ant, 5, &s);
            let back = pk.reassemble(&pkts).unwrap();
            prop_assert_eq!(back.len(), n);
        }
    }
}
