//! IQ sample packetization — the reproduction's stand-in for the CWARP
//! transport library used by the paper's testbed.
//!
//! A subframe of complex baseband samples is quantized to 16-bit I/Q,
//! split into MTU-sized frames, and prefixed with a small header carrying
//! the basestation id, antenna, subframe counter and fragment sequence so
//! the receive side can reassemble and detect loss. Uses the `bytes` crate
//! for zero-copy-friendly buffer handling.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtopex_phy::Cf32;

/// Maximum payload bytes per packet (Ethernet MTU minus IP/UDP headroom).
pub const MAX_PAYLOAD: usize = 1440;

/// Fixed-point scale: full-scale i16 corresponds to this float amplitude.
/// Baseband is normalized near unit power, so 8× headroom avoids clipping.
const IQ_SCALE: f32 = 4096.0;

/// Wire header of an IQ fragment (12 bytes, big-endian).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketHeader {
    /// Basestation identifier.
    pub bs_id: u16,
    /// Antenna index.
    pub antenna: u8,
    /// Fragment index within the subframe.
    pub fragment: u8,
    /// Total fragments in the subframe.
    pub total_fragments: u16,
    /// Subframe counter (wraps).
    pub subframe: u32,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// Serialized header size in bytes.
pub const HEADER_LEN: usize = 12;

impl PacketHeader {
    /// Writes the header into `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16(self.bs_id);
        buf.put_u8(self.antenna);
        buf.put_u8(self.fragment);
        buf.put_u16(self.total_fragments);
        buf.put_u32(self.subframe);
        buf.put_u16(self.payload_len);
    }

    /// Parses a header from the front of `buf`; returns `None` if `buf` is
    /// shorter than [`HEADER_LEN`].
    pub fn decode(buf: &mut Bytes) -> Option<Self> {
        if buf.len() < HEADER_LEN {
            return None;
        }
        Some(PacketHeader {
            bs_id: buf.get_u16(),
            antenna: buf.get_u8(),
            fragment: buf.get_u8(),
            total_fragments: buf.get_u16(),
            subframe: buf.get_u32(),
            payload_len: buf.get_u16(),
        })
    }

    /// Writes the header into the front of a plain byte slice (the
    /// allocation-free path the network transports use). Panics if `buf`
    /// is shorter than [`HEADER_LEN`].
    pub fn write_to(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.bs_id.to_be_bytes());
        buf[2] = self.antenna;
        buf[3] = self.fragment;
        buf[4..6].copy_from_slice(&self.total_fragments.to_be_bytes());
        buf[6..10].copy_from_slice(&self.subframe.to_be_bytes());
        buf[10..12].copy_from_slice(&self.payload_len.to_be_bytes());
    }

    /// Parses a header from the front of a plain byte slice; `None` if
    /// `buf` is shorter than [`HEADER_LEN`].
    pub fn read_from(buf: &[u8]) -> Option<Self> {
        let &[b0, b1, antenna, fragment, t0, t1, s0, s1, s2, s3, p0, p1] = buf.get(..HEADER_LEN)?
        else {
            return None;
        };
        crate::probe::reach(0x30);
        Some(PacketHeader {
            bs_id: u16::from_be_bytes([b0, b1]),
            antenna,
            fragment,
            total_fragments: u16::from_be_bytes([t0, t1]),
            subframe: u32::from_be_bytes([s0, s1, s2, s3]),
            payload_len: u16::from_be_bytes([p0, p1]),
        })
    }
}

/// Wrap-aware signed distance from sequence `expected` to `got`, in
/// `[-2³¹, 2³¹)`. A counter that wrapped at `u32::MAX` yields the small
/// true delta, not a ±4-billion jump.
pub fn seq_delta(expected: u32, got: u32) -> i64 {
    got.wrapping_sub(expected) as i32 as i64
}

/// What one observed sequence number meant to a [`SeqTracker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqEvent {
    /// First observation; the tracker locked onto the stream here.
    First,
    /// Exactly the expected next sequence number.
    InOrder,
    /// The stream jumped forward; `n` sequence numbers were never seen.
    Gap(u32),
    /// Behind the cursor by `n`: a late duplicate or reordered straggler.
    Stale(u32),
}

/// Per-cell subframe sequence tracker with wraparound-safe gap
/// detection. The receive sessions run one per cell to count losses,
/// duplicates and reordering without unbounded history.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqTracker {
    next: u32,
    started: bool,
    /// Total sequence numbers skipped over (lost subframes).
    pub gaps: u64,
    /// Observations behind the cursor (duplicates / stragglers).
    pub stale: u64,
}

impl SeqTracker {
    /// A tracker that locks onto the first sequence number it sees.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies `seq` against the cursor and advances it past any
    /// forward jump (a gap is counted once, not re-reported per packet).
    pub fn observe(&mut self, seq: u32) -> SeqEvent {
        if !self.started {
            self.started = true;
            self.next = seq.wrapping_add(1);
            crate::probe::reach(0x31);
            return SeqEvent::First;
        }
        let d = seq_delta(self.next, seq);
        match d {
            0 => {
                self.next = self.next.wrapping_add(1);
                crate::probe::reach(0x32);
                SeqEvent::InOrder
            }
            d if d > 0 => {
                self.gaps += d as u64;
                self.next = seq.wrapping_add(1);
                crate::probe::reach(0x33);
                SeqEvent::Gap(d as u32)
            }
            d => {
                self.stale += 1;
                crate::probe::reach(0x34);
                SeqEvent::Stale((-d) as u32)
            }
        }
    }

    /// Locks the cursor at `seq` without consuming it: the next
    /// [`Self::observe`] of `seq` reads as in-order. Receivers prime on
    /// the first *fragment* of a stream so a first subframe that never
    /// completes still registers as a gap.
    pub fn prime(&mut self, seq: u32) {
        if !self.started {
            self.started = true;
            self.next = seq;
            crate::probe::reach(0x35);
        }
    }

    /// True when `seq` is behind the cursor — a fragment of a subframe
    /// that was already delivered or given up on. Receivers use this to
    /// reject stragglers before touching assembly state.
    pub fn is_stale(&self, seq: u32) -> bool {
        self.started && seq_delta(self.next, seq) < 0
    }

    /// Forgets the cursor (sender resync after a reconnect): the next
    /// observation is treated as [`SeqEvent::First`] again.
    pub fn resync(&mut self) {
        self.started = false;
    }
}

/// Packetizes/reassembles IQ subframes.
#[derive(Clone, Copy, Debug, Default)]
pub struct IqPacketizer;

impl IqPacketizer {
    /// Splits one antenna's subframe samples into wire packets.
    pub fn packetize(
        &self,
        bs_id: u16,
        antenna: u8,
        subframe: u32,
        samples: &[Cf32],
    ) -> Vec<Bytes> {
        let total_bytes = samples.len() * 4;
        let samples_per_pkt = MAX_PAYLOAD / 4;
        let total_fragments = total_bytes.div_ceil(samples_per_pkt * 4).max(1) as u16;
        samples
            .chunks(samples_per_pkt)
            .enumerate()
            .map(|(i, chunk)| {
                let mut buf = BytesMut::with_capacity(HEADER_LEN + chunk.len() * 4);
                PacketHeader {
                    bs_id,
                    antenna,
                    fragment: i as u8,
                    total_fragments,
                    subframe,
                    payload_len: (chunk.len() * 4) as u16,
                }
                .encode(&mut buf);
                for s in chunk {
                    buf.put_i16(quantize(s.re));
                    buf.put_i16(quantize(s.im));
                }
                buf.freeze()
            })
            .collect()
    }

    /// Reassembles packets (any order) into the subframe's samples.
    ///
    /// Returns `None` on a missing/duplicate fragment, truncated packet, or
    /// inconsistent metadata — the caller drops the subframe, as the
    /// testbed transport does.
    pub fn reassemble(&self, packets: &[Bytes]) -> Option<Vec<Cf32>> {
        if packets.is_empty() {
            return None;
        }
        let mut parsed: Vec<(PacketHeader, Bytes)> = Vec::with_capacity(packets.len());
        for p in packets {
            let mut b = p.clone();
            let h = PacketHeader::decode(&mut b)?;
            if b.len() != h.payload_len as usize || h.payload_len % 4 != 0 {
                return None;
            }
            parsed.push((h, b));
        }
        let first = parsed.first()?.0;
        if parsed.len() != first.total_fragments as usize {
            return None;
        }
        let mut seen = vec![false; parsed.len()];
        for (h, _) in &parsed {
            if h.bs_id != first.bs_id
                || h.antenna != first.antenna
                || h.subframe != first.subframe
                || h.total_fragments != first.total_fragments
            {
                return None;
            }
            let slot = seen.get_mut(h.fragment as usize)?;
            if *slot {
                return None;
            }
            *slot = true;
        }
        parsed.sort_by_key(|(h, _)| h.fragment);
        let mut out = Vec::new();
        for (_, mut b) in parsed {
            // analyze: allow(taint-loop): consumes 4 payload bytes per
            // iteration, bounded by the packet's own length
            while b.remaining() >= 4 {
                let re = b.get_i16();
                let im = b.get_i16();
                out.push(Cf32::new(dequantize(re), dequantize(im)));
            }
        }
        Some(out)
    }
}

/// Quantizes one baseband component to the wire's 16-bit fixed point.
pub fn quantize(v: f32) -> i16 {
    (v * IQ_SCALE)
        .round()
        .clamp(i16::MIN as f32, i16::MAX as f32) as i16
}

/// Inverse of [`quantize`].
pub fn dequantize(v: i16) -> f32 {
    v as f32 / IQ_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn samples(n: usize) -> Vec<Cf32> {
        (0..n)
            .map(|i| {
                Cf32::new(
                    ((i % 101) as f32 - 50.0) / 60.0,
                    ((i % 37) as f32 - 18.0) / 25.0,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_full_subframe() {
        let pk = IqPacketizer;
        let s = samples(15_360); // one 10 MHz subframe
        let pkts = pk.packetize(3, 1, 42, &s);
        assert_eq!(pkts.len(), 15_360usize.div_ceil(MAX_PAYLOAD / 4));
        let back = pk.reassemble(&pkts).unwrap();
        assert_eq!(back.len(), s.len());
        for (a, b) in s.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1.0 / IQ_SCALE);
            assert!((a.im - b.im).abs() < 1.0 / IQ_SCALE);
        }
    }

    #[test]
    fn out_of_order_reassembly() {
        let pk = IqPacketizer;
        let s = samples(2000);
        let mut pkts = pk.packetize(1, 0, 7, &s);
        pkts.reverse();
        let back = pk.reassemble(&pkts).unwrap();
        assert_eq!(back.len(), s.len());
    }

    #[test]
    fn missing_fragment_detected() {
        let pk = IqPacketizer;
        let s = samples(2000);
        let mut pkts = pk.packetize(1, 0, 7, &s);
        pkts.remove(1);
        assert!(pk.reassemble(&pkts).is_none());
    }

    #[test]
    fn duplicate_fragment_detected() {
        let pk = IqPacketizer;
        let s = samples(1000);
        let mut pkts = pk.packetize(1, 0, 7, &s);
        let dup = pkts[0].clone();
        pkts[1] = dup;
        assert!(pk.reassemble(&pkts).is_none());
    }

    #[test]
    fn mixed_subframes_rejected() {
        let pk = IqPacketizer;
        let a = pk.packetize(1, 0, 7, &samples(720));
        let b = pk.packetize(1, 0, 8, &samples(720));
        let mixed = vec![a[0].clone(), b[1].clone()];
        assert!(pk.reassemble(&mixed).is_none());
    }

    #[test]
    fn truncated_packet_rejected() {
        let pk = IqPacketizer;
        let pkts = pk.packetize(1, 0, 7, &samples(720));
        let cut = pkts[0].slice(0..pkts[0].len() - 2);
        assert!(pk.reassemble(&[cut]).is_none());
    }

    #[test]
    fn header_roundtrip() {
        let h = PacketHeader {
            bs_id: 0xBEEF,
            antenna: 3,
            fragment: 9,
            total_fragments: 43,
            subframe: 0xDEADBEEF,
            payload_len: 1440,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let mut b = buf.freeze();
        assert_eq!(PacketHeader::decode(&mut b), Some(h));
    }

    #[test]
    fn clipping_is_bounded() {
        let pk = IqPacketizer;
        let hot = vec![Cf32::new(100.0, -100.0); 10]; // way out of range
        let pkts = pk.packetize(0, 0, 0, &hot);
        let back = pk.reassemble(&pkts).unwrap();
        for s in back {
            assert!(s.re.abs() <= (i16::MAX as f32) / IQ_SCALE + 1e-3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(n in 1usize..4000, bs in 0u16..100, ant in 0u8..8) {
            let pk = IqPacketizer;
            let s = samples(n);
            let pkts = pk.packetize(bs, ant, 5, &s);
            let back = pk.reassemble(&pkts).unwrap();
            prop_assert_eq!(back.len(), n);
        }
    }

    #[test]
    fn slice_header_roundtrip_matches_bytes_codec() {
        let h = PacketHeader {
            bs_id: 0xBEEF,
            antenna: 3,
            fragment: 9,
            total_fragments: 43,
            subframe: 0xDEADBEEF,
            payload_len: 1440,
        };
        let mut slice = [0u8; HEADER_LEN];
        h.write_to(&mut slice);
        let mut bytes_buf = BytesMut::new();
        h.encode(&mut bytes_buf);
        assert_eq!(
            &slice[..],
            bytes_buf.freeze().as_slice(),
            "two codecs, one wire format"
        );
        assert_eq!(PacketHeader::read_from(&slice), Some(h));
        assert_eq!(PacketHeader::read_from(&slice[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn seq_tracker_in_order_stream() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(100), SeqEvent::First);
        for s in 101..110 {
            assert_eq!(t.observe(s), SeqEvent::InOrder);
        }
        assert_eq!((t.gaps, t.stale), (0, 0));
    }

    #[test]
    fn seq_tracker_counts_gaps_once() {
        let mut t = SeqTracker::new();
        t.observe(0);
        assert_eq!(t.observe(4), SeqEvent::Gap(3)); // 1,2,3 lost
        assert_eq!(t.observe(5), SeqEvent::InOrder); // gap not re-reported
        assert_eq!(t.gaps, 3);
    }

    #[test]
    fn seq_tracker_wraparound_is_not_a_billion_packet_gap() {
        // The exact failure mode the satellite task names: a counter
        // wrapping at the u32 boundary must read as consecutive delivery,
        // and a small loss across the boundary as a small gap.
        let mut t = SeqTracker::new();
        t.observe(u32::MAX - 2);
        assert_eq!(t.observe(u32::MAX - 1), SeqEvent::InOrder);
        assert_eq!(t.observe(u32::MAX), SeqEvent::InOrder);
        assert_eq!(t.observe(0), SeqEvent::InOrder);
        assert_eq!(t.observe(1), SeqEvent::InOrder);
        assert_eq!(t.gaps, 0);

        let mut t = SeqTracker::new();
        t.observe(u32::MAX - 1);
        // MAX and 0 lost in flight; 1 arrives next.
        assert_eq!(t.observe(1), SeqEvent::Gap(2));
        assert_eq!(t.gaps, 2);
    }

    #[test]
    fn seq_tracker_duplicates_and_reordering_are_stale() {
        let mut t = SeqTracker::new();
        t.observe(7);
        t.observe(8);
        assert_eq!(t.observe(8), SeqEvent::Stale(1)); // duplicate
        assert_eq!(t.observe(3), SeqEvent::Stale(6)); // old straggler
        assert_eq!(t.observe(9), SeqEvent::InOrder); // cursor undisturbed
        assert_eq!((t.gaps, t.stale), (0, 2));

        // Stale across the wrap boundary: 0 delivered, then MAX again.
        let mut t = SeqTracker::new();
        t.observe(u32::MAX);
        t.observe(0);
        assert_eq!(t.observe(u32::MAX), SeqEvent::Stale(2));
    }

    #[test]
    fn seq_tracker_resync_relocks() {
        let mut t = SeqTracker::new();
        t.observe(1000);
        t.resync();
        // After a sender restart the stream begins at 0 — without the
        // resync this would count as a huge stale/stale event.
        assert_eq!(t.observe(0), SeqEvent::First);
        assert_eq!(t.observe(1), SeqEvent::InOrder);
        assert_eq!(t.gaps, 0);
    }

    #[test]
    fn seq_tracker_prime_then_observe_reads_in_order() {
        // Receivers prime on the first fragment and observe on subframe
        // completion — the primed seq itself must read as in-order, not
        // as a duplicate of the cursor.
        let mut t = SeqTracker::new();
        t.prime(500);
        assert!(!t.is_stale(500), "primed seq must still be acceptable");
        assert!(t.is_stale(499), "pre-prime stragglers are stale");
        assert_eq!(t.observe(500), SeqEvent::InOrder);
        assert_eq!((t.gaps, t.stale), (0, 0));

        // A primed subframe that never completes surfaces as a gap when
        // the next one does.
        let mut t = SeqTracker::new();
        t.prime(500);
        assert_eq!(t.observe(501), SeqEvent::Gap(1));
        assert_eq!(t.gaps, 1);

        // Once locked, prime is a no-op: it must never move the cursor
        // backwards (a stale fragment cannot re-open a delivered seq).
        let mut t = SeqTracker::new();
        t.observe(500);
        t.prime(200);
        assert!(t.is_stale(200));
        assert_eq!(t.observe(501), SeqEvent::InOrder);
    }

    #[test]
    fn seq_tracker_prime_at_wrap_boundary() {
        let mut t = SeqTracker::new();
        t.prime(u32::MAX);
        assert_eq!(t.observe(u32::MAX), SeqEvent::InOrder);
        assert_eq!(t.observe(0), SeqEvent::InOrder);
        assert_eq!((t.gaps, t.stale), (0, 0));
    }

    #[test]
    fn seq_tracker_resync_to_older_sequence() {
        // A restarted sender resumes *behind* the old cursor; after
        // resync that must be a fresh lock, not a million stale events.
        let mut t = SeqTracker::new();
        t.observe(1_000_000);
        assert!(t.is_stale(7));
        t.resync();
        assert!(!t.is_stale(7), "resync must unlock the cursor");
        assert_eq!(t.observe(7), SeqEvent::First);
        assert_eq!(t.observe(8), SeqEvent::InOrder);
        assert_eq!((t.gaps, t.stale), (0, 0));
    }

    #[test]
    fn seq_tracker_duplicate_after_resync_is_a_fresh_first() {
        // The wire carries no epoch: a duplicate of an already-delivered
        // seq arriving after a resync is indistinguishable from a new
        // era starting there, and the tracker must re-lock on it.
        let mut t = SeqTracker::new();
        t.observe(42);
        assert_eq!(t.observe(42), SeqEvent::Stale(1));
        t.resync();
        assert_eq!(t.observe(42), SeqEvent::First);
        assert_eq!(t.observe(42), SeqEvent::Stale(1)); // dup within the new era
        assert_eq!(t.stale, 2);
    }

    #[test]
    fn seq_delta_is_wrap_aware() {
        assert_eq!(seq_delta(5, 5), 0);
        assert_eq!(seq_delta(5, 9), 4);
        assert_eq!(seq_delta(9, 5), -4);
        assert_eq!(seq_delta(u32::MAX, 0), 1);
        assert_eq!(seq_delta(0, u32::MAX), -1);
        assert_eq!(seq_delta(u32::MAX - 10, 10), 21);
    }
}
