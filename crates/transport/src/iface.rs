//! Pluggable fronthaul transport interface.
//!
//! ROADMAP item 1: the fronthaul is no longer only an in-process latency
//! *model* — IQ subframes can now travel over a real byte transport
//! between an aggregator process and worker hosts. This module defines
//! the contract every transport implements:
//!
//! * [`FronthaulTx`] — the aggregator side: streams quantized IQ
//!   subframes for a set of cells to one worker.
//! * [`FronthaulRx`] — the worker side: reassembles subframes and hands
//!   them to the cluster runtime by **swapping** preallocated buffers
//!   ([`SubframeBuf`]), so the steady-state receive path performs no
//!   allocation.
//!
//! Three implementations ship: the in-process emulation
//! ([`crate::inproc`]), and the UDP / length-framed TCP transports in
//! `rtopex-transport-net` (a separate crate so the core runtime keeps
//! zero network-transport dependencies, mirroring the exemplar's
//! transport-layer decoupling). All transports carry the same payload
//! encoding — 16-bit I/Q via [`crate::packet`] — so a delivered subframe
//! is byte-identical across transports for the same input.

use std::fmt;
use std::time::Duration;

use rtopex_phy::Cf32;

use crate::packet::{dequantize, quantize};

/// Wire protocol version carried in the hello frame. Mismatched peers
/// refuse the session instead of mis-parsing each other's frames.
pub const PROTOCOL_VERSION: u16 = 1;

/// Stream-level parameters negotiated at session setup (the hello
/// frame): enough for the worker to build its cluster configuration
/// without any out-of-band coordination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Samples per subframe per antenna — identifies the LTE bandwidth.
    pub samples_per_subframe: u32,
    /// Receive antennas per cell.
    pub antennas: u8,
    /// Global cell ids this stream carries; wire order defines the
    /// worker-local cell index.
    pub cells: Vec<u16>,
    /// Subframe period in µs (possibly dilated).
    pub period_us: u32,
    /// Eq. 3 deadline budget in µs (`2·period − rtt_half`).
    pub budget_us: u32,
    /// MCS values the per-cell traces draw from (the worker warms one
    /// decoder configuration per entry).
    pub mcs_pool: Vec<u8>,
    /// Expected subframes per cell; `0` means open-ended.
    pub subframes: u32,
}

impl StreamParams {
    /// Local index of global cell id `cell`, if this stream carries it.
    pub fn local_cell(&self, cell: u16) -> Option<usize> {
        self.cells.iter().position(|&c| c == cell)
    }
}

/// One reassembled IQ subframe, owned by the consumer and recycled
/// through [`FronthaulRx::recv_into`] swaps.
#[derive(Clone, Debug)]
pub struct SubframeBuf {
    /// Global cell id (wire `bs_id`).
    pub cell: u16,
    /// Subframe sequence counter (wraps at `u32::MAX`).
    pub seq: u32,
    /// MCS the aggregator encoded this subframe with.
    pub mcs: u8,
    /// Per-antenna sample buffers, each `samples_per_subframe` long.
    pub samples: Vec<Vec<Cf32>>,
}

impl SubframeBuf {
    /// A zeroed buffer with the stream's per-subframe geometry.
    pub fn for_stream(p: &StreamParams) -> Self {
        SubframeBuf {
            cell: 0,
            seq: 0,
            mcs: 0,
            samples: vec![
                vec![Cf32::new(0.0, 0.0); p.samples_per_subframe as usize];
                p.antennas as usize
            ],
        }
    }

    /// Copies `samples` in through the wire's i16 quantization, so the
    /// stored payload is bit-identical to what a byte transport would
    /// deliver. Panics if the geometry disagrees (caller bug).
    pub fn fill_quantized(&mut self, cell: u16, seq: u32, mcs: u8, samples: &[Vec<Cf32>]) {
        // analyze: allow(panic): caller-bug guard — the stream geometry is
        // fixed at session setup, so a mismatch here is a programming error
        assert_eq!(samples.len(), self.samples.len(), "antenna count mismatch");
        self.cell = cell;
        self.seq = seq;
        self.mcs = mcs;
        for (dst, src) in self.samples.iter_mut().zip(samples) {
            // analyze: allow(panic): caller-bug guard — geometry fixed at setup
            assert_eq!(src.len(), dst.len(), "subframe length mismatch");
            for (d, s) in dst.iter_mut().zip(src) {
                *d = Cf32::new(dequantize(quantize(s.re)), dequantize(quantize(s.im)));
            }
        }
    }
}

/// Outcome of one [`FronthaulRx::recv_into`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recv {
    /// A subframe was swapped into the caller's buffer.
    Subframe,
    /// Nothing arrived within the timeout; the session is still open.
    TimedOut,
    /// Clean end of stream (bye received, or the peer is gone for good).
    Closed,
}

/// Transport failure. Timeouts are *not* errors — they surface as
/// [`Recv::TimedOut`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Peer speaks a different protocol version.
    Version {
        /// Version the peer announced.
        got: u16,
        /// Version this side implements.
        want: u16,
    },
    /// Session-level violation (bad hello, geometry mismatch, …).
    Protocol(String),
    /// Underlying socket/channel failure.
    Io(String),
    /// The peer closed and the operation cannot complete.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Version { got, want } => {
                write!(f, "protocol version mismatch: peer {got}, ours {want}")
            }
            TransportError::Protocol(m) => write!(f, "protocol violation: {m}"),
            TransportError::Io(m) => write!(f, "transport I/O error: {m}"),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Receive-side session counters, exposed for reports and gating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RxStats {
    /// Subframes handed to the consumer.
    pub delivered: u64,
    /// Sum of sequence-gap lengths (subframes the wire lost).
    pub gaps: u64,
    /// Frames that arrived behind the per-cell sequence cursor
    /// (late duplicates / reordered stragglers).
    pub stale: u64,
    /// Subframes dropped oldest-first because the consumer fell behind
    /// (rx overrun backpressure).
    pub drops: u64,
    /// Frames rejected as unparsable or geometry-violating.
    pub bad_frames: u64,
    /// Sender reconnects absorbed (TCP) / hello replays (UDP).
    pub resyncs: u64,
}

/// Aggregator side of a fronthaul stream.
pub trait FronthaulTx: Send {
    /// Negotiated stream parameters.
    fn params(&self) -> &StreamParams;

    /// Queues one cell-subframe of IQ samples for transmission.
    /// `samples` is `[antenna][samples_per_subframe]` and must match the
    /// stream geometry.
    fn send(
        &mut self,
        cell: u16,
        seq: u32,
        mcs: u8,
        samples: &[Vec<Cf32>],
    ) -> Result<(), TransportError>;

    /// Pushes any coalesced frames onto the wire (one syscall per
    /// cell-batch for the byte transports; no-op in-process).
    fn flush(&mut self) -> Result<(), TransportError>;

    /// Flushes and sends the end-of-stream marker.
    fn finish(&mut self) -> Result<(), TransportError>;
}

/// Worker side of a fronthaul stream.
pub trait FronthaulRx: Send {
    /// Negotiated stream parameters.
    fn params(&self) -> &StreamParams;

    /// Waits up to `timeout` for the next reassembled subframe and swaps
    /// it into `buf` (the previous contents of `buf` are recycled into
    /// the receive pool — pass a [`SubframeBuf::for_stream`] buffer).
    fn recv_into(
        &mut self,
        buf: &mut SubframeBuf,
        timeout: Duration,
    ) -> Result<Recv, TransportError>;

    /// Session counters so far.
    fn stats(&self) -> RxStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> StreamParams {
        StreamParams {
            samples_per_subframe: 128,
            antennas: 2,
            cells: vec![4, 9],
            period_us: 1000,
            budget_us: 1000,
            mcs_pool: vec![5, 27],
            subframes: 10,
        }
    }

    #[test]
    fn buf_matches_stream_geometry() {
        let b = SubframeBuf::for_stream(&params());
        assert_eq!(b.samples.len(), 2);
        assert_eq!(b.samples[0].len(), 128);
    }

    #[test]
    fn local_cell_maps_wire_ids() {
        let p = params();
        assert_eq!(p.local_cell(9), Some(1));
        assert_eq!(p.local_cell(5), None);
    }

    #[test]
    fn fill_quantized_is_wire_exact() {
        let p = params();
        let mut b = SubframeBuf::for_stream(&p);
        let src = vec![vec![Cf32::new(0.1234567, -0.7654321); 128]; 2];
        b.fill_quantized(4, 7, 27, &src);
        let q = crate::packet::dequantize(crate::packet::quantize(0.1234567));
        assert_eq!(b.samples[1][100].re, q);
        assert_ne!(b.samples[1][100].re, 0.1234567);
    }
}
