//! # rtopex-transport — fronthaul and cloud-network transport
//!
//! Models §2.3 of the paper: the path IQ samples travel from the radio
//! front-ends to the compute node, whose one-way latency is the `RTT/2`
//! term of the deadline equation (Eq. 2):
//!
//! ```text
//! T_rxproc + T_fronthaul + T_cloud ≤ 2 ms
//! ```
//!
//! * [`fronthaul`] — fixed-delay optical fronthaul (5 µs/km fiber, optical
//!   switching overhead); negligible jitter, per the paper.
//! * [`cloud`] — the cloud/datacenter network latency distribution of
//!   Fig. 6: ≈ 0.15 ms mean with a long tail (10⁻⁴ of packets above
//!   0.25 ms) for both 1 GbE and 10 GbE.
//! * [`link`] — the testbed serialization model behind Fig. 7: per-radio
//!   1 GbE links aggregated through a switch into the GPP's 10 GbE port,
//!   reproducing "620 µs at 5 MHz, above 1 ms at 10 MHz" and the resulting
//!   8-antenna limit.
//! * [`packet`] — an IQ packetizer (16-bit I/Q over MTU-sized frames, with
//!   sequence/identity headers), standing in for the CWARP transport
//!   library the testbed used.
//! * [`ingest`] — batched multi-cell ingest: N consolidated cells sharing
//!   one aggregation port and one delivery thread, with deterministic
//!   per-cell delivery stagger (the transport side of Fig. 17/18's
//!   consolidation story).
//! * [`iface`] — the pluggable transport trait pair
//!   ([`FronthaulTx`]/[`FronthaulRx`]): the contract the in-process
//!   emulation and the real byte transports (`rtopex-transport-net`)
//!   both implement, so the cluster runtime is transport-agnostic.
//! * [`inproc`] — the in-process implementation of that trait: bounded
//!   swap queue, freelist recycling, drop-oldest overrun policy.
//! * [`probe`] — hand-placed branch-edge coverage probes that
//!   `rtopex-fuzz` arms around each input (disarmed and near-free in
//!   production).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cloud;
pub mod fronthaul;
pub mod iface;
pub mod ingest;
pub mod inproc;
pub mod link;
pub mod packet;
pub mod probe;

pub use cloud::CloudLatency;
pub use fronthaul::Fronthaul;
pub use iface::{
    FronthaulRx, FronthaulTx, Recv, RxStats, StreamParams, SubframeBuf, TransportError,
    PROTOCOL_VERSION,
};
pub use ingest::{CellFeed, MulticellIngest};
pub use inproc::{inproc_pair, InProcRx, InProcTx};
pub use link::TestbedLink;
pub use packet::{IqPacketizer, PacketHeader, SeqEvent, SeqTracker};
