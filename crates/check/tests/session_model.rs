//! Model-checked transport session machine.
//!
//! Drives the *shipped* rx reassembly stack — `wire` frames through
//! [`RxSession::ingest_frame`] into the [`SwapQueue`] ring — under
//! exhaustively enumerated adversarial delivery schedules
//! (drop / duplicate / defer-reorder / resync placement), in lockstep
//! with an independent mirror model of the session semantics. Every
//! schedule must satisfy:
//!
//! * **exactly-once publication** per (cell, subframe) within a sender
//!   era (between resyncs) — duplicates and reordering never
//!   double-publish;
//! * **no stale-frame resurrection**: a subframe published after a
//!   resync contains only payload bytes from frames delivered for that
//!   exact sequence number (per-sample markers prove it — abandoned
//!   pre-resync assembly state never leaks into a later publication);
//! * **mirror equivalence**: publishes (content and order), stale and
//!   gap counters, and resync accounting match the independent model,
//!   including across u32 sequence wraparound and resync-to-older-seq.
//!
//! Two mutation tests seed bugs into the mirror (skipping the stale
//! check; ignoring resync) and require the suite to notice — proof the
//! harness can fail.

use std::sync::Arc;
use std::time::Duration;

use rtopex_check::adversary::{explore, Choices};
use rtopex_phy::Cf32;
use rtopex_transport::iface::{StreamParams, SubframeBuf, PROTOCOL_VERSION};
use rtopex_transport::packet::{dequantize, quantize};
use rtopex_transport_net::ring::{Pop, SwapQueue};
use rtopex_transport_net::session::{RxSession, ASM_SLOTS};
use rtopex_transport_net::wire;

/// One cell, one antenna, 720 samples → exactly 2 full fragments: the
/// smallest geometry where assembly, slot eviction and reordering all
/// have room to go wrong.
const CELL: u16 = 5;
const FRAGS: u8 = 2;
const SAMPLES: u32 = 720;

fn params() -> StreamParams {
    StreamParams {
        samples_per_subframe: SAMPLES,
        antennas: 1,
        cells: vec![CELL],
        period_us: 1000,
        budget_us: 1000,
        mcs_pool: vec![27],
        subframes: 0,
    }
}

/// Per-sample payload marker: a function of (seq, fragment, index) so a
/// published buffer proves exactly which frames filled it.
fn marker(seq: u32, frag: u8, i: usize) -> f32 {
    ((seq % 251) as f32 + frag as f32 * 10.0 + (i % 7) as f32) / 300.0
}

/// The wire bytes of fragment `frag` of subframe `seq`.
fn frame(seq: u32, frag: u8) -> Vec<u8> {
    let samples: Vec<Cf32> = (0..360)
        .map(|i| Cf32::new(marker(seq, frag, i), -marker(seq, frag, i)))
        .collect();
    let mut buf = vec![0u8; wire::MAX_IQ_FRAME];
    let len = wire::write_iq_frame(&mut buf, 27, CELL, 0, frag, FRAGS as u16, seq, &samples);
    buf.truncate(len);
    buf
}

// ---------------------------------------------------------------- mirror

/// Seeded mirror defects for the mutation tests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Bug {
    None,
    /// Mirror forgets to reject stale sequence numbers.
    SkipStaleCheck,
    /// Mirror ignores resync (cursor stays locked, slots stay busy).
    NoResync,
}

fn delta(expected: u32, got: u32) -> i64 {
    got.wrapping_sub(expected) as i32 as i64
}

#[derive(Clone, Copy, Default)]
struct MSlot {
    busy: bool,
    seq: u32,
    seen: u128,
    remaining: u32,
}

#[derive(Clone, Copy, Default)]
struct MTracker {
    started: bool,
    next: u32,
    gaps: u64,
    stale: u64,
}

/// Independent reimplementation of the session semantics for one cell,
/// at the level of frame metadata (the real session consumes bytes).
struct Mirror {
    slots: [MSlot; ASM_SLOTS],
    tracker: MTracker,
    published: Vec<u32>,
    stale: u64,
    resyncs: u64,
    bug: Bug,
}

impl Mirror {
    fn new(bug: Bug) -> Self {
        Mirror {
            slots: [MSlot::default(); ASM_SLOTS],
            tracker: MTracker::default(),
            published: Vec::new(),
            stale: 0,
            resyncs: 0,
            bug,
        }
    }

    fn ingest(&mut self, seq: u32, frag: u8) {
        let t = &mut self.tracker;
        if self.bug != Bug::SkipStaleCheck && t.started && delta(t.next, seq) < 0 {
            self.stale += 1;
            return;
        }
        let mut idx = self.slots.iter().position(|s| s.busy && s.seq == seq);
        if idx.is_none() {
            idx = self.slots.iter().position(|s| !s.busy);
            if idx.is_none() {
                // Evict the oldest in-flight assembly, exactly like the
                // shipped scan (first slot wins ties).
                let mut j = 0;
                let mut oldest = 0u32;
                for (i, s) in self.slots.iter().enumerate() {
                    if i == 0 || delta(oldest, s.seq) < 0 {
                        j = i;
                        oldest = s.seq;
                    }
                }
                idx = Some(j);
            }
            let s = &mut self.slots[idx.unwrap()];
            s.busy = true;
            s.seq = seq;
            s.seen = 0;
            s.remaining = FRAGS as u32;
            if !t.started {
                t.started = true;
                t.next = seq;
            }
        }
        let s = &mut self.slots[idx.unwrap()];
        let bit = 1u128 << frag;
        if s.seen & bit != 0 {
            self.stale += 1;
            return;
        }
        s.seen |= bit;
        s.remaining -= 1;
        if s.remaining == 0 {
            s.busy = false;
            let t = &mut self.tracker;
            if !t.started {
                t.started = true;
                t.next = seq.wrapping_add(1);
            } else {
                match delta(t.next, seq) {
                    0 => t.next = t.next.wrapping_add(1),
                    d if d > 0 => {
                        t.gaps += d as u64;
                        t.next = seq.wrapping_add(1);
                    }
                    _ => t.stale += 1,
                }
            }
            self.published.push(seq);
        }
    }

    fn on_resync(&mut self) {
        self.resyncs += 1;
        if self.bug == Bug::NoResync {
            return;
        }
        for s in &mut self.slots {
            s.busy = false;
        }
        self.tracker.started = false;
    }
}

// ------------------------------------------------------------- the drive

/// Runs one adversarial schedule over `(era0 base, era1 base)`,
/// returning a divergence description instead of panicking so the
/// mutation tests can count failures.
fn run_schedule(ch: &mut Choices, b0: u32, b1: u32, bug: Bug) -> Result<(), String> {
    let p = params();
    let pool = 8 + p.cells.len() * ASM_SLOTS + 1;
    let queue = Arc::new(SwapQueue::new(&p, pool, 8));
    let mut session = RxSession::new(p.clone(), Arc::clone(&queue));
    let mut mirror = Mirror::new(bug);

    let deliver = |session: &mut RxSession, mirror: &mut Mirror, seq: u32, frag: u8| {
        session.ingest_frame(&frame(seq, frag));
        mirror.ingest(seq, frag);
    };

    // Era 0: two subframes, four frames, adversarial fate each.
    let mut deferred: Vec<(u32, u8)> = Vec::new();
    for seq in [b0, b0.wrapping_add(1)] {
        for frag in 0..FRAGS {
            match ch.choose(4) {
                0 => deliver(&mut session, &mut mirror, seq, frag),
                1 => {} // dropped in flight
                2 => {
                    deliver(&mut session, &mut mirror, seq, frag);
                    deliver(&mut session, &mut mirror, seq, frag);
                }
                _ => deferred.push((seq, frag)),
            }
        }
    }
    // Resync placement: stale era-0 stragglers may resume before or
    // after the sender reconnects.
    let resync_first = ch.choose(2) == 1;
    if resync_first {
        session.on_resync();
        mirror.on_resync();
    }
    for (seq, frag) in deferred.drain(..) {
        deliver(&mut session, &mut mirror, seq, frag);
    }
    if !resync_first {
        session.on_resync();
        mirror.on_resync();
    }
    // Era 1: one subframe at the new (older!) base.
    let mut deferred1: Vec<(u32, u8)> = Vec::new();
    for frag in 0..FRAGS {
        match ch.choose(4) {
            0 => deliver(&mut session, &mut mirror, b1, frag),
            1 => {}
            2 => {
                deliver(&mut session, &mut mirror, b1, frag);
                deliver(&mut session, &mut mirror, b1, frag);
            }
            _ => deferred1.push((b1, frag)),
        }
    }
    for (seq, frag) in deferred1.drain(..) {
        deliver(&mut session, &mut mirror, seq, frag);
    }

    // ----- compare the real stack against the mirror -----
    let st = session.stats();
    if st.bad_frames != 0 {
        return Err(format!(
            "bad_frames = {} on well-formed input",
            st.bad_frames
        ));
    }
    if st.drops != 0 {
        return Err(format!("unexpected ring drops: {}", st.drops));
    }
    if st.resyncs != mirror.resyncs {
        return Err(format!(
            "resyncs {} != mirror {}",
            st.resyncs, mirror.resyncs
        ));
    }
    if st.delivered != mirror.published.len() as u64 {
        return Err(format!(
            "delivered {} != mirror published {:?}",
            st.delivered, mirror.published
        ));
    }
    let mirror_stale = mirror.stale + mirror.tracker.stale;
    if st.stale != mirror_stale {
        return Err(format!("stale {} != mirror {}", st.stale, mirror_stale));
    }
    if st.gaps != mirror.tracker.gaps {
        return Err(format!(
            "gaps {} != mirror {}",
            st.gaps, mirror.tracker.gaps
        ));
    }
    // Publication order, exactly-once-per-era, and payload integrity.
    let mut popped = Vec::new();
    let mut buf = SubframeBuf::for_stream(session.params());
    for _ in 0..st.delivered {
        if queue.pop_swap(&mut buf, Duration::from_millis(200)) != Pop::Got {
            return Err("queue held fewer subframes than stats.delivered".into());
        }
        if buf.cell != CELL {
            return Err(format!("published cell {}", buf.cell));
        }
        for (i, s) in buf.samples[0].iter().enumerate() {
            let frag = (i / 360) as u8;
            let want = dequantize(quantize(marker(buf.seq, frag, i % 360)));
            if s.re != want {
                return Err(format!(
                    "seq {} sample {i}: got {}, want {want} — foreign payload bytes \
                     (stale-frame resurrection)",
                    buf.seq, s.re
                ));
            }
        }
        popped.push(buf.seq);
    }
    if popped != mirror.published {
        return Err(format!(
            "published {popped:?} != mirror {:?}",
            mirror.published
        ));
    }
    Ok(())
}

/// Era bases: a mid-range pair with a resync to an *older* sequence,
/// and a pair straddling the u32 wraparound boundary. Sequence spaces
/// are disjoint so payload markers identify eras unambiguously.
const BASES: [(u32, u32); 2] = [(1000, 7), (u32::MAX - 1, 7)];

#[test]
fn adversarial_schedules_preserve_session_invariants() {
    let mut total = 0u64;
    for (b0, b1) in BASES {
        let r = explore(20_000, |ch| {
            run_schedule(ch, b0, b1, Bug::None)
                .unwrap_or_else(|e| panic!("schedule (b0={b0}, b1={b1}) diverged: {e}"));
        });
        assert!(
            r.complete,
            "exploration truncated at {} schedules",
            r.schedules
        );
        // 4 era-0 frames × 4 fates, 2 resync placements, 2 era-1
        // frames × 4 fates: the whole tree, every run.
        assert_eq!(r.schedules, 4u64.pow(4) * 2 * 4u64.pow(2));
        total += r.schedules;
    }
    assert!(total >= 10_000, "suite must explore >= 10k schedules");
}

/// Three subframes competing for two assembly slots: every deliver /
/// defer interleaving must drive the drop-oldest eviction path without
/// diverging from the mirror.
#[test]
fn slot_eviction_under_interleaved_assemblies_matches_mirror() {
    let b0 = 500u32;
    let r = explore(1_000, |ch| {
        let p = params();
        let queue = Arc::new(SwapQueue::new(&p, 8 + ASM_SLOTS + 1, 8));
        let mut session = RxSession::new(p, Arc::clone(&queue));
        let mut mirror = Mirror::new(Bug::None);
        let mut deferred: Vec<(u32, u8)> = Vec::new();
        for seq in [b0, b0 + 1, b0 + 2] {
            for frag in 0..FRAGS {
                if ch.choose(2) == 0 {
                    session.ingest_frame(&frame(seq, frag));
                    mirror.ingest(seq, frag);
                } else {
                    deferred.push((seq, frag));
                }
            }
        }
        for (seq, frag) in deferred {
            session.ingest_frame(&frame(seq, frag));
            mirror.ingest(seq, frag);
        }
        let st = session.stats();
        assert_eq!(st.delivered, mirror.published.len() as u64);
        assert_eq!(st.stale, mirror.stale + mirror.tracker.stale);
        assert_eq!(st.gaps, mirror.tracker.gaps);
        let mut buf = SubframeBuf::for_stream(session.params());
        let mut popped = Vec::new();
        for _ in 0..st.delivered {
            assert_eq!(
                queue.pop_swap(&mut buf, Duration::from_millis(200)),
                Pop::Got
            );
            popped.push(buf.seq);
        }
        assert_eq!(popped, mirror.published);
    });
    assert!(r.complete);
    assert_eq!(r.schedules, 64);
}

/// HELLO negotiation matrix: encode → decode must accept exactly the
/// geometries inside the protocol caps, reject the rest, and the
/// version gate must fire independently of geometry.
#[test]
fn hello_negotiation_accepts_exactly_the_valid_matrix() {
    let r = explore(1_000, |ch| {
        let version = [PROTOCOL_VERSION, 99][ch.choose(2)];
        let antennas = [2u8, 0, 9][ch.choose(3)];
        let samples = [720u32, 40_000][ch.choose(2)];
        let cells: Vec<u16> = match ch.choose(4) {
            0 => vec![5],
            1 => vec![],
            2 => vec![5, 5],
            _ => (0..65).collect(),
        };
        let mcs_pool: Vec<u8> = match ch.choose(2) {
            0 => vec![27],
            _ => vec![1; 33],
        };
        let geom_ok = antennas == 2
            && samples == 720
            && cells.len() == 1
            && cells.first() == Some(&5)
            && mcs_pool.len() == 1;
        let p = StreamParams {
            samples_per_subframe: samples,
            antennas,
            cells,
            period_us: 1000,
            budget_us: 1000,
            mcs_pool,
            subframes: 0,
        };
        let mut buf = Vec::new();
        wire::encode_hello(&mut buf, &p, version);
        match wire::decode_hello(&buf) {
            Ok((v, back)) => {
                assert!(geom_ok, "invalid geometry accepted: {p:?}");
                assert_eq!(v, version);
                assert_eq!(back, p);
                assert_eq!(wire::check_version(v).is_ok(), version == PROTOCOL_VERSION);
            }
            Err(_) => assert!(!geom_ok, "valid geometry refused: {p:?}"),
        }
    });
    assert!(r.complete);
    assert_eq!(r.schedules, 2 * 3 * 2 * 4 * 2);
}

/// Drop-oldest ring backpressure: with depth 1 and no consumer, only
/// the newest publication survives and every eviction is accounted.
#[test]
fn ring_backpressure_drops_oldest_and_counts() {
    let p = params();
    let queue = Arc::new(SwapQueue::new(&p, 1 + ASM_SLOTS + 1, 1));
    let mut session = RxSession::new(p, Arc::clone(&queue));
    for seq in 10..13u32 {
        for frag in 0..FRAGS {
            session.ingest_frame(&frame(seq, frag));
        }
    }
    let st = session.stats();
    assert_eq!(st.delivered, 3);
    assert_eq!(st.drops, 2, "two older subframes evicted from depth-1 ring");
    let mut buf = SubframeBuf::for_stream(session.params());
    assert_eq!(
        queue.pop_swap(&mut buf, Duration::from_millis(200)),
        Pop::Got
    );
    assert_eq!(buf.seq, 12, "survivor must be the newest");
    assert_eq!(
        queue.pop_swap(&mut buf, Duration::from_millis(10)),
        Pop::TimedOut
    );
}

// -------------------------------------------------- mutation tests

/// Count schedules where a seeded-buggy mirror diverges from the real
/// session; the suite is vacuous if that number is zero.
fn divergences(bug: Bug) -> u64 {
    let mut diverged = 0;
    let (b0, b1) = BASES[0];
    let r = explore(20_000, |ch| {
        if run_schedule(ch, b0, b1, bug).is_err() {
            diverged += 1;
        }
    });
    assert!(r.complete);
    diverged
}

#[test]
fn mutation_skipping_stale_check_is_caught() {
    assert!(
        divergences(Bug::SkipStaleCheck) > 0,
        "a mirror that accepts stale sequences must diverge somewhere"
    );
}

#[test]
fn mutation_ignoring_resync_is_caught() {
    assert!(
        divergences(Bug::NoResync) > 0,
        "a mirror that ignores resync must diverge somewhere"
    );
}
