//! Model checks for the shipped Chase–Lev deque (`crates/core/src/steal.rs`,
//! compiled into `rtopex-check` against the shim atomics).
//!
//! Every test here explores *all* interleavings (up to the preemption
//! bound) times all weak-memory reads-from choices, so a pass is a proof
//! over that bounded space — not a lucky schedule. The `mutation_*`
//! tests then weaken the deque's Release publication inside the model
//! and demand the same suites FAIL, proving the checker actually
//! exercises the orderings it claims to.

use rtopex_check::steal::{steal_pair, Steal};
use rtopex_check::sync::Data;
use rtopex_check::{thread, Builder};
use std::sync::Arc;

/// The hard case PR 3's stress test could barely reach: owner `pop` and a
/// thief `steal` racing for the **last element**. Exactly one side may
/// win, in every interleaving.
#[test]
fn pop_vs_steal_last_element_exactly_once() {
    let report = Builder::new().check(|| {
        let (mut w, s) = steal_pair(2);
        w.push(42).unwrap();
        let t = thread::spawn(move || {
            // Bounded retry: a lost CAS means the owner won; the next
            // attempt then observes Empty.
            for _ in 0..3 {
                match s.steal() {
                    Steal::Taken(v) => return Some(v),
                    Steal::Retry => continue,
                    Steal::Empty => return None,
                }
            }
            None
        });
        let mine = w.pop();
        let theirs = t.join().unwrap();
        let takes = usize::from(mine.is_some()) + usize::from(theirs.is_some());
        assert_eq!(
            takes, 1,
            "last ticket taken {takes} times (lost or duplicated)"
        );
        let v = mine.or(theirs).unwrap();
        assert_eq!(v, 42, "winner read a torn/stale slot value");
        assert_eq!(w.pop(), None, "deque must end empty");
    });
    assert!(report.complete, "exploration must exhaust the bounded tree");
    assert!(
        report.executions >= 50,
        "suspiciously few interleavings: {}",
        report.executions
    );
}

/// Ticket handoff publishes the *payload*: a thief that takes a ticket
/// must see every write the owner made before pushing it. The payload is
/// a race-detected [`Data`] cell, so a missing happens-before edge fails
/// the execution even if the value happens to look right.
#[test]
fn steal_handoff_publishes_payload() {
    let report = Builder::new().check(steal_handoff_body);
    assert!(report.complete);
    assert!(report.executions >= 50);
}

/// The seeded-bug satellite: flip the deque's `bottom` Release store to
/// Relaxed *inside the model* and the handoff suite above must fail —
/// the thief can observe the new `bottom` without the slot write or the
/// payload write, i.e. a stale ticket or a data race. A checker that
/// stays green here would be vacuous.
#[test]
fn mutation_weakened_bottom_release_is_caught() {
    let failure = Builder::new()
        .weaken_release_stores(true)
        .try_check(steal_handoff_body)
        .expect_err("Release→Relaxed downgrade of the bottom store must be detected");
    assert!(
        failure.message.contains("data race")
            || failure.message.contains("stale")
            || failure.message.contains("assertion")
            || failure.message.contains("torn"),
        "unexpected failure kind: {failure}"
    );
    assert!(!failure.trace.is_empty(), "failure must carry a trace");
}

fn steal_handoff_body() {
    let payload = Arc::new(Data::new(0u64));
    let (mut w, s) = steal_pair(2);
    let p2 = Arc::clone(&payload);
    let t = thread::spawn(move || {
        for _ in 0..6 {
            match s.steal() {
                Steal::Taken(v) => {
                    assert_eq!(v, 1, "stole a stale/torn ticket");
                    // Must be ordered after the owner's payload write.
                    assert_eq!(p2.get(), 7, "ticket visible before its payload");
                    return true;
                }
                _ => thread::yield_now(),
            }
        }
        false
    });
    payload.set(7);
    w.push(1).unwrap();
    let mine = w.pop();
    if let Some(v) = mine {
        assert_eq!(v, 1);
        assert_eq!(payload.get(), 7);
    }
    let stolen = t.join().unwrap();
    assert_eq!(
        usize::from(mine.is_some()) + usize::from(stolen),
        1,
        "ticket must be taken exactly once"
    );
}

/// Two tickets, one thief: every ticket is taken exactly once across the
/// owner's LIFO pops and the thief's FIFO steals, in every interleaving.
#[test]
fn owner_and_thief_partition_two_tickets() {
    let report = Builder::new().check(|| {
        let (mut w, s) = steal_pair(4);
        w.push(10).unwrap();
        w.push(11).unwrap();
        let t = thread::spawn(move || {
            let mut got = Vec::new();
            let mut retries = 0;
            loop {
                match s.steal() {
                    Steal::Taken(v) => got.push(v),
                    Steal::Retry if retries < 4 => {
                        retries += 1;
                        continue;
                    }
                    _ => break,
                }
            }
            got
        });
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        got.extend(t.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![10, 11], "tickets lost or duplicated: {got:?}");
    });
    assert!(report.complete);
    assert!(report.executions >= 200);
}

/// Three-way race: two thieves and the owner contend for a single
/// ticket. The decisive CAS must serialize them — exactly one winner.
#[test]
fn two_thieves_and_owner_race_last_ticket() {
    let report = Builder::new()
        // Three threads blow up fast; four preemptions keep exploration
        // around 40k executions / ~3 s while covering one involuntary
        // switch per contender pair plus two extra mid-CAS preemptions.
        .preemption_bound(Some(4))
        .check(|| {
            let (mut w, s) = steal_pair(2);
            w.push(5).unwrap();
            let thief = |s: rtopex_check::steal::Stealer| {
                thread::spawn(move || {
                    for _ in 0..3 {
                        match s.steal() {
                            Steal::Taken(v) => return Some(v),
                            Steal::Retry => continue,
                            Steal::Empty => return None,
                        }
                    }
                    None
                })
            };
            let t1 = thief(s.clone());
            let t2 = thief(s);
            let mine = w.pop();
            let r1 = t1.join().unwrap();
            let r2 = t2.join().unwrap();
            let takes =
                usize::from(mine.is_some()) + usize::from(r1.is_some()) + usize::from(r2.is_some());
            assert_eq!(takes, 1, "single ticket taken {takes} times");
        });
    assert!(report.complete);
    // The headline exploration budget: this one scenario already covers
    // the "≥10k interleavings" bar the CI analysis job quotes.
    assert!(report.executions >= 10_000);
}

/// Push racing a steal at full capacity: the capacity check may refuse
/// the push, but it must never overwrite a slot a stealer still holds an
/// un-CASed claim on (the safety argument in the module docs).
#[test]
fn full_ring_push_never_clobbers_inflight_steal() {
    let report = Builder::new().check(|| {
        let (mut w, s) = steal_pair(2);
        w.push(1).unwrap();
        w.push(2).unwrap();
        let t = thread::spawn(move || {
            let mut got = Vec::new();
            let mut retries = 0;
            loop {
                match s.steal() {
                    Steal::Taken(v) => got.push(v),
                    Steal::Retry if retries < 4 => {
                        retries += 1;
                        continue;
                    }
                    _ => break,
                }
            }
            got
        });
        // Owner keeps trying to push a third ticket while the thief
        // drains; a successful push must reuse only truly freed slots.
        let mut pushed3 = false;
        for _ in 0..4 {
            if w.push(3).is_ok() {
                pushed3 = true;
                break;
            }
            thread::yield_now();
        }
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        got.extend(t.join().unwrap());
        got.sort_unstable();
        let mut expect = vec![1, 2];
        if pushed3 {
            expect.push(3);
        }
        assert_eq!(got, expect, "ring reuse corrupted a ticket: {got:?}");
    });
    assert!(report.complete);
    assert!(report.executions >= 200);
}
