//! Model checks for the slot-arena publication protocol
//! (`crates/core/src/slots.rs`, compiled into `rtopex-check` against the
//! shim lock and atomics) — alone and composed with the deque, exactly
//! the way `rtopex-runtime`'s `try_steal`/`fanout_steal` compose them.

use rtopex_check::slots::{SlotBoard, SlotState};
use rtopex_check::steal::{
    decode_ticket, encode_ticket, steal_pair, AdmissionPolicy, DeltaGuard, Steal,
};
use rtopex_check::sync::Data;
use rtopex_check::time::Nanos;
use rtopex_check::{thread, Builder};
use std::sync::Arc;

/// Owner-side bounded wait on a slot: poll with yields so the model's
/// scheduler can run the helper; panics (fails the execution) if the slot
/// never resolves — which would be a real protocol bug.
fn poll_until_resolved<D>(board: &SlotBoard<D>, idx: usize) -> SlotState {
    for _ in 0..32 {
        match board.poll(idx) {
            SlotState::Pending => thread::yield_now(),
            s => return s,
        }
    }
    panic!("slot {idx} stuck Pending: helper neither completed nor declined");
}

/// Ready-flag publication: the owner may absorb a helper's result only
/// after seeing `Done`; the Release/Acquire pair on the flag must make
/// the payload write visible. The payload is a race-detected [`Data`], so
/// a missing edge fails the check even when the value looks right.
#[test]
fn ready_flag_publishes_helper_result() {
    let report = Builder::new().check(ready_flag_body);
    assert!(report.complete);
    assert!(report.executions >= 50);
}

/// Second seeded-bug test: weakening Release stores must break the
/// ready-flag protocol — the owner can observe `Done` without the
/// payload write, a data race the checker must report.
#[test]
fn mutation_weakened_ready_flag_is_caught() {
    let failure = Builder::new()
        .weaken_release_stores(true)
        .try_check(ready_flag_body)
        .expect_err("Release→Relaxed downgrade of the ready flag must be detected");
    assert!(
        failure.message.contains("data race") || failure.message.contains("assertion"),
        "unexpected failure kind: {failure}"
    );
}

fn ready_flag_body() {
    let board = Arc::new(SlotBoard::new(1, 0u64));
    let result = Arc::new(Data::new(0u64));
    let epoch = board.publish(1, |d| *d = 5);
    let (b2, r2) = (Arc::clone(&board), Arc::clone(&result));
    let helper = thread::spawn(move || {
        let Some(stage) = b2.enter(epoch) else {
            panic!("live epoch refused");
        };
        // Helper computes from the descriptor and writes the payload
        // BEFORE flipping the flag.
        let input = *stage.desc();
        r2.set(input * 2);
        stage.complete(0);
    });
    if poll_until_resolved(&board, 0) == SlotState::Done {
        assert_eq!(result.get(), 10, "absorbed result before the payload write");
    }
    helper.join().unwrap();
}

/// Epoch-ticket ABA: a thief that steals a stage-1 ticket but only gets
/// scheduled after the owner recovered the stage and republished must be
/// refused by `enter` — it may never touch stage 2's slots or payload.
#[test]
fn stale_epoch_ticket_is_refused() {
    let report = Builder::new().check(|| {
        let board = Arc::new(SlotBoard::new(1, 0u64));
        let payload = Arc::new(Data::new(0u64));
        let (mut w, s) = steal_pair(2);

        // Stage 1: published, ticket pushed.
        let e1 = board.publish(1, |d| *d = 1);
        w.push(encode_ticket(e1, 0)).unwrap();

        let (b2, p2) = (Arc::clone(&board), Arc::clone(&payload));
        let thief = thread::spawn(move || {
            for _ in 0..4 {
                match s.steal() {
                    Steal::Taken(t) => {
                        let (e, i) = decode_ticket(t);
                        match b2.enter(e) {
                            Some(stage) => {
                                p2.set(*stage.desc());
                                stage.complete(i);
                                return Some(true); // executed
                            }
                            None => return Some(false), // correctly refused
                        }
                    }
                    _ => thread::yield_now(),
                }
            }
            None // never got the ticket
        });

        // Owner: try to recover the ticket locally (pop). If the thief
        // already has it, wait out the slot; then republish — the epoch
        // bump must fence out any straggler.
        let recovered = w.pop();
        let stage1_local = if recovered.is_some() {
            payload.set(*board.enter(e1).expect("owner holds the live epoch"));
            true
        } else {
            // The thief holds the ticket; it must resolve the slot before
            // stage 1 can be considered over.
            let r = poll_until_resolved(&board, 0);
            assert_eq!(r, SlotState::Done);
            false
        };

        // Stage 2 (epoch bump blocks until any straggler guard drops).
        let e2 = board.publish(1, |d| *d = 2);
        assert!(e2 > e1);
        assert!(
            board.enter(e1).is_none(),
            "stage-1 ticket validated against stage 2"
        );
        // Stage 2 runs fully local.
        payload.set(*board.enter(e2).unwrap());
        let outcome = thief.join().unwrap();
        if stage1_local {
            assert_ne!(
                outcome,
                Some(true),
                "ticket executed remotely AND recovered locally"
            );
        }
        // Whatever interleaving ran, stage 2's local write is last in
        // happens-before order, so the payload must be stage 2's value.
        assert_eq!(payload.get(), 2, "straggler overwrote a newer stage");
    });
    assert!(report.complete);
    assert!(report.executions >= 200);
}

/// DeltaGuard admission racing the owner's local take: whichever side
/// reaches the ticket first, the subtask must be executed exactly once —
/// a declined steal must surface as `Declined` so the owner recovers it.
#[test]
fn delta_guard_decline_vs_local_take() {
    for admit in [false, true] {
        let report = Builder::new().check(move || {
            let board = Arc::new(SlotBoard::new(1, 0u64));
            let executions = Arc::new(Data::new(0u32));
            let (mut w, s) = steal_pair(2);
            let epoch = board.publish(1, |d| *d = 9);
            w.push(encode_ticket(epoch, 0)).unwrap();

            // δ = 20µs; the thief's idle window either fits tp + δ or
            // does not — the two runtime regimes.
            let guard = DeltaGuard {
                delta: Nanos::from_us_f64(20.0),
            };
            let tp = Nanos::from_us_f64(100.0);
            let idle_window = if admit {
                Nanos::from_us_f64(500.0)
            } else {
                Nanos::from_us_f64(50.0)
            };

            let (b2, x2) = (Arc::clone(&board), Arc::clone(&executions));
            let thief = thread::spawn(move || {
                for _ in 0..4 {
                    match s.steal() {
                        Steal::Taken(t) => {
                            let (e, i) = decode_ticket(t);
                            let Some(stage) = b2.enter(e) else { return };
                            if guard.admit(tp, Nanos::from_us_f64(1_000.0), idle_window) {
                                x2.with_mut(|n| *n += 1);
                                stage.complete(i);
                            } else {
                                stage.decline(i);
                            }
                            return;
                        }
                        _ => thread::yield_now(),
                    }
                }
            });

            match w.pop() {
                Some(_) => executions.with_mut(|n| *n += 1), // local take won
                None => {
                    // Thief holds it: Done means it executed, Declined
                    // means the owner must recover locally.
                    if poll_until_resolved(&board, 0) == SlotState::Declined {
                        executions.with_mut(|n| *n += 1);
                    }
                }
            }
            thief.join().unwrap();
            assert_eq!(
                executions.get(),
                1,
                "subtask must execute exactly once (admit={admit})"
            );
        });
        assert!(report.complete);
        assert!(
            report.executions >= 100,
            "admit={admit}: {}",
            report.executions
        );
    }
}

/// Publication is atomic from a helper's point of view: a helper that
/// validated epoch N must read epoch N's descriptor, never a torn mix
/// with N+1's — the write guard blocks the bump while any helper is in.
#[test]
fn descriptor_never_torn_across_epochs() {
    let report = Builder::new().check(|| {
        let board = Arc::new(SlotBoard::new(1, (0u64, 0u64)));
        let e1 = board.publish(1, |d| *d = (1, 10));
        let b2 = Arc::clone(&board);
        let helper = thread::spawn(move || {
            if let Some(stage) = b2.enter(e1) {
                let (a, b) = *stage.desc();
                assert_eq!(b, a * 10, "torn descriptor: ({a}, {b})");
                stage.complete(0);
            }
        });
        let _ = board.poll(0);
        // Republish concurrently with the helper's enter: the two-field
        // descriptor must change atomically.
        let _e2 = board.publish(1, |d| *d = (2, 20));
        helper.join().unwrap();
    });
    assert!(report.complete);
    assert!(report.executions >= 20);
}
