//! rtopex-check — an in-repo bounded concurrency model checker.
//!
//! crates.io is unavailable to this workspace (every dependency is a
//! vendored shim), so loom is not an option; this crate rebuilds the part
//! of it the runtime needs: shim atomics/locks/threads whose every
//! operation is a visible event, a cooperative scheduler that runs **one
//! thread at a time** and treats each scheduling decision and each
//! weak-memory reads-from choice as a branch, and a DFS driver that
//! replays the test closure once per branch combination until the bounded
//! tree is exhausted.
//!
//! ```
//! use rtopex_check as check;
//! use check::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let report = check::model(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let f2 = Arc::clone(&flag);
//!     let t = check::thread::spawn(move || f2.store(1, Ordering::Release));
//!     let _saw = flag.load(Ordering::Acquire);
//!     t.join().unwrap();
//! });
//! assert!(report.complete);
//! ```
//!
//! What it checks, per execution: user assertions (`assert!` in the
//! closure fails that interleaving with a full trace), data races on
//! [`sync::Data`] cells, deadlocks, and livelocks (step-limit). What it
//! explores: all interleavings up to the preemption bound × all C11-legal
//! reads-from choices for every atomic load (Relaxed loads may observe
//! stale stores; Acquire loads synchronize with Release stores; `SeqCst`
//! operations share a single total order — modelled slightly
//! conservatively, see `engine` docs).
//!
//! The runtime's own lock-free code is compiled *into this crate* against
//! the shim (see the `ported` module) via `#[path]` includes, so the
//! model tests exercise the exact shipped source, not a copy.

#![warn(missing_docs)]

mod clock;
mod engine;

pub mod adversary;
pub mod sync;
pub mod thread;

pub use engine::{Failure, Report};

// ------------------------------------------------------------------
// Ported runtime modules: the *shipped source files* from rtopex-core,
// compiled here against the shim `crate::sync` (in rtopex-core the same
// paths resolve to the std facade). `#[path]` includes — not copies — so
// the model tests can never drift from the code that actually runs.
// ------------------------------------------------------------------

/// rtopex-core's time base (`crates/core/src/time.rs`), needed by the
/// ported deque's admission guard.
#[path = "../../core/src/time.rs"]
pub mod time;

/// The shipped Chase–Lev deque (`crates/core/src/steal.rs`) compiled
/// against the shim atomics.
#[path = "../../core/src/steal.rs"]
pub mod steal;

/// The shipped slot-arena publication protocol
/// (`crates/core/src/slots.rs`) compiled against the shim lock/atomics.
#[path = "../../core/src/slots.rs"]
pub mod slots;

/// Configures and runs a bounded model check.
///
/// Defaults: preemption bound 3, at most 6 threads, 20k steps per
/// execution, 500k executions. The defaults suit the runtime's two- and
/// three-thread protocol tests; raise them for bigger models.
#[derive(Clone, Debug)]
pub struct Builder {
    cfg: engine::Config,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Self {
        Builder {
            cfg: engine::Config::default(),
        }
    }

    /// Maximum involuntary context switches per execution (`None` =
    /// unbounded). Two or three preemptions find the vast majority of
    /// real concurrency bugs while keeping the tree tractable.
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.cfg.preemption_bound = bound;
        self
    }

    /// Per-execution step limit; exceeding it fails the check as a
    /// livelock. Model code must bound its spin loops.
    pub fn max_steps(mut self, steps: usize) -> Self {
        self.cfg.max_steps = steps;
        self
    }

    /// Maximum live model threads (including the main one).
    pub fn max_threads(mut self, threads: usize) -> Self {
        self.cfg.max_threads = threads;
        self
    }

    /// Cap on explored executions; hitting it returns an incomplete
    /// [`Report`] instead of failing.
    pub fn max_executions(mut self, executions: usize) -> Self {
        self.cfg.max_executions = executions;
        self
    }

    /// Mutation knob: downgrade every plain `Ordering::Release` store to
    /// `Relaxed` inside the model. A protocol test that still passes
    /// under this weakening is not actually relying on its release
    /// edges — the mutation self-tests assert the deque/arena suites
    /// *fail* here, proving the checker is not vacuously green.
    pub fn weaken_release_stores(mut self, weaken: bool) -> Self {
        self.cfg.weaken_release_stores = weaken;
        self
    }

    /// Runs the check; panics with the failing interleaving trace on the
    /// first failure.
    pub fn check<F: Fn() + Sync>(&self, f: F) -> Report {
        match self.try_check(f) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the check, returning the failure (message + trace) instead of
    /// panicking.
    pub fn try_check<F: Fn() + Sync>(&self, f: F) -> Result<Report, Failure> {
        engine::explore(&self.cfg, f)
    }
}

/// Checks `f` under the default [`Builder`] bounds.
pub fn model<F: Fn() + Sync>(f: F) -> Report {
    Builder::new().check(f)
}

#[cfg(test)]
mod litmus {
    //! Classic litmus tests: the checker must both *find* the weak
    //! behaviours the C11 model allows and *never invent* ones it
    //! forbids. These validate the engine before any runtime code is
    //! trusted to it.

    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Data;
    use super::{thread, Builder};
    use std::sync::Arc;

    /// Message passing with Release/Acquire must never lose the payload:
    /// if the consumer sees the flag, it must see the data.
    #[test]
    fn mp_release_acquire_passes() {
        let report = Builder::new().check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "MP: lost payload");
            }
            t.join().unwrap();
        });
        assert!(report.complete);
        assert!(report.executions >= 3, "expected several interleavings");
    }

    /// The same shape with a Relaxed flag store MUST be caught: the
    /// consumer can see flag=1 yet read data=0.
    #[test]
    fn mp_relaxed_flag_fails() {
        let failure = Builder::new()
            .try_check(|| {
                let data = Arc::new(AtomicU64::new(0));
                let flag = Arc::new(AtomicU64::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let t = thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    f2.store(1, Ordering::Relaxed);
                });
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "MP: lost payload");
                }
                t.join().unwrap();
            })
            .expect_err("relaxed message passing must be refuted");
        assert!(failure.message.contains("lost payload"), "{failure}");
        assert!(!failure.trace.is_empty());
    }

    /// The weaken_release_stores mutation knob must turn the *passing* MP
    /// test into a failing one — the self-check the mutation suite
    /// relies on.
    #[test]
    fn mp_weakened_release_fails() {
        let failure = Builder::new()
            .weaken_release_stores(true)
            .try_check(|| {
                let data = Arc::new(AtomicU64::new(0));
                let flag = Arc::new(AtomicU64::new(0));
                let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
                let t = thread::spawn(move || {
                    d2.store(42, Ordering::Relaxed);
                    f2.store(1, Ordering::Release);
                });
                if flag.load(Ordering::Acquire) == 1 {
                    assert_eq!(data.load(Ordering::Relaxed), 42, "MP: lost payload");
                }
                t.join().unwrap();
            })
            .expect_err("weakened release store must lose the payload");
        assert!(failure.message.contains("lost payload"), "{failure}");
    }

    /// Store buffering: with Relaxed (or even Acquire/Release) both
    /// threads may read 0 — the checker must reach that outcome.
    #[test]
    fn sb_relaxed_observes_both_zero() {
        let saw_both_zero = std::sync::atomic::AtomicBool::new(false);
        let report = Builder::new().check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let rx = x.load(Ordering::Relaxed);
            let ry = t.join().unwrap();
            if rx == 0 && ry == 0 {
                saw_both_zero.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert!(report.complete);
        assert!(
            saw_both_zero.load(std::sync::atomic::Ordering::Relaxed),
            "store buffering outcome (0,0) was never explored"
        );
    }

    /// Store buffering with SeqCst everywhere: (0,0) is forbidden by the
    /// single total order and must never be observed.
    #[test]
    fn sb_seqcst_never_both_zero() {
        Builder::new().check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let rx = x.load(Ordering::SeqCst);
            let ry = t.join().unwrap();
            assert!(
                rx == 1 || ry == 1,
                "SeqCst store buffering produced the forbidden (0,0)"
            );
        });
    }

    /// Coherence: a thread that has read a newer store may never read an
    /// older one afterwards, even fully Relaxed.
    #[test]
    fn coherence_no_backward_reads() {
        Builder::new().check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                x2.store(2, Ordering::Relaxed);
            });
            let a = x.load(Ordering::Relaxed);
            let b = x.load(Ordering::Relaxed);
            assert!(b >= a, "coherence violation: read {b} after {a}");
            t.join().unwrap();
        });
    }

    /// An unsynchronized Data write racing a read must be reported.
    #[test]
    fn data_race_detected() {
        let failure = Builder::new()
            .try_check(|| {
                let d = Arc::new(Data::new(0u64));
                let d2 = Arc::clone(&d);
                let t = thread::spawn(move || d2.set(1));
                let _ = d.get();
                t.join().unwrap();
            })
            .expect_err("unsynchronized Data access must race");
        assert!(failure.message.contains("data race"), "{failure}");
    }

    /// The same Data access pattern protected by a flag handshake is
    /// race-free.
    #[test]
    fn data_handshake_race_free() {
        let report = Builder::new().check(|| {
            let d = Arc::new(Data::new(0u64));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&d), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.set(7);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(d.get(), 7);
            }
            t.join().unwrap();
        });
        assert!(report.complete);
    }

    /// Lock-protected counter: no lost updates, and the checker visits
    /// both acquisition orders.
    #[test]
    fn mutex_no_lost_update() {
        let report = Builder::new().check(|| {
            let c = Arc::new(super::sync::Mutex::new(0u64));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                *c2.lock().unwrap() += 1;
            });
            *c.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2, "lost update under mutex");
        });
        assert!(report.complete);
    }

    /// CAS-based counter with two increments: RMW atomicity must prevent
    /// a lost update.
    #[test]
    fn cas_counter_exact() {
        Builder::new().check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let bump = |a: &AtomicU64| {
                for _ in 0..8 {
                    let cur = a.load(Ordering::Relaxed);
                    if a.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        return;
                    }
                }
                panic!("CAS retry bound exceeded");
            };
            let t = thread::spawn(move || bump(&c2));
            bump(&c);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost update via CAS");
        });
    }

    /// Deadlock detection: two threads acquiring two mutexes in opposite
    /// orders must be reported (not hang).
    #[test]
    fn deadlock_detected() {
        let failure = Builder::new()
            .try_check(|| {
                let a = Arc::new(super::sync::Mutex::new(()));
                let b = Arc::new(super::sync::Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                t.join().unwrap();
            })
            .expect_err("opposite-order double locking must deadlock somewhere");
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    /// A panic inside a spawned model thread surfaces as a check failure
    /// with its message, not a hang or a silent pass.
    #[test]
    fn child_assertion_failure_reported() {
        let failure = Builder::new()
            .try_check(|| {
                let t = thread::spawn(|| panic!("child invariant broken"));
                t.join().unwrap();
            })
            .expect_err("child panic must fail the check");
        assert!(
            failure.message.contains("child invariant broken"),
            "{failure}"
        );
    }
}
