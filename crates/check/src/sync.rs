//! Shim synchronization primitives.
//!
//! Same surface as `std::sync` (plus [`Data`]), but every operation is a
//! *visible event* to the model-checking engine when the calling thread
//! belongs to an active execution. Outside an execution — e.g. the ported
//! modules' own unit tests running under real concurrency — every type
//! degrades to a thin wrapper over the real `std` primitive, so the same
//! source compiles and behaves identically in both worlds.
//!
//! `rtopex_core::sync` re-exports this module under `cfg(rtopex_model)`
//! and `std::sync` otherwise; code written against the facade never names
//! this crate directly.

use crate::engine::{self, ExecShared, Flavour, LocRef, LockKind};
use std::sync::Arc;

pub use std::sync::atomic::Ordering;

/// Model-aware drop-ins for `std::sync::atomic`.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            pub struct $name {
                real: std::sync::atomic::$std,
                model: Option<LocRef>,
            }

            impl $name {
                /// Creates the atomic; registers a model location when a
                /// model execution is active on this thread.
                pub fn new(v: $ty) -> Self {
                    $name {
                        real: std::sync::atomic::$std::new(v),
                        model: engine::register(Flavour::Atomic, v as u64),
                    }
                }

                fn live(&self) -> Option<(Arc<ExecShared>, usize, usize)> {
                    let m = self.model.as_ref()?;
                    let (exec, me) = m.live()?;
                    Some((exec, me, m.id))
                }

                /// Atomic load (modelled: an explored reads-from choice).
                pub fn load(&self, ord: Ordering) -> $ty {
                    if let Some((e, me, id)) = self.live() {
                        let v = e.atomic_load(me, id, ord) as $ty;
                        return v;
                    }
                    self.real.load(ord)
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, ord: Ordering) {
                    if let Some((e, me, id)) = self.live() {
                        e.atomic_store(me, id, v as u64, ord);
                        self.real.store(v, Ordering::Relaxed);
                        return;
                    }
                    self.real.store(v, ord)
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    if let Some((e, me, id)) = self.live() {
                        let old = e
                            .atomic_rmw(me, id, ord, ord, &mut |_| Some(v as u64))
                            .expect("swap always succeeds") as $ty;
                        self.real.store(v, Ordering::Relaxed);
                        return old;
                    }
                    self.real.swap(v, ord)
                }

                /// Strong compare-exchange (weak is modelled identically —
                /// the model has no spurious failures).
                pub fn compare_exchange(
                    &self,
                    expected: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    if let Some((e, me, id)) = self.live() {
                        let r = e.atomic_rmw(me, id, success, failure, &mut |cur| {
                            if cur == expected as u64 {
                                Some(new as u64)
                            } else {
                                None
                            }
                        });
                        if r.is_ok() {
                            self.real.store(new, Ordering::Relaxed);
                        }
                        return r.map(|v| v as $ty).map_err(|v| v as $ty);
                    }
                    self.real.compare_exchange(expected, new, success, failure)
                }

                /// Weak compare-exchange; see [`Self::compare_exchange`].
                pub fn compare_exchange_weak(
                    &self,
                    expected: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(expected, new, success, failure)
                }

                /// Atomic wrapping add; returns the previous value.
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    if let Some((e, me, id)) = self.live() {
                        let old = e
                            .atomic_rmw(me, id, ord, ord, &mut |cur| {
                                Some((cur as $ty).wrapping_add(v) as u64)
                            })
                            .expect("fetch_add always succeeds") as $ty;
                        self.real.store(old.wrapping_add(v), Ordering::Relaxed);
                        return old;
                    }
                    self.real.fetch_add(v, ord)
                }

                /// Atomic wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    if let Some((e, me, id)) = self.live() {
                        let old = e
                            .atomic_rmw(me, id, ord, ord, &mut |cur| {
                                Some((cur as $ty).wrapping_sub(v) as u64)
                            })
                            .expect("fetch_sub always succeeds") as $ty;
                        self.real.store(old.wrapping_sub(v), Ordering::Relaxed);
                        return old;
                    }
                    self.real.fetch_sub(v, ord)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // No load: Debug must not be a scheduling point.
                    f.write_str(concat!(stringify!($name), "(..)"))
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $ty)
                }
            }
        };
    }

    shim_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64, AtomicU64, u64
    );
    shim_atomic!(
        /// Model-aware `AtomicU32`.
        AtomicU32, AtomicU32, u32
    );
    shim_atomic!(
        /// Model-aware `AtomicU8`.
        AtomicU8, AtomicU8, u8
    );
    shim_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize
    );

    /// Model-aware `AtomicBool` (stored as 0/1 in the model).
    pub struct AtomicBool {
        real: std::sync::atomic::AtomicBool,
        model: Option<LocRef>,
    }

    impl AtomicBool {
        /// Creates the atomic; registers a model location when a model
        /// execution is active on this thread.
        pub fn new(v: bool) -> Self {
            AtomicBool {
                real: std::sync::atomic::AtomicBool::new(v),
                model: engine::register(Flavour::Atomic, v as u64),
            }
        }

        fn live(&self) -> Option<(Arc<ExecShared>, usize, usize)> {
            let m = self.model.as_ref()?;
            let (exec, me) = m.live()?;
            Some((exec, me, m.id))
        }

        /// Atomic load.
        pub fn load(&self, ord: Ordering) -> bool {
            if let Some((e, me, id)) = self.live() {
                return e.atomic_load(me, id, ord) != 0;
            }
            self.real.load(ord)
        }

        /// Atomic store.
        pub fn store(&self, v: bool, ord: Ordering) {
            if let Some((e, me, id)) = self.live() {
                e.atomic_store(me, id, v as u64, ord);
                self.real.store(v, Ordering::Relaxed);
                return;
            }
            self.real.store(v, ord)
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            if let Some((e, me, id)) = self.live() {
                let old = e
                    .atomic_rmw(me, id, ord, ord, &mut |_| Some(v as u64))
                    .expect("swap always succeeds");
                self.real.store(v, Ordering::Relaxed);
                return old != 0;
            }
            self.real.swap(v, ord)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("AtomicBool(..)")
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }
}

// ---------------------------------------------------------------------
// Locks.
// ---------------------------------------------------------------------

/// Model-aware `std::sync::Mutex`. Lock/unlock are visible events that
/// carry happens-before edges; contention becomes explored blocking.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    model: Option<LocRef>,
}

impl<T> Mutex<T> {
    /// Creates the mutex; registers a model lock when an execution is
    /// active on this thread.
    pub fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
            model: engine::register(Flavour::Lock, 0),
        }
    }

    /// Acquires the mutex. Mirrors `std`'s signature (always `Ok` in the
    /// model; the engine serializes threads so the inner lock is never
    /// contended there).
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let rel = if let Some(m) = &self.model {
            if let Some((e, me)) = m.live() {
                e.lock_acquire(me, m.id, LockKind::Write);
                Some(m.clone())
            } else {
                None
            }
        } else {
            None
        };
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard { inner: g, rel }),
            Err(p) => Ok(MutexGuard {
                inner: p.into_inner(),
                rel,
            }),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex(..)")
    }
}

/// Guard for [`Mutex`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    inner: std::sync::MutexGuard<'a, T>,
    rel: Option<LocRef>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // During an abort unwind the engine op would panic again (fatal
        // inside Drop); the execution's lock state is discarded anyway.
        if std::thread::panicking() {
            return;
        }
        if let Some(m) = &self.rel {
            if let Some((e, me)) = m.live() {
                e.lock_release(me, m.id, LockKind::Write);
            }
        }
    }
}

/// Model-aware `std::sync::RwLock`. Reader clocks accumulate into the
/// release clock, so a later writer synchronizes with every prior reader.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    model: Option<LocRef>,
}

impl<T> RwLock<T> {
    /// Creates the lock; registers a model lock when an execution is
    /// active on this thread.
    pub fn new(t: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(t),
            model: engine::register(Flavour::Lock, 0),
        }
    }

    fn acquire(&self, kind: LockKind) -> Option<LocRef> {
        if let Some(m) = &self.model {
            if let Some((e, me)) = m.live() {
                e.lock_acquire(me, m.id, kind);
                return Some(m.clone());
            }
        }
        None
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::LockResult<RwLockReadGuard<'_, T>> {
        let rel = self.acquire(LockKind::Read);
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard { inner: g, rel }),
            Err(p) => Ok(RwLockReadGuard {
                inner: p.into_inner(),
                rel,
            }),
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> std::sync::LockResult<RwLockWriteGuard<'_, T>> {
        let rel = self.acquire(LockKind::Write);
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard { inner: g, rel }),
            Err(p) => Ok(RwLockWriteGuard {
                inner: p.into_inner(),
                rel,
            }),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

macro_rules! rw_guard {
    ($(#[$doc:meta])* $name:ident, $std:ident, $kind:expr, $($mutdef:tt)*) => {
        $(#[$doc])*
        pub struct $name<'a, T> {
            inner: std::sync::$std<'a, T>,
            rel: Option<LocRef>,
        }

        impl<T> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        $($mutdef)*

        impl<T> Drop for $name<'_, T> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    return;
                }
                if let Some(m) = &self.rel {
                    if let Some((e, me)) = m.live() {
                        e.lock_release(me, m.id, $kind);
                    }
                }
            }
        }
    };
}

rw_guard!(
    /// Shared guard for [`RwLock`].
    RwLockReadGuard,
    RwLockReadGuard,
    LockKind::Read,
);

rw_guard!(
    /// Exclusive guard for [`RwLock`].
    RwLockWriteGuard,
    RwLockWriteGuard,
    LockKind::Write,
    impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
);

// ---------------------------------------------------------------------
// Race-detected plain data.
// ---------------------------------------------------------------------

/// A cell holding *non-atomic* data whose accesses the model checks for
/// data races: a read or write that is not happens-before-ordered with
/// the latest write (or, for writes, with any outstanding read) fails the
/// execution with a race report.
///
/// Outside a model execution it degrades to a mutex-protected cell —
/// always memory-safe, just without detection. Model tests use it for
/// payloads that the algorithm under test claims to hand over exclusively
/// (e.g. a deque slot's job body).
pub struct Data<T> {
    inner: std::sync::Mutex<T>,
    model: Option<LocRef>,
}

impl<T> Data<T> {
    /// Creates the cell; registers a model location when an execution is
    /// active on this thread.
    pub fn new(t: T) -> Self {
        Data {
            inner: std::sync::Mutex::new(t),
            model: engine::register(Flavour::Data, 0),
        }
    }

    fn live(&self) -> Option<(Arc<ExecShared>, usize, usize)> {
        let m = self.model.as_ref()?;
        let (exec, me) = m.live()?;
        Some((exec, me, m.id))
    }

    /// Reads through `f`; reports a race if the read is concurrent with
    /// the latest write.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        if let Some((e, me, id)) = self.live() {
            e.data_read(me, id);
        }
        f(&self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Writes through `f`; reports a race if the write is concurrent with
    /// the latest write or any read since it.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some((e, me, id)) = self.live() {
            e.data_write(me, id);
        }
        f(&mut self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Copies the value out (a checked read).
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.with(|v| *v)
    }

    /// Replaces the value (a checked write).
    pub fn set(&self, v: T) {
        self.with_mut(|p| *p = v)
    }
}

impl<T> std::fmt::Debug for Data<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Data(..)")
    }
}

// ---------------------------------------------------------------------
// Spin/yield hints.
// ---------------------------------------------------------------------

/// Spin-wait hint. Inside the model this is a *yield*: the spinning
/// thread steps aside until another thread has made progress, which is
/// both how real backoff behaves and what keeps bounded spin loops from
/// exploding the schedule space.
pub fn spin_loop() {
    if let Some(ctx) = engine::current_ctx() {
        let exec = ctx.exec.clone();
        exec.yield_now(ctx.id);
        return;
    }
    std::hint::spin_loop();
}

pub use crate::thread::yield_now;
