//! Vector clocks — the happens-before lattice every other part of the
//! checker is built on.
//!
//! One component per model thread (thread ids are dense and small — the
//! engine caps a model at a handful of threads), so a clock is a plain
//! `Vec<u32>` and joins are element-wise maxima. `VClock::le` is the
//! partial order: `a ≤ b` iff every event `a` knows about, `b` also knows
//! about — i.e. `a` happens-before-or-equals `b`.

/// A vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    /// The empty clock (happens-before everything).
    pub fn new() -> Self {
        VClock { slots: Vec::new() }
    }

    /// This thread's own component.
    pub fn get(&self, thread: usize) -> u32 {
        self.slots.get(thread).copied().unwrap_or(0)
    }

    /// Advances `thread`'s component by one (a new local event).
    pub fn tick(&mut self, thread: usize) {
        if self.slots.len() <= thread {
            self.slots.resize(thread + 1, 0);
        }
        self.slots[thread] += 1;
    }

    /// Element-wise maximum: afterwards `self` knows everything `other`
    /// knew.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (s, o) in self.slots.iter_mut().zip(other.slots.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// The happens-before partial order: true iff every component of
    /// `self` is ≤ the matching component of `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(t, &v)| v == 0 || v <= other.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_clock_precedes_everything() {
        let empty = VClock::new();
        let mut c = VClock::new();
        c.tick(2);
        assert!(empty.le(&c));
        assert!(empty.le(&empty));
        assert!(!c.le(&empty));
    }

    #[test]
    fn join_is_elementwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn tick_grows_and_increments() {
        let mut c = VClock::new();
        c.tick(3);
        assert_eq!(c.get(3), 1);
        assert_eq!(c.get(0), 0);
        c.tick(3);
        assert_eq!(c.get(3), 2);
    }
}
