//! The exploration engine: cooperative scheduling, C11-flavoured weak
//! memory, and depth-first path replay.
//!
//! ## How an execution runs
//!
//! Model threads are real OS threads, but **exactly one runs at a time**:
//! every visible operation (atomic access, lock, `Data` access, spawn,
//! join, yield) passes through [`ExecShared::op`], which holds a baton.
//! At each operation's entry the engine consults the [`Path`] — the
//! recorded tree position of this execution — to decide which thread
//! executes next; unexplored alternatives are visited by re-running the
//! whole closure with the path advanced ([`Path::advance`]), exactly the
//! loom strategy.
//!
//! ## How weak memory is modelled
//!
//! Every atomic location keeps the **history of its stores**. A load does
//! not necessarily observe the newest store: the set of *readable* stores
//! is computed from the C11 coherence rules (a thread can never read a
//! store older than one it has already observed, nor older than a store
//! that happens-before the load), and when several stores remain
//! readable, the choice becomes an explored branch. Release stores carry
//! the storing thread's vector clock; acquire loads join it — that is the
//! happens-before edge. `SeqCst` operations additionally join a global SC
//! clock, which realises the single total order (and slightly
//! *strengthens* the model: independent SC operations gain an hb edge the
//! standard does not guarantee — a conservative, documented
//! simplification shared with other practical checkers).
//!
//! Modification order is identified with store execution order, and loads
//! never read from stores that have not yet executed — so load-buffering
//! outcomes are unexplorable (conservative in the safe direction for
//! race *detection*, but means out-of-thin-air behaviours are not
//! reproduced; none of the checked algorithms rely on their absence in a
//! way this weakens).
//!
//! ## Mutation support
//!
//! [`Config::weaken_release_stores`] downgrades every plain
//! `Ordering::Release` store to `Relaxed` inside the model. A test suite
//! that still passes under the weakening is not actually exercising its
//! release/acquire edges — see the mutation self-tests.

use crate::clock::VClock;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (failure elsewhere, or teardown). Never escapes the crate.
pub(crate) struct Abort;

/// Engine knobs, frozen per [`crate::Builder::check`] call.
#[derive(Clone, Debug)]
pub(crate) struct Config {
    pub preemption_bound: Option<usize>,
    pub max_steps: usize,
    pub max_threads: usize,
    pub max_executions: usize,
    pub weaken_release_stores: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(3),
            max_steps: 20_000,
            max_threads: 6,
            max_executions: 500_000,
            weaken_release_stores: false,
        }
    }
}

// ---------------------------------------------------------------------
// Path: the DFS position in the execution tree.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Choice {
    /// Which thread executes the next operation.
    Schedule { options: Vec<usize>, index: usize },
    /// Which store a load reads, among `n` readable candidates
    /// (index 0 = newest).
    ReadsFrom { n: usize, index: usize },
}

/// One root-to-leaf position in the tree of scheduling / reads-from
/// choices. Replayed from the start on every execution.
#[derive(Clone, Debug, Default)]
pub(crate) struct Path {
    choices: Vec<Choice>,
    pos: usize,
}

impl Path {
    fn next_schedule(&mut self, options: &[usize]) -> usize {
        if self.pos < self.choices.len() {
            let c = &self.choices[self.pos];
            let Choice::Schedule { options: o, index } = c else {
                panic!("rtopex-check: nondeterministic model (schedule point became a load)");
            };
            assert_eq!(
                o, options,
                "rtopex-check: nondeterministic model (different runnable sets on replay)"
            );
            let pick = o[*index];
            self.pos += 1;
            pick
        } else {
            self.choices.push(Choice::Schedule {
                options: options.to_vec(),
                index: 0,
            });
            self.pos += 1;
            options[0]
        }
    }

    fn next_reads_from(&mut self, n: usize) -> usize {
        if self.pos < self.choices.len() {
            let c = &self.choices[self.pos];
            let Choice::ReadsFrom { n: m, index } = c else {
                panic!("rtopex-check: nondeterministic model (load point became a schedule)");
            };
            assert_eq!(
                *m, n,
                "rtopex-check: nondeterministic model (candidate-store count changed on replay)"
            );
            let pick = *index;
            self.pos += 1;
            pick
        } else {
            self.choices.push(Choice::ReadsFrom { n, index: 0 });
            self.pos += 1;
            0
        }
    }

    /// Moves to the next unexplored leaf: bumps the deepest choice that
    /// still has an untried alternative and truncates below it. Returns
    /// false when the whole tree has been explored.
    pub(crate) fn advance(&mut self) -> bool {
        while let Some(last) = self.choices.last_mut() {
            let exhausted = match last {
                Choice::Schedule { options, index } => {
                    *index += 1;
                    *index >= options.len()
                }
                Choice::ReadsFrom { n, index } => {
                    *index += 1;
                    *index >= *n
                }
            };
            if exhausted {
                self.choices.pop();
            } else {
                self.pos = 0;
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------
// Events: the interleaving trace reported on failure.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum EvKind {
    Load,
    Store,
    Rmw,
    CasFail,
    LockAcq,
    LockRel,
    DataRead,
    DataWrite,
    Spawn,
    Finish,
    Join,
    Yield,
}

#[derive(Clone, Debug)]
struct Event {
    thread: usize,
    kind: EvKind,
    loc: usize,
    a: u64,
    b: u64,
    ord: Option<Ordering>,
}

fn ord_name(o: Option<Ordering>) -> &'static str {
    match o {
        Some(Ordering::Relaxed) => "Relaxed",
        Some(Ordering::Acquire) => "Acquire",
        Some(Ordering::Release) => "Release",
        Some(Ordering::AcqRel) => "AcqRel",
        Some(Ordering::SeqCst) => "SeqCst",
        _ => "",
    }
}

fn fmt_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 40);
    for (i, e) in events.iter().enumerate() {
        let line = match e.kind {
            EvKind::Load => format!("load  A{} -> {} ({})", e.loc, e.a, ord_name(e.ord)),
            EvKind::Store => format!("store A{} <- {} ({})", e.loc, e.a, ord_name(e.ord)),
            EvKind::Rmw => format!("rmw   A{} {} -> {} ({})", e.loc, e.a, e.b, ord_name(e.ord)),
            EvKind::CasFail => format!("cas!  A{} saw {} ({})", e.loc, e.a, ord_name(e.ord)),
            EvKind::LockAcq => format!(
                "lock  M{} ({})",
                e.loc,
                if e.a == 0 { "write" } else { "read" }
            ),
            EvKind::LockRel => format!(
                "unlock M{} ({})",
                e.loc,
                if e.a == 0 { "write" } else { "read" }
            ),
            EvKind::DataRead => format!("read  D{}", e.loc),
            EvKind::DataWrite => format!("write D{}", e.loc),
            EvKind::Spawn => format!("spawn T{}", e.a),
            EvKind::Finish => "finish".to_string(),
            EvKind::Join => format!("join  T{}", e.a),
            EvKind::Yield => "yield".to_string(),
        };
        out.push_str(&format!("  #{i:<4} [T{}] {line}\n", e.thread));
    }
    out
}

// ---------------------------------------------------------------------
// Execution state.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LockKind {
    Write,
    Read,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum BlockOn {
    Lock(usize, LockKind),
    Join(usize),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Run,
    Blocked(BlockOn),
    Finished,
}

struct ThreadSt {
    state: TState,
    clock: VClock,
    /// Per-location index of the newest store this thread has observed
    /// (coherence floor for its future loads).
    views: Vec<usize>,
    /// Per-location count of consecutive loads that read a non-newest
    /// store. C11 guarantees stores become visible "in a finite period
    /// of time" (§32.4 [atomics.order] p11); without a bound, polling
    /// loops spin forever in executions where every load picks the
    /// stale branch. After [`STALE_READ_BOUND`] consecutive stale reads
    /// the load is forced to the newest store (no reads-from choice).
    stale: Vec<usize>,
    yielded: bool,
    /// Set when a scheduling choice selected this thread; its next
    /// operation executes without a fresh decision.
    chosen: bool,
}

impl ThreadSt {
    fn new(clock: VClock) -> Self {
        ThreadSt {
            state: TState::Run,
            clock,
            views: Vec::new(),
            stale: Vec::new(),
            yielded: false,
            chosen: false,
        }
    }

    fn view(&self, loc: usize) -> usize {
        self.views.get(loc).copied().unwrap_or(0)
    }

    fn set_view(&mut self, loc: usize, v: usize) {
        if self.views.len() <= loc {
            self.views.resize(loc + 1, 0);
        }
        self.views[loc] = v;
    }

    fn stale_reads(&self, loc: usize) -> usize {
        self.stale.get(loc).copied().unwrap_or(0)
    }

    fn set_stale_reads(&mut self, loc: usize, n: usize) {
        if self.stale.len() <= loc {
            self.stale.resize(loc + 1, 0);
        }
        self.stale[loc] = n;
    }
}

/// How many consecutive loads of one location may read a non-newest
/// store before eventual visibility forces the newest one. Three stale
/// observations are enough to surface every ordering bug the litmus and
/// mutation suites seed, while keeping polling loops finite.
const STALE_READ_BOUND: usize = 3;

struct StoreEv {
    val: u64,
    /// Storing thread's full clock at the store — bounds *visibility*
    /// (a load whose thread's clock dominates this cannot read older
    /// stores).
    hb: VClock,
    /// Clock transferred to acquiring readers (empty for Relaxed).
    sync: VClock,
}

struct Location {
    stores: Vec<StoreEv>,
    /// Index of the newest SeqCst store: SC loads may not read past it.
    last_sc: Option<usize>,
}

struct LockSt {
    writer: Option<usize>,
    readers: Vec<usize>,
    release_clock: VClock,
}

struct DataSt {
    write_clock: VClock,
    write_thread: usize,
    reads: Vec<(usize, VClock)>,
}

struct ExecState {
    threads: Vec<ThreadSt>,
    current: usize,
    locations: Vec<Location>,
    locks: Vec<LockSt>,
    datas: Vec<DataSt>,
    path: Path,
    events: Vec<Event>,
    failure: Option<String>,
    abort: bool,
    steps: usize,
    preemptions: usize,
    sc_clock: VClock,
}

/// One execution's shared engine state plus its baton condvar. Model
/// threads hold an `Arc`; shim primitives hold a `Weak` so a leaked
/// structure never keeps a finished execution alive.
pub(crate) struct ExecShared {
    m: Mutex<ExecState>,
    cv: Condvar,
    cfg: Config,
}

enum OpOutcome<R> {
    Done(R),
    Block(BlockOn),
    Fail(String),
}

impl ExecShared {
    fn new(cfg: Config, path: Path) -> Self {
        let mut t0 = ThreadSt::new(VClock::new());
        t0.clock.tick(0);
        ExecShared {
            m: Mutex::new(ExecState {
                threads: vec![t0],
                current: 0,
                locations: Vec::new(),
                locks: Vec::new(),
                datas: Vec::new(),
                path,
                events: Vec::new(),
                failure: None,
                abort: false,
                steps: 0,
                preemptions: 0,
                sc_clock: VClock::new(),
            }),
            cv: Condvar::new(),
            cfg,
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Threads other than `me` that could execute an operation now.
    fn runnable_others(st: &ExecState, me: usize) -> Vec<usize> {
        (0..st.threads.len())
            .filter(|&t| t != me && st.threads[t].state == TState::Run)
            .collect()
    }

    /// The candidate set for the scheduling decision at `me`'s operation
    /// entry, honouring yielding and the preemption bound.
    fn schedule_options(&self, st: &ExecState, me: usize) -> Vec<usize> {
        let others = Self::runnable_others(st, me);
        let non_yielded: Vec<usize> = others
            .iter()
            .copied()
            .filter(|&t| !st.threads[t].yielded)
            .collect();
        if st.threads[me].yielded {
            // A yielded thread steps aside whenever anyone else can run.
            if !non_yielded.is_empty() {
                return non_yielded;
            }
            if !others.is_empty() {
                return others;
            }
            return vec![me];
        }
        let bound_hit = self
            .cfg
            .preemption_bound
            .is_some_and(|b| st.preemptions >= b);
        if bound_hit {
            return vec![me];
        }
        let mut v = Vec::with_capacity(1 + non_yielded.len());
        v.push(me);
        v.extend(non_yielded);
        v
    }

    fn abort_unwind(&self, st: MutexGuard<'_, ExecState>) -> ! {
        drop(st);
        panic::panic_any(Abort);
    }

    /// Records a failure discovered while holding the state lock, aborts
    /// every other thread, and unwinds the current one.
    fn fail_locked(&self, mut st: MutexGuard<'_, ExecState>, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
        self.abort_unwind(st);
    }

    /// Records a user panic (assertion failure in model code) as the
    /// execution's failure.
    pub(crate) fn record_panic(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Runs one visible operation for thread `me`: waits for the baton,
    /// makes (or replays) the scheduling decision, executes `body` under
    /// the state lock, and retries transparently when `body` blocks.
    fn op<R>(&self, me: usize, mut body: impl FnMut(&mut ExecState) -> OpOutcome<R>) -> R {
        let mut st = self.lock();
        loop {
            if st.abort {
                self.abort_unwind(st);
            }
            if st.current != me {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if st.threads[me].chosen {
                st.threads[me].chosen = false;
            } else {
                let options = self.schedule_options(&st, me);
                let pick = st.path.next_schedule(&options);
                if pick != me {
                    if !st.threads[me].yielded {
                        st.preemptions += 1;
                    }
                    st.current = pick;
                    st.threads[pick].chosen = true;
                    self.cv.notify_all();
                    continue;
                }
            }
            match body(&mut st) {
                OpOutcome::Done(r) => {
                    st.steps += 1;
                    if st.steps > self.cfg.max_steps {
                        self.fail_locked(
                            st,
                            format!(
                                "step limit ({}) exceeded — unbounded spin loop in the model? \
                                 bound retries or raise Builder::max_steps",
                                self.cfg.max_steps
                            ),
                        );
                    }
                    for t in 0..st.threads.len() {
                        if t != me {
                            st.threads[t].yielded = false;
                        }
                    }
                    return r;
                }
                OpOutcome::Block(on) => {
                    st.threads[me].state = TState::Blocked(on);
                    let others = Self::runnable_others(&st, me);
                    if others.is_empty() {
                        self.fail_locked(st, "deadlock: every model thread is blocked".into());
                    }
                    let pick = st.path.next_schedule(&others);
                    st.current = pick;
                    st.threads[pick].chosen = true;
                    self.cv.notify_all();
                    // Loop back: wait to be unblocked and chosen again,
                    // then retry the body.
                }
                OpOutcome::Fail(msg) => self.fail_locked(st, msg),
            }
        }
    }

    // -- registration (not scheduling points) --------------------------

    pub(crate) fn register_atomic(&self, me: usize, init: u64) -> usize {
        let mut st = self.lock();
        let hb = st.threads[me].clock.clone();
        st.locations.push(Location {
            stores: vec![StoreEv {
                val: init,
                hb,
                sync: VClock::new(),
            }],
            last_sc: None,
        });
        st.locations.len() - 1
    }

    pub(crate) fn register_lock(&self, _me: usize) -> usize {
        let mut st = self.lock();
        st.locks.push(LockSt {
            writer: None,
            readers: Vec::new(),
            release_clock: VClock::new(),
        });
        st.locks.len() - 1
    }

    pub(crate) fn register_data(&self, me: usize) -> usize {
        let mut st = self.lock();
        let write_clock = st.threads[me].clock.clone();
        st.datas.push(DataSt {
            write_clock,
            write_thread: me,
            reads: Vec::new(),
        });
        st.datas.len() - 1
    }

    // -- atomic operations ---------------------------------------------

    pub(crate) fn atomic_load(&self, me: usize, loc: usize, ord: Ordering) -> u64 {
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            if ord == Ordering::SeqCst {
                let sc = st.sc_clock.clone();
                st.threads[me].clock.join(&sc);
            }
            // Readable floor: own view, stores that happen-before this
            // load, and (for SC loads) the newest SC store.
            let mut lo = st.threads[me].view(loc);
            {
                let clock = &st.threads[me].clock;
                let l = &st.locations[loc];
                for (i, s) in l.stores.iter().enumerate().skip(lo + 1) {
                    if s.hb.le(clock) {
                        lo = i;
                    }
                }
                if ord == Ordering::SeqCst {
                    if let Some(k) = l.last_sc {
                        lo = lo.max(k);
                    }
                }
            }
            let n = st.locations[loc].stores.len() - lo;
            let newest = st.locations[loc].stores.len() - 1;
            let pick = if n > 1 && st.threads[me].stale_reads(loc) < STALE_READ_BOUND {
                // index 0 = newest store, so the leftmost (first-tried)
                // branch is the sequentially-consistent behaviour.
                let offset = st.path.next_reads_from(n);
                newest - offset
            } else {
                // Single candidate, or eventual visibility kicked in:
                // no reads-from branch point.
                if n > 1 {
                    newest
                } else {
                    lo
                }
            };
            let count = if pick < newest {
                st.threads[me].stale_reads(loc) + 1
            } else {
                0
            };
            st.threads[me].set_stale_reads(loc, count);
            let (val, sync) = {
                let s = &st.locations[loc].stores[pick];
                (s.val, s.sync.clone())
            };
            if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
                st.threads[me].clock.join(&sync);
            }
            if ord == Ordering::SeqCst {
                let c = st.threads[me].clock.clone();
                st.sc_clock.join(&c);
            }
            st.threads[me].set_view(loc, pick);
            st.events.push(Event {
                thread: me,
                kind: EvKind::Load,
                loc,
                a: val,
                b: 0,
                ord: Some(ord),
            });
            OpOutcome::Done(val)
        })
    }

    pub(crate) fn atomic_store(&self, me: usize, loc: usize, val: u64, ord: Ordering) {
        let eff = if self.cfg.weaken_release_stores && ord == Ordering::Release {
            Ordering::Relaxed
        } else {
            ord
        };
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            if eff == Ordering::SeqCst {
                let sc = st.sc_clock.clone();
                st.threads[me].clock.join(&sc);
            }
            let clock = st.threads[me].clock.clone();
            let sync = if matches!(eff, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                clock.clone()
            } else {
                VClock::new()
            };
            let l = &mut st.locations[loc];
            l.stores.push(StoreEv {
                val,
                hb: clock.clone(),
                sync,
            });
            let idx = l.stores.len() - 1;
            if eff == Ordering::SeqCst {
                l.last_sc = Some(idx);
                st.sc_clock.join(&clock);
            }
            st.threads[me].set_view(loc, idx);
            st.events.push(Event {
                thread: me,
                kind: EvKind::Store,
                loc,
                a: val,
                b: 0,
                ord: Some(ord),
            });
            OpOutcome::Done(())
        })
    }

    /// Read-modify-write: reads the newest store in modification order
    /// (C11 requires RMWs to), applies `f`, and if `f` yields a new
    /// value, stores it continuing the read store's release sequence.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        loc: usize,
        success: Ordering,
        failure: Ordering,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> Result<u64, u64> {
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            let old = st.locations[loc].stores.last().expect("init store").val;
            let new = f(old);
            let ord = if new.is_some() { success } else { failure };
            if ord == Ordering::SeqCst {
                let sc = st.sc_clock.clone();
                st.threads[me].clock.join(&sc);
            }
            let read_sync = st.locations[loc]
                .stores
                .last()
                .expect("init store")
                .sync
                .clone();
            if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
                st.threads[me].clock.join(&read_sync);
            }
            if ord == Ordering::SeqCst {
                let c = st.threads[me].clock.clone();
                st.sc_clock.join(&c);
            }
            match new {
                Some(v) => {
                    let clock = st.threads[me].clock.clone();
                    // A RMW store continues the release sequence headed by
                    // the store it read: acquire-readers of `v` also
                    // synchronize with that head.
                    let mut sync = read_sync;
                    if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                        sync.join(&clock);
                    }
                    let l = &mut st.locations[loc];
                    l.stores.push(StoreEv {
                        val: v,
                        hb: clock.clone(),
                        sync,
                    });
                    let idx = l.stores.len() - 1;
                    if ord == Ordering::SeqCst {
                        l.last_sc = Some(idx);
                    }
                    st.threads[me].set_view(loc, idx);
                    st.events.push(Event {
                        thread: me,
                        kind: EvKind::Rmw,
                        loc,
                        a: old,
                        b: v,
                        ord: Some(ord),
                    });
                    OpOutcome::Done(Ok(old))
                }
                None => {
                    let idx = st.locations[loc].stores.len() - 1;
                    st.threads[me].set_view(loc, idx);
                    st.events.push(Event {
                        thread: me,
                        kind: EvKind::CasFail,
                        loc,
                        a: old,
                        b: 0,
                        ord: Some(ord),
                    });
                    OpOutcome::Done(Err(old))
                }
            }
        })
    }

    // -- locks ----------------------------------------------------------

    pub(crate) fn lock_acquire(&self, me: usize, lock: usize, kind: LockKind) {
        self.op(me, |st| {
            let free = {
                let l = &st.locks[lock];
                match kind {
                    LockKind::Write => l.writer.is_none() && l.readers.is_empty(),
                    LockKind::Read => l.writer.is_none(),
                }
            };
            if !free {
                return OpOutcome::Block(BlockOn::Lock(lock, kind));
            }
            st.threads[me].clock.tick(me);
            let rc = st.locks[lock].release_clock.clone();
            st.threads[me].clock.join(&rc);
            match kind {
                LockKind::Write => st.locks[lock].writer = Some(me),
                LockKind::Read => st.locks[lock].readers.push(me),
            }
            st.events.push(Event {
                thread: me,
                kind: EvKind::LockAcq,
                loc: lock,
                a: if kind == LockKind::Write { 0 } else { 1 },
                b: 0,
                ord: None,
            });
            OpOutcome::Done(())
        })
    }

    pub(crate) fn lock_release(&self, me: usize, lock: usize, kind: LockKind) {
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            let clock = st.threads[me].clock.clone();
            {
                let l = &mut st.locks[lock];
                match kind {
                    LockKind::Write => {
                        debug_assert_eq!(l.writer, Some(me), "release of unheld write lock");
                        l.writer = None;
                    }
                    LockKind::Read => {
                        if let Some(p) = l.readers.iter().position(|&t| t == me) {
                            l.readers.swap_remove(p);
                        }
                    }
                }
                l.release_clock.join(&clock);
            }
            // Wake every thread parked on this lock; losers re-block.
            for t in 0..st.threads.len() {
                if st.threads[t].state == TState::Blocked(BlockOn::Lock(lock, LockKind::Write))
                    || st.threads[t].state == TState::Blocked(BlockOn::Lock(lock, LockKind::Read))
                {
                    st.threads[t].state = TState::Run;
                }
            }
            st.events.push(Event {
                thread: me,
                kind: EvKind::LockRel,
                loc: lock,
                a: if kind == LockKind::Write { 0 } else { 1 },
                b: 0,
                ord: None,
            });
            OpOutcome::Done(())
        })
    }

    // -- non-atomic data (race detection) -------------------------------

    pub(crate) fn data_read(&self, me: usize, data: usize) {
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            let ok = st.datas[data].write_clock.le(&st.threads[me].clock);
            if !ok {
                return OpOutcome::Fail(format!(
                    "data race on D{data}: read by T{me} is concurrent with the last write (by T{})",
                    st.datas[data].write_thread
                ));
            }
            let clock = st.threads[me].clock.clone();
            st.datas[data].reads.push((me, clock));
            st.events.push(Event {
                thread: me,
                kind: EvKind::DataRead,
                loc: data,
                a: 0,
                b: 0,
                ord: None,
            });
            OpOutcome::Done(())
        })
    }

    pub(crate) fn data_write(&self, me: usize, data: usize) {
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            let clock = st.threads[me].clock.clone();
            if !st.datas[data].write_clock.le(&clock) {
                return OpOutcome::Fail(format!(
                    "data race on D{data}: write by T{me} is concurrent with the last write (by T{})",
                    st.datas[data].write_thread
                ));
            }
            if let Some((rt, _)) = st.datas[data]
                .reads
                .iter()
                .find(|(_, rc)| !rc.le(&clock))
            {
                return OpOutcome::Fail(format!(
                    "data race on D{data}: write by T{me} is concurrent with a read by T{rt}"
                ));
            }
            let d = &mut st.datas[data];
            d.write_clock = clock;
            d.write_thread = me;
            d.reads.clear();
            st.events.push(Event {
                thread: me,
                kind: EvKind::DataWrite,
                loc: data,
                a: 0,
                b: 0,
                ord: None,
            });
            OpOutcome::Done(())
        })
    }

    // -- threads --------------------------------------------------------

    pub(crate) fn spawn_thread(&self, me: usize) -> usize {
        let max = self.cfg.max_threads;
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            let tid = st.threads.len();
            if tid >= max {
                return OpOutcome::Fail(format!(
                    "model spawned more than {max} threads (Builder::max_threads)"
                ));
            }
            let mut clock = st.threads[me].clock.clone();
            clock.tick(tid);
            st.threads.push(ThreadSt::new(clock));
            st.events.push(Event {
                thread: me,
                kind: EvKind::Spawn,
                loc: 0,
                a: tid as u64,
                b: 0,
                ord: None,
            });
            OpOutcome::Done(tid)
        })
    }

    /// Parks a freshly spawned OS thread until the scheduler first picks
    /// it. Leaves `chosen` set: the pick covers the thread's first
    /// visible operation.
    pub(crate) fn gate(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                self.abort_unwind(st);
            }
            if st.current == tid {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `me` finished, wakes joiners, and hands the baton on. The
    /// calling OS thread must exit afterwards.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st.abort {
                self.abort_unwind(st);
            }
            if st.current != me {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            if st.threads[me].chosen {
                st.threads[me].chosen = false;
            } else {
                let options = self.schedule_options(&st, me);
                let pick = st.path.next_schedule(&options);
                if pick != me {
                    if !st.threads[me].yielded {
                        st.preemptions += 1;
                    }
                    st.current = pick;
                    st.threads[pick].chosen = true;
                    self.cv.notify_all();
                    continue;
                }
            }
            break;
        }
        st.threads[me].clock.tick(me);
        st.threads[me].state = TState::Finished;
        st.steps += 1;
        for t in 0..st.threads.len() {
            if st.threads[t].state == TState::Blocked(BlockOn::Join(me)) {
                st.threads[t].state = TState::Run;
            }
        }
        st.events.push(Event {
            thread: me,
            kind: EvKind::Finish,
            loc: 0,
            a: 0,
            b: 0,
            ord: None,
        });
        let others = Self::runnable_others(&st, me);
        if others.is_empty() {
            let all_done = st.threads.iter().all(|t| t.state == TState::Finished);
            if !all_done {
                self.fail_locked(st, "deadlock: every model thread is blocked".into());
            }
            return;
        }
        let pick = st.path.next_schedule(&others);
        st.current = pick;
        st.threads[pick].chosen = true;
        self.cv.notify_all();
    }

    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.op(me, |st| {
            if st.threads[target].state != TState::Finished {
                return OpOutcome::Block(BlockOn::Join(target));
            }
            st.threads[me].clock.tick(me);
            let tc = st.threads[target].clock.clone();
            st.threads[me].clock.join(&tc);
            st.events.push(Event {
                thread: me,
                kind: EvKind::Join,
                loc: 0,
                a: target as u64,
                b: 0,
                ord: None,
            });
            OpOutcome::Done(())
        })
    }

    pub(crate) fn yield_now(&self, me: usize) {
        self.op(me, |st| {
            st.threads[me].clock.tick(me);
            st.threads[me].yielded = true;
            st.events.push(Event {
                thread: me,
                kind: EvKind::Yield,
                loc: 0,
                a: 0,
                b: 0,
                ord: None,
            });
            OpOutcome::Done(())
        })
    }

    /// Joins every spawned thread (used by the runner after the model
    /// closure returns, so an execution always ends quiescent).
    pub(crate) fn drain(&self) {
        loop {
            let next = {
                let st = self.lock();
                if st.abort {
                    self.abort_unwind(st);
                }
                (1..st.threads.len()).find(|&t| st.threads[t].state != TState::Finished)
            };
            match next {
                Some(t) => self.join_thread(0, t),
                None => return,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-thread context: which execution (if any) this OS thread belongs to.
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub exec: Arc<ExecShared>,
    pub id: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn install_ctx(exec: Arc<ExecShared>, id: usize) {
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        assert!(
            c.is_none(),
            "rtopex-check: nested model executions are not supported"
        );
        *c = Some(Ctx { exec, id });
    });
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// A handle a shim primitive keeps to its registered model location.
#[derive(Clone)]
pub(crate) struct LocRef {
    pub exec: Weak<ExecShared>,
    pub id: usize,
}

impl LocRef {
    /// The live execution this location belongs to, if the calling thread
    /// is one of its model threads.
    pub(crate) fn live(&self) -> Option<(Arc<ExecShared>, usize)> {
        let exec = self.exec.upgrade()?;
        let ctx = current_ctx()?;
        if Arc::ptr_eq(&exec, &ctx.exec) {
            Some((exec, ctx.id))
        } else {
            None
        }
    }
}

/// Registers a location of the given flavour if a model execution is
/// active on this thread.
pub(crate) fn register(flavour: Flavour, init: u64) -> Option<LocRef> {
    let ctx = current_ctx()?;
    let id = match flavour {
        Flavour::Atomic => ctx.exec.register_atomic(ctx.id, init),
        Flavour::Lock => ctx.exec.register_lock(ctx.id),
        Flavour::Data => ctx.exec.register_data(ctx.id),
    };
    Some(LocRef {
        exec: Arc::downgrade(&ctx.exec),
        id,
    })
}

pub(crate) enum Flavour {
    Atomic,
    Lock,
    Data,
}

// ---------------------------------------------------------------------
// Runner: the exploration loop.
// ---------------------------------------------------------------------

/// Exploration statistics returned by a successful check.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions (interleaving × reads-from combinations) explored.
    pub executions: usize,
    /// True when the bounded tree was explored exhaustively; false when
    /// `max_executions` cut the search short.
    pub complete: bool,
}

/// A failed check: the first failing execution's message and trace.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong (assertion message, race report, deadlock…).
    pub message: String,
    /// The failing execution's full event trace, one line per operation.
    pub trace: String,
    /// Executions explored before the failure (inclusive).
    pub executions: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed after {} execution(s): {}\ninterleaving trace:\n{}",
            self.executions, self.message, self.trace
        )
    }
}

/// Silences the default panic hook for model threads: their panics are
/// captured, attributed, and reported with a full interleaving trace, so
/// the raw hook output (fired for *every* failing execution during
/// exploration) is pure noise. Non-model threads keep the normal hook.
fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if current_ctx().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

pub(crate) fn explore<F: Fn() + Sync>(cfg: &Config, f: F) -> Result<Report, Failure> {
    install_quiet_hook();
    let mut path = Path::default();
    let mut executions = 0usize;
    loop {
        let shared = Arc::new(ExecShared::new(cfg.clone(), std::mem::take(&mut path)));
        install_ctx(Arc::clone(&shared), 0);
        let body = panic::catch_unwind(AssertUnwindSafe(|| {
            f();
            shared.drain();
        }));
        clear_ctx();
        if let Err(e) = body {
            if e.downcast_ref::<Abort>().is_none() {
                shared.record_panic(panic_payload_msg(e));
            }
        }
        let mut st = shared.lock();
        executions += 1;
        if let Some(msg) = st.failure.take() {
            return Err(Failure {
                message: msg,
                trace: fmt_trace(&st.events),
                executions,
            });
        }
        path = std::mem::take(&mut st.path);
        drop(st);
        if !path.advance() {
            return Ok(Report {
                executions,
                complete: true,
            });
        }
        if executions >= cfg.max_executions {
            return Ok(Report {
                executions,
                complete: false,
            });
        }
    }
}

pub(crate) fn panic_payload_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}
