//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Inside a model execution, spawned closures become model threads: real
//! OS threads gated by the engine so only the scheduled one runs, with
//! spawn/join carrying the usual happens-before edges. Outside a model
//! these delegate straight to `std::thread`.

use crate::engine::{self, Abort, ExecShared};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<ExecShared>,
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned (model or real) thread.
pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    /// Joins the thread and returns its result. In the model this is a
    /// visible blocking operation; a panic in the joined thread fails the
    /// whole execution rather than surfacing here.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Imp::Std(h) => h.join(),
            Imp::Model { exec, tid, result } => {
                let me = engine::current_ctx()
                    .expect("model JoinHandle joined from outside its execution")
                    .id;
                exec.join_thread(me, tid);
                let v = result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("joined model thread left no result");
                Ok(v)
            }
        }
    }
}

/// Spawns a thread. Inside a model execution the closure becomes a model
/// thread scheduled by the engine; otherwise this is `std::thread::spawn`.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some(ctx) = engine::current_ctx() else {
        return JoinHandle(Imp::Std(std::thread::spawn(f)));
    };
    let exec = ctx.exec.clone();
    let tid = exec.spawn_thread(ctx.id);
    let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let child_exec = Arc::clone(&exec);
    std::thread::spawn(move || {
        engine::install_ctx(Arc::clone(&child_exec), tid);
        // Park until the scheduler first picks this thread, then run the
        // closure; its panics (assertion failures) fail the execution.
        let run = panic::catch_unwind(AssertUnwindSafe(|| {
            child_exec.gate(tid);
            let v = f();
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            child_exec.finish_thread(tid);
        }));
        if let Err(e) = run {
            if e.downcast_ref::<Abort>().is_none() {
                child_exec.record_panic(engine::panic_payload_msg(e));
            }
        }
        engine::clear_ctx();
    });
    JoinHandle(Imp::Model { exec, tid, result })
}

/// Yields the current thread. Inside the model this deprioritizes the
/// caller until another thread has made progress (breaking spin livelock
/// in bounded retry loops); outside it is `std::thread::yield_now`.
pub fn yield_now() {
    if let Some(ctx) = engine::current_ctx() {
        let exec = ctx.exec.clone();
        exec.yield_now(ctx.id);
        return;
    }
    std::thread::yield_now();
}
