//! Exhaustive adversarial-schedule exploration.
//!
//! The concurrency engine in this crate explores thread interleavings;
//! this module explores *protocol* adversaries: each call to
//! [`Choices::choose`] is a branch point (deliver, drop, duplicate,
//! defer, resync here or there…), and [`explore`] replays the scenario
//! closure once per combination, depth-first, until the bounded choice
//! tree is exhausted.
//!
//! The mechanism is the same replay-DFS the engine uses for
//! interleavings: a stack of `(chosen, arity)` pairs is replayed as a
//! prefix, the first unexplored index past the prefix extends it, and
//! after each run the deepest non-exhausted choice is incremented and
//! everything below it discarded. The scenario closure must be
//! deterministic given its choices — the explorer asserts the arity of
//! every replayed branch to catch accidental nondeterminism.

/// The choice oracle handed to a scenario closure.
pub struct Choices {
    stack: Vec<(usize, usize)>,
    cursor: usize,
}

impl Choices {
    /// Returns a value in `0..arity` for this branch point. Within one
    /// run, successive calls walk the current schedule; across runs,
    /// [`explore`] enumerates every combination.
    pub fn choose(&mut self, arity: usize) -> usize {
        assert!(arity >= 1, "a choice needs at least one alternative");
        if let Some(&(chosen, recorded)) = self.stack.get(self.cursor) {
            assert_eq!(
                recorded, arity,
                "scenario is nondeterministic: branch {} had arity {recorded}, now {arity}",
                self.cursor
            );
            self.cursor += 1;
            chosen
        } else {
            self.stack.push((0, arity));
            self.cursor += 1;
            0
        }
    }

    /// Picks one element of `options` (a labelled [`Self::choose`]).
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.choose(options.len())]
    }
}

/// Outcome of an [`explore`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Schedules actually run.
    pub schedules: u64,
    /// True when the whole choice tree was exhausted (false means the
    /// `limit` stopped the search early — widen it or shrink the
    /// scenario).
    pub complete: bool,
}

/// Runs `scenario` once per schedule in its choice tree, depth-first,
/// stopping after `limit` schedules. A scenario that makes no choices
/// runs exactly once.
pub fn explore<F: FnMut(&mut Choices)>(limit: u64, mut scenario: F) -> Exploration {
    let mut ch = Choices {
        stack: Vec::new(),
        cursor: 0,
    };
    let mut schedules = 0u64;
    loop {
        ch.cursor = 0;
        scenario(&mut ch);
        // A run may legitimately consume fewer choices than recorded if
        // an earlier increment changed control flow — but only below
        // the cursor; drop the dead tail before advancing.
        ch.stack.truncate(ch.cursor);
        schedules += 1;
        if schedules >= limit {
            return Exploration {
                schedules,
                complete: false,
            };
        }
        // Advance: bump the deepest non-exhausted branch.
        loop {
            match ch.stack.last_mut() {
                None => {
                    return Exploration {
                        schedules,
                        complete: true,
                    }
                }
                Some((chosen, arity)) => {
                    *chosen += 1;
                    if chosen < arity {
                        break;
                    }
                    ch.stack.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_the_full_product() {
        let mut seen = Vec::new();
        let r = explore(100, |ch| {
            let a = ch.choose(3);
            let b = ch.choose(2);
            seen.push((a, b));
        });
        assert!(r.complete);
        assert_eq!(r.schedules, 6);
        assert_eq!(seen.len(), 6);
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "every (a, b) pair exactly once");
    }

    #[test]
    fn dependent_branching_is_explored() {
        // Arity of later choices may depend on earlier values.
        let mut runs = 0;
        let r = explore(100, |ch| {
            runs += 1;
            if ch.choose(2) == 1 {
                ch.choose(3);
            }
        });
        assert!(r.complete);
        assert_eq!(r.schedules, 1 + 3);
        assert_eq!(runs, 4);
    }

    #[test]
    fn choiceless_scenario_runs_once() {
        let r = explore(10, |_| {});
        assert_eq!(
            r,
            Exploration {
                schedules: 1,
                complete: true
            }
        );
    }

    #[test]
    fn limit_stops_the_search() {
        let r = explore(5, |ch| {
            ch.choose(4);
            ch.choose(4);
        });
        assert_eq!(r.schedules, 5);
        assert!(!r.complete);
    }

    #[test]
    #[should_panic(expected = "nondeterministic")]
    fn nondeterministic_arity_is_caught() {
        let mut flip = 0;
        explore(10, |ch| {
            flip += 1;
            ch.choose(2);
            ch.choose(if flip == 2 { 3 } else { 2 });
        });
    }

    #[test]
    fn pick_returns_each_option() {
        let mut got = Vec::new();
        let r = explore(10, |ch| {
            got.push(*ch.pick(&[10, 20, 30]));
        });
        assert!(r.complete);
        got.sort();
        assert_eq!(got, vec![10, 20, 30]);
    }
}
