//! Fixture self-tests: every analyzer pass must catch the one violation
//! its fixture seeds, and the real workspace must stay clean.
//!
//! The fixture sources under `tests/fixtures/` are never compiled — the
//! analyzer is lexical, so the `.rs` files are plain inputs. The bench
//! JSONs under `fixtures/unsched/` are the tracked baselines doctored
//! just enough to trip one gate each.

use std::path::{Path, PathBuf};

use rtopex_analyze::purity::{class, Seed};
use rtopex_analyze::{graph, locks, purity, sched};

fn fixture_ws(name: &str) -> graph::Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    graph::parse_roots(&root, &[root.join(name)])
}

#[test]
fn transitive_alloc_fixture_is_caught() {
    let ws = fixture_ws("transitive_alloc");
    let seeds = [Seed {
        type_qual: Some("Rx"),
        name: "hot_decode",
        deny: class::ALL,
        why: "fixture seed",
    }];
    let v = purity::run_with_seeds(&ws, &seeds);
    let hit = v
        .iter()
        .find(|v| v.class == "alloc")
        .unwrap_or_else(|| panic!("no alloc finding: {v:#?}"));
    assert!(hit.file.ends_with("transitive_alloc/src/lib.rs"), "{hit}");
    // The witness chain must name both intermediate hops — this is
    // exactly what the retired lexical lint could not see.
    assert!(hit.msg.contains("stage_one"), "{hit}");
    assert!(hit.msg.contains("stage_two"), "{hit}");
}

#[test]
fn lock_cycle_fixture_is_caught() {
    let ws = fixture_ws("lock_cycle");
    let v = locks::run(&ws);
    assert!(
        v.iter()
            .any(|v| v.class == "lock-cycle" && v.file.ends_with("lock_cycle/src/lib.rs")),
        "{v:#?}"
    );
}

#[test]
fn guard_held_lock_fixture_is_caught() {
    let ws = fixture_ws("guard_held_lock");
    let v = locks::run(&ws);
    assert!(
        v.iter().any(|v| v.class == "guard-held-lock"
            && v.file.ends_with("guard_held_lock/src/lib.rs")),
        "{v:#?}"
    );
}

const FIXTURE_KERNELS: &str = include_str!("fixtures/unsched/BENCH_kernels.json");
const FIXTURE_NODE: &str = include_str!("fixtures/unsched/BENCH_node.json");
const REAL_KERNELS: &str = include_str!("../../../BENCH_kernels.json");
const REAL_NODE: &str = include_str!("../../../BENCH_node.json");

#[test]
fn unschedulable_fixture_is_caught() {
    // Kernel costs x100: every shipped config's T-hat blows through its
    // Eq. 3 budget, and the audit must say so for each shipped mode.
    let a = sched::audit(FIXTURE_KERNELS, REAL_NODE, &sched::shipped_configs());
    assert!(
        a.violations.iter().any(|v| v.class == "unschedulable"),
        "{:#?}",
        a.violations
    );
}

#[test]
fn capacity_order_fixture_is_caught() {
    // Doctored miss arrays: steal sustains 1 cell, mutex 3 — the
    // paper's steal >= mutex >= global ordering is violated and the
    // gate must fire on that exact class (the fixture keeps the
    // recorded counts consistent so no capacity-drift noise appears).
    let a = sched::audit(REAL_KERNELS, FIXTURE_NODE, &sched::shipped_configs());
    assert!(
        a.violations.iter().any(|v| v.class == "capacity-order"),
        "{:#?}",
        a.violations
    );
    assert!(
        !a.violations.iter().any(|v| v.class == "capacity-drift"),
        "{:#?}",
        a.violations
    );
}

/// The regression that keeps every suppression honest: the shipped
/// workspace must analyze clean, exactly as the CI gate runs it.
#[test]
fn workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let analysis = rtopex_analyze::analyze_workspace(&root, false);
    assert!(
        analysis.violations.is_empty(),
        "workspace no longer analyzes clean:\n{}",
        analysis
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(analysis.sched_report.contains("capacity_ordering"));
}
