//! Fixture self-tests: every analyzer pass must catch the one violation
//! its fixture seeds, and the real workspace must stay clean.
//!
//! The fixture sources under `tests/fixtures/` are never compiled — the
//! analyzer is lexical, so the `.rs` files are plain inputs. The bench
//! JSONs under `fixtures/unsched/` are the tracked baselines doctored
//! just enough to trip one gate each.

use std::path::{Path, PathBuf};

use rtopex_analyze::purity::{class, Seed};
use rtopex_analyze::taint::{self, tclass};
use rtopex_analyze::{graph, locks, purity, sched};

fn fixture_ws(name: &str) -> graph::Workspace {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    graph::parse_roots(&root, &[root.join(name)])
}

#[test]
fn transitive_alloc_fixture_is_caught() {
    let ws = fixture_ws("transitive_alloc");
    let seeds = [Seed {
        type_qual: Some("Rx"),
        name: "hot_decode",
        deny: class::ALL,
        why: "fixture seed",
    }];
    let v = purity::run_with_seeds(&ws, &seeds);
    let hit = v
        .iter()
        .find(|v| v.class == "alloc")
        .unwrap_or_else(|| panic!("no alloc finding: {v:#?}"));
    assert!(hit.file.ends_with("transitive_alloc/src/lib.rs"), "{hit}");
    // The witness chain must name both intermediate hops — this is
    // exactly what the retired lexical lint could not see.
    assert!(hit.msg.contains("stage_one"), "{hit}");
    assert!(hit.msg.contains("stage_two"), "{hit}");
}

#[test]
fn lock_cycle_fixture_is_caught() {
    let ws = fixture_ws("lock_cycle");
    let v = locks::run(&ws);
    assert!(
        v.iter()
            .any(|v| v.class == "lock-cycle" && v.file.ends_with("lock_cycle/src/lib.rs")),
        "{v:#?}"
    );
}

#[test]
fn guard_held_lock_fixture_is_caught() {
    let ws = fixture_ws("guard_held_lock");
    let v = locks::run(&ws);
    assert!(
        v.iter().any(|v| v.class == "guard-held-lock"
            && v.file.ends_with("guard_held_lock/src/lib.rs")),
        "{v:#?}"
    );
}

#[test]
fn sim_hot_alloc_fixture_is_caught() {
    // The shipped `on_event` seed mask: alloc/lock/clock denied, panics
    // allowed. The fixture's engine asserts (legal) and then buffers
    // per-event state on the heap (illegal) one call down.
    let ws = fixture_ws("sim_hot_alloc");
    let seeds = [Seed {
        type_qual: None,
        name: "on_event",
        deny: class::ALLOC | class::LOCK | class::CLOCK,
        why: "fixture seed",
    }];
    let v = purity::run_with_seeds(&ws, &seeds);
    let hit = v
        .iter()
        .find(|v| v.class == "alloc")
        .unwrap_or_else(|| panic!("no alloc finding: {v:#?}"));
    assert!(hit.file.ends_with("sim_hot_alloc/src/lib.rs"), "{hit}");
    assert!(hit.msg.contains("buffer_event"), "{hit}");
    // The assert! inside on_event stays legal under this mask.
    assert!(!v.iter().any(|v| v.class == "panic"), "{v:#?}");
}

#[test]
fn taint_fixture_seeds_every_class() {
    // One fixture, five sins: every taint finding class must fire on
    // the seeded decoder, proving none of the detectors is vacuous.
    let ws = fixture_ws("taint_decode");
    let sources = [taint::Source {
        type_qual: Some("Decoder"),
        name: "decode_frame",
        deny: tclass::ALL,
        why: "fixture source",
    }];
    let v = taint::run_with(&ws, &sources, &[]);
    for class in [
        "taint-panic",
        "taint-index",
        "taint-arith",
        "taint-alloc",
        "taint-loop",
    ] {
        assert!(
            v.iter()
                .any(|f| f.class == class && f.file.ends_with("taint_decode/src/lib.rs")),
            "no {class} finding: {v:#?}"
        );
    }
    // The unwrap sits one call below the source; the finding must carry
    // the witness hop, not just the source name.
    let p = v.iter().find(|f| f.class == "taint-panic").unwrap();
    assert!(p.msg.contains("finish"), "{p}");
}

const FIXTURE_KERNELS: &str = include_str!("fixtures/unsched/BENCH_kernels.json");
const FIXTURE_NODE: &str = include_str!("fixtures/unsched/BENCH_node.json");
const FIXTURE_SIM: &str = include_str!("fixtures/unsched/BENCH_sim.json");
const REAL_KERNELS: &str = include_str!("../../../BENCH_kernels.json");
const REAL_NODE: &str = include_str!("../../../BENCH_node.json");

#[test]
fn unschedulable_fixture_is_caught() {
    // Kernel costs x100: every shipped config's T-hat blows through its
    // Eq. 3 budget, and the audit must say so for each shipped mode.
    let a = sched::audit(FIXTURE_KERNELS, REAL_NODE, &sched::shipped_configs());
    assert!(
        a.violations.iter().any(|v| v.class == "unschedulable"),
        "{:#?}",
        a.violations
    );
}

#[test]
fn capacity_order_fixture_is_caught() {
    // Doctored miss arrays: steal sustains 1 cell, mutex 3 — the
    // paper's steal >= mutex >= global ordering is violated and the
    // gate must fire on that exact class (the fixture keeps the
    // recorded counts consistent so no capacity-drift noise appears).
    let a = sched::audit(REAL_KERNELS, FIXTURE_NODE, &sched::shipped_configs());
    assert!(
        a.violations.iter().any(|v| v.class == "capacity-order"),
        "{:#?}",
        a.violations
    );
    assert!(
        !a.violations.iter().any(|v| v.class == "capacity-drift"),
        "{:#?}",
        a.violations
    );
}

#[test]
fn fleet_gate_fixture_is_caught() {
    // Doctored sim baseline: the rtopex-steal pooling curve collapsed
    // to 0.25 cells/core (2 cells per 8-core host) and the engine
    // speedup dropped to 3.1x. The gate must flag both shipped steal
    // deployments and the throughput floor — and nothing else (the
    // fixture keeps every fit consistent with its sweep arrays, so no
    // drift noise appears).
    let a = sched::audit_sim(FIXTURE_SIM, &sched::shipped_fleet_configs());
    let fleet: Vec<_> = a
        .violations
        .iter()
        .filter(|v| v.class == "fleet-unschedulable")
        .collect();
    assert_eq!(fleet.len(), 2, "{:#?}", a.violations);
    assert!(fleet.iter().any(|v| v.msg.contains("edge-4")));
    assert!(fleet.iter().any(|v| v.msg.contains("metro-16")));
    assert!(
        a.violations
            .iter()
            .any(|v| v.class == "sim-throughput-regression"),
        "{:#?}",
        a.violations
    );
    assert!(
        !a.violations
            .iter()
            .any(|v| v.class == "fleet-drift" || v.class == "wheel-heap-divergence"),
        "{:#?}",
        a.violations
    );
}

/// The regression that keeps every suppression honest: the shipped
/// workspace must analyze clean, exactly as the CI gate runs it.
#[test]
fn workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let analysis = rtopex_analyze::analyze_workspace(&root, false);
    assert!(
        analysis.violations.is_empty(),
        "workspace no longer analyzes clean:\n{}",
        analysis
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(analysis.sched_report.contains("capacity_ordering"));
    // The composed report carries both halves: the node-level Eq. 3
    // audit and the fleet-level pooling gate.
    assert!(analysis.sched_report.contains("\"eq3\""));
    assert!(analysis.sched_report.contains("deployments"));
}
