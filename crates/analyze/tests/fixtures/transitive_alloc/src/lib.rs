//! Fixture: a declared hot seed reaching an allocation two calls down.
//!
//! Never compiled — `tests/fixtures.rs` feeds this file to the analyzer
//! and asserts the `purity/alloc` finding with the full witness chain
//! `hot_decode -> stage_one -> stage_two`. The PR 4 lexical lint could
//! not see this: the allocation is in a free fn with no `hot` marker of
//! its own.

pub struct Rx;

impl Rx {
    pub fn hot_decode(&self) {
        stage_one();
    }
}

fn stage_one() {
    stage_two();
}

fn stage_two() {
    let mut scratch = Vec::with_capacity(16);
    scratch.push(1u8);
    drop(scratch);
}
