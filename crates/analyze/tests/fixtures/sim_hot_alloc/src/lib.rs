//! Fixture: a simulator-style `on_event` hot loop reaching a heap
//! allocation one call down.
//!
//! Never compiled — `tests/fixtures.rs` feeds this file to the analyzer
//! with the same `on_event` seed mask the shipped seed table uses
//! (deny alloc/lock/clock, panics allowed) and asserts the
//! `purity/alloc` finding, proving the simulator hot-loop seed is not
//! vacuous: an engine that started buffering per-event state on the
//! heap would be caught.

pub struct Engine {
    pending: usize,
}

impl Engine {
    fn on_event(&mut self, t: u64) {
        // A panic is within the seed's contract…
        assert!(t > 0);
        self.buffer_event(t);
    }

    fn buffer_event(&mut self, t: u64) {
        // …but this per-event allocation is not.
        let staged = vec![t; 4];
        self.pending += staged.len();
    }
}
