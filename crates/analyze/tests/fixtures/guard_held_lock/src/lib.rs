//! Fixture: a mutex taken while a `SlotBoard` stage guard is held,
//! without the mandatory justification comment.
//!
//! Never compiled — `tests/fixtures.rs` feeds this file to the lock
//! pass and asserts the `locks/guard-held-lock` finding.

use std::sync::Mutex;

pub fn steal_under_guard(board: &Board, slots: &Mutex<u32>, ep: u64) {
    let Some(stage) = board.enter(ep) else { return };
    let s = slots.lock().unwrap();
    drop(s);
    drop(stage);
}

pub struct Board;

impl Board {
    pub fn enter(&self, _ep: u64) -> Option<u32> {
        Some(0)
    }
}
