//! Fixture: an AB/BA mutex acquisition cycle across two fns.
//!
//! Never compiled — `tests/fixtures.rs` feeds this file to the lock
//! pass and asserts the `locks/lock-cycle` finding.

use std::sync::Mutex;

pub struct Pair {
    pub fft: Mutex<u32>,
    pub dec: Mutex<u32>,
}

pub fn forward(p: &Pair) {
    let g1 = p.fft.lock().unwrap();
    let g2 = p.dec.lock().unwrap();
    drop(g2);
    drop(g1);
}

pub fn backward(p: &Pair) {
    let g2 = p.dec.lock().unwrap();
    let g1 = p.fft.lock().unwrap();
    drop(g1);
    drop(g2);
}
