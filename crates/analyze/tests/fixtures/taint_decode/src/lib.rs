//! Taint fixture: a frame decoder that commits every sin the taint
//! pass must catch — one violation per finding class, with the panic
//! a call-hop away from the source so the witness chain is exercised.
//!
//! Never compiled; the analyzer is lexical and reads this as input.

pub struct Decoder {
    pub frames: usize,
}

impl Decoder {
    pub fn decode_frame(&mut self, buf: &[u8]) -> usize {
        let kind = buf[0]; // taint-index: unchecked index on peer bytes
        let len = buf.len() + 4; // taint-arith: unchecked add on a length
        let mut out = Vec::new(); // taint-alloc: allocation on the rx path
        while kind != 0 {
            // taint-loop: input-driven loop header
            out.push(kind);
            break;
        }
        finish(buf, len)
    }
}

fn finish(buf: &[u8], len: usize) -> usize {
    // taint-panic, one hop below the source: the witness chain must
    // name `finish`.
    buf.get(len).copied().unwrap() as usize
}
