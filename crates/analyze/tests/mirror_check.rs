//! Pins the analyzer's mirrored tables to the shipped constructors.
//!
//! `rtopex-analyze` is dependency-free, so `sched.rs` re-derives the
//! PHY numerology, TBS table, segmentation rule, and shipped scheduler
//! configs instead of importing them. These tests are the only thing
//! that stops the mirrors from drifting: every mirrored value is
//! recomputed here through the real crates (dev-dependencies only) and
//! compared exactly.

use std::time::Duration;

use rtopex_analyze::sched::{self, Bw, Mode};
use rtopex_experiments::cluster_scale;
use rtopex_experiments::Opts;
use rtopex_phy::mcs::Mcs;
use rtopex_phy::params::Bandwidth;
use rtopex_phy::segmentation::Segmentation;
use rtopex_runtime::{ClusterConfig, NodeConfig, SchedulerMode};

const PAIRS: [(Bw, Bandwidth); 6] = [
    (Bw::Mhz1_4, Bandwidth::Mhz1_4),
    (Bw::Mhz3, Bandwidth::Mhz3),
    (Bw::Mhz5, Bandwidth::Mhz5),
    (Bw::Mhz10, Bandwidth::Mhz10),
    (Bw::Mhz15, Bandwidth::Mhz15),
    (Bw::Mhz20, Bandwidth::Mhz20),
];

#[test]
fn bandwidth_mirror_matches_phy_numerology() {
    for (bw, real) in PAIRS {
        assert_eq!(bw.fft_size(), real.fft_size(), "{}", bw.label());
        assert_eq!(bw.num_prbs(), real.num_prbs(), "{}", bw.label());
        assert_eq!(
            bw.num_subcarriers(),
            real.num_subcarriers(),
            "{}",
            bw.label()
        );
    }
    assert_eq!(
        sched::SYMBOLS_PER_SUBFRAME,
        rtopex_phy::params::SYMBOLS_PER_SUBFRAME
    );
}

#[test]
fn qm_and_tbs_mirrors_match_mcs_table() {
    for mcs in 0..=28u8 {
        let real = Mcs::new(mcs).expect("valid MCS index");
        assert_eq!(sched::qm(mcs), real.modulation_order(), "qm at MCS {mcs}");
        for (bw, _) in PAIRS {
            assert_eq!(
                sched::tbs_bits(mcs, bw.num_prbs()),
                real.transport_block_bits(bw.num_prbs()),
                "TBS at MCS {mcs}, {}",
                bw.label()
            );
        }
    }
}

#[test]
fn block_sizes_mirror_matches_segmentation() {
    for mcs in 0..=28u8 {
        let real = Mcs::new(mcs).expect("valid MCS index");
        for (bw, _) in PAIRS {
            let b = real.transport_block_bits(bw.num_prbs()) + sched::TB_CRC_LEN;
            let seg = Segmentation::compute(b).expect("segmentation");
            assert_eq!(
                sched::block_sizes(b),
                seg.block_sizes(),
                "blocks at MCS {mcs}, {}",
                bw.label()
            );
        }
    }
}

fn mirror(name: &str) -> sched::MirrorConfig {
    sched::shipped_configs()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no mirrored config `{name}`"))
}

fn assert_cluster_mirror(m: &sched::MirrorConfig, real: &ClusterConfig) {
    assert_eq!(m.bw.fft_size(), real.bandwidth.fft_size(), "{}", m.name);
    assert_eq!(m.cells, real.num_cells, "{}", m.name);
    assert_eq!(
        Duration::from_secs_f64(m.period_us / 1e6),
        real.period,
        "{}",
        m.name
    );
    assert_eq!(
        Duration::from_secs_f64(m.rtt_half_us / 1e6),
        real.rtt_half,
        "{}",
        m.name
    );
    assert_eq!(m.mcs_pool, real.mcs_pool.as_slice(), "{}", m.name);
    assert_eq!(m.delta_us, real.delta_us, "{}", m.name);
    // The Eq. 3 budget must agree with the shipped arithmetic too.
    assert_eq!(
        Duration::from_secs_f64(m.budget_us() / 1e6),
        real.budget(),
        "{}",
        m.name
    );
}

#[test]
fn cluster_demo_mirror_matches_shipped_constructor() {
    let m = mirror("cluster-demo");
    assert_cluster_mirror(&m, &ClusterConfig::demo());
    assert_eq!(m.modes, &[Mode::RtOpexSteal]);
}

#[test]
fn node_demo_mirror_matches_shipped_constructor() {
    let m = mirror("node-demo");
    let real = NodeConfig::demo();
    assert_eq!(m.bw.fft_size(), real.bandwidth.fft_size());
    assert_eq!(m.cells, real.num_bs);
    assert_eq!(Duration::from_secs_f64(m.period_us / 1e6), real.period);
    assert_eq!(Duration::from_secs_f64(m.rtt_half_us / 1e6), real.rtt_half);
    assert_eq!(m.mcs_pool, real.mcs_pool.as_slice());
    assert_eq!(m.delta_us, real.delta_us);
}

#[test]
fn fleet_mirror_matches_shipped_pooling_configs() {
    use rtopex_experiments::pooling;

    let mirrors = sched::shipped_fleet_configs();
    assert_eq!(mirrors.len(), pooling::SHIPPED_FLEET_CONFIGS.len());
    for (m, real) in mirrors.iter().zip(pooling::SHIPPED_FLEET_CONFIGS.iter()) {
        assert_eq!(m.name, real.name);
        assert_eq!(m.hosts, real.hosts, "{}", m.name);
        assert_eq!(m.mode, real.mode, "{}", m.name);
        assert_eq!(m.cells_per_host, real.cells_per_host, "{}", m.name);
        // Every shipped mode must be one the pooling sweep measures,
        // or the analyzer's fleet gate could never clear it.
        assert!(
            pooling::modes().iter().any(|(name, _)| *name == m.mode),
            "{}: mode `{}` not swept",
            m.name,
            m.mode
        );
    }
    assert_eq!(sched::FLEET_CORE_BUDGET, pooling::CORE_BUDGET);
    assert_eq!(sched::FLEET_MISS_BUDGET, pooling::MISS_BUDGET);
}

#[test]
fn fleet_fit_mirror_matches_shipped_regression() {
    use rtopex_experiments::pooling;

    // A deliberately non-flat curve: the mirrored least-squares in
    // x = 1/H must reproduce the shipped fit to the last bit-of-float.
    let hosts = [1usize, 2, 4, 8, 16, 32, 64];
    let y = [0.750, 0.875, 0.875, 1.000, 0.875, 1.000, 1.000];
    let real = pooling::fit_inverse(&hosts, &y);
    let hosts_f: Vec<f64> = hosts.iter().map(|&h| h as f64).collect();
    let (a, b) = sched::fit_inverse(&hosts_f, &y);
    assert_eq!(a, real.a);
    assert_eq!(b, real.b);
    // And the capacity arithmetic (floor of cells/core × core budget)
    // must agree at every swept fleet size.
    for &h in &hosts {
        assert_eq!(
            sched::fleet_capacity((a, b), h),
            real.cells_per_host(h),
            "capacity at {h} hosts"
        );
    }
}

#[test]
fn experiments_sweep_mirror_matches_shipped_constructor() {
    let m = mirror("experiments-cluster-sweep");
    let real = cluster_scale::cluster_cfg(&Opts::default(), SchedulerMode::RtOpexSteal, m.cells);
    assert_cluster_mirror(&m, &real);
    assert_eq!(
        m.modes,
        &[
            Mode::Partitioned,
            Mode::Global,
            Mode::RtOpexMutex,
            Mode::RtOpexSteal
        ]
    );
}
