//! Item parsing and conservative call-graph construction.
//!
//! A brace-depth walk over the masked lines extracts every `fn` item
//! (with its impl-block type and whether it takes `self`), then a second
//! walk over each body extracts call sites. Resolution is *name-based
//! and conservative*:
//!
//! * `Type::name(..)` resolves to fns named `name` inside `impl Type`
//!   blocks (`Self::` maps to the enclosing impl's type);
//! * `recv.name(..)` resolves to **every** workspace method named `name`
//!   that takes `self` — we have no type inference, so all candidates
//!   are edges;
//! * bare `name(..)` (and `module::name(..)`) resolves to free fns named
//!   `name`.
//!
//! Callees that resolve to nothing (std, vendored shims) fall out of the
//! graph; their effects are still caught because the purity pass scans
//! the *call-site line* against the effect deny-lists. Over-approximated
//! edges are the price of soundness — per-edge
//! `// analyze: allow(call:<name>): reason` suppressions (consumed by
//! the purity pass) prune the ones a human has argued away.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Line};

/// Index of a [`FnItem`] in [`Workspace::fns`].
pub type FnId = usize;

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// Masked lines (1-based `no`).
    pub lines: Vec<Line>,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// The fn's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// Whether the parameter list contains `self`.
    pub has_self: bool,
    /// Inside a `#[cfg(test)]` item or carrying `#[test]`.
    pub is_test: bool,
    /// Body line range (inclusive, 1-based); `None` for bodyless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Type::name`-style display label.
    pub fn label(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call site was written, which drives resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` or `module::name(..)` — resolves to free fns.
    Free,
    /// `recv.name(..)` — resolves to any method taking `self`.
    Method,
    /// `Type::name(..)` — resolves within `impl Type`.
    Qualified(String),
}

/// One call site inside a fn body.
#[derive(Debug)]
pub struct CallSite {
    /// The calling fn.
    pub caller: FnId,
    /// 1-based line of the call.
    pub line: usize,
    /// Callee name as written.
    pub name: String,
    /// Syntactic form.
    pub kind: CallKind,
    /// Workspace fns this call may reach (empty = external/std).
    pub resolved: Vec<FnId>,
}

/// The parsed workspace: files, fn items, call sites, adjacency.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnItem>,
    pub calls: Vec<CallSite>,
    /// Call-site indices grouped by caller.
    pub calls_by_fn: Vec<Vec<usize>>,
}

/// Rust keywords (and primitives) that look like `name(` call sites but
/// are not.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "as", "move",
    "unsafe", "where", "impl", "use", "pub", "mut", "ref", "break", "continue", "dyn", "crate",
    "super", "self", "Self", "true", "false", "const", "static", "type", "trait", "mod", "enum",
    "struct", "union", "extern", "box", "await", "async", "yield",
];

/// Directories (workspace-relative) swept by [`parse_workspace`] —
/// the same shipped-code roots the lint pass covers, plus `examples/`
/// so demo configs stay inside the graph.
pub const ANALYZE_ROOTS: &[&str] = &[
    "src",
    "examples",
    "crates/core/src",
    "crates/lte-phy/src",
    "crates/runtime/src",
    "crates/transport/src",
    "crates/transport-net/src",
    "crates/distrib/src",
    "crates/workload/src",
    "crates/model/src",
    "crates/sim/src",
    "crates/experiments/src",
    "crates/bench/src",
];

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parses the standard shipped-code roots below `workspace_root`.
pub fn parse_workspace(workspace_root: &Path) -> Workspace {
    let roots: Vec<PathBuf> = ANALYZE_ROOTS
        .iter()
        .map(|r| workspace_root.join(r))
        .collect();
    parse_roots(workspace_root, &roots)
}

/// Parses an explicit list of root directories (used by fixture tests).
pub fn parse_roots(workspace_root: &Path, roots: &[PathBuf]) -> Workspace {
    let mut ws = Workspace::default();
    let mut paths = Vec::new();
    for root in roots {
        rs_files(root, &mut paths);
    }
    for path in paths {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        parse_file(&mut ws, rel, &src);
    }
    resolve_calls(&mut ws);
    ws
}

/// Parses one file from an in-memory string (used by unit tests).
pub fn parse_source(ws: &mut Workspace, path: &str, src: &str) {
    parse_file(ws, path.to_string(), src);
}

/// Finishes construction after all files are parsed.
/// Method names that collide with the std prelude's ubiquitous
/// combinators (`Iterator::map`, `Option::take`, …). A `.name(` call
/// with one of these names is overwhelmingly a std call, and resolving
/// it to a same-named workspace method would wire an edge from every
/// iterator chain into that method (e.g. `opt.map(..)` →
/// `Modulation::map`). These stay unresolved; their call-site lines are
/// still effect-scanned, and *qualified* calls (`Modulation::map(..)`)
/// still resolve. Trade-off documented in DESIGN.md §8.
const STD_COMBINATOR_METHODS: &[&str] = &[
    "map", "and_then", "or_else", "filter", "fold", "for_each", "zip", "chain", "rev", "take",
    "skip", "find", "position", "sum", "count", "last", "next", "clone", "cmp", "eq", "fmt", "len",
    "is_empty", "iter", "get",
];

pub fn resolve_calls(ws: &mut Workspace) {
    // Name → candidate fns, split by form.
    let mut free: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut methods: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut assoc: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        match (&f.impl_type, f.has_self) {
            (None, _) => free.entry(&f.name).or_default().push(id),
            (Some(t), with_self) => {
                assoc.entry((t.as_str(), &f.name)).or_default().push(id);
                if with_self && !STD_COMBINATOR_METHODS.contains(&f.name.as_str()) {
                    methods.entry(&f.name).or_default().push(id);
                }
            }
        }
    }
    for call in &mut ws.calls {
        call.resolved = match &call.kind {
            CallKind::Free => free.get(call.name.as_str()).cloned().unwrap_or_default(),
            CallKind::Method => methods.get(call.name.as_str()).cloned().unwrap_or_default(),
            CallKind::Qualified(t) => assoc
                .get(&(t.as_str(), call.name.as_str()))
                .cloned()
                .unwrap_or_default(),
        };
    }
    ws.calls_by_fn = vec![Vec::new(); ws.fns.len()];
    for (i, call) in ws.calls.iter().enumerate() {
        ws.calls_by_fn[call.caller].push(i);
    }
}

/// Parser context-stack entry: what opened the brace at `depth`.
#[derive(Debug, Clone)]
enum Scope {
    /// `impl Type` / `trait Type` block.
    Impl { type_name: String, depth: i32 },
    /// A fn body (indexes [`Workspace::fns`]).
    Fn { id: FnId, depth: i32, is_test: bool },
    /// A `#[cfg(test)]` mod (or any mod under one).
    TestMod { depth: i32 },
}

fn parse_file(ws: &mut Workspace, rel: String, src: &str) {
    let lines = lexer::mask(src);
    let file_idx = ws.files.len();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: i32 = 0;
    // Pending attribute state: did a `#[cfg(test)]` / `#[test]` attribute
    // immediately precede the current item?
    let mut pending_test_attr = false;
    // Multi-line signature accumulation: a `fn` whose `{` has not been
    // seen yet.
    let mut open_sig: Option<(FnId, String)> = None;

    for line in &lines {
        let code = line.code.trim().to_string();
        let code = code.as_str();

        let in_test_scope = pending_test_attr
            || scopes.iter().any(|s| {
                matches!(s, Scope::TestMod { .. }) || matches!(s, Scope::Fn { is_test: true, .. })
            });

        // Attribute lines set/keep pending state but open no scopes.
        if code.starts_with("#[") || code.starts_with("#![") {
            if code.contains("cfg(test") || code.contains("cfg(all(test") || code == "#[test]" {
                pending_test_attr = true;
            }
            continue;
        }

        // Accumulate a still-open multi-line fn signature.
        if let Some((id, sig)) = open_sig.take() {
            let mut sig = sig;
            sig.push(' ');
            sig.push_str(code);
            match sig_status(&sig) {
                SigStatus::Open => {
                    open_sig = Some((id, sig));
                    continue;
                }
                SigStatus::Declaration => {
                    ws.fns[id].has_self = sig_has_self(&sig);
                    // No body: trait method declaration. Fall through so
                    // the line's braces (there are none) keep depth sane.
                }
                SigStatus::BodyOpens => {
                    ws.fns[id].has_self = sig_has_self(&sig);
                    let brace_depth = depth + opens_before_body(&sig, code);
                    ws.fns[id].body = Some((line.no, line.no));
                    scopes.push(Scope::Fn {
                        id,
                        depth: brace_depth,
                        is_test: ws.fns[id].is_test,
                    });
                    if let Some(pos) = code.find('{') {
                        extract_calls(ws, id, line.no, &code[pos + 1..]);
                    }
                }
            }
            depth += brace_delta(code);
            close_scopes(ws, &mut scopes, depth, line.no);
            continue;
        }

        // New items: impl/trait, fn.
        if let Some(type_name) = impl_or_trait_type(code) {
            if code.contains('{') {
                scopes.push(Scope::Impl {
                    type_name,
                    depth: depth + 1,
                });
            }
            pending_test_attr = false;
            depth += brace_delta(code);
            close_scopes(ws, &mut scopes, depth, line.no);
            continue;
        }

        if let Some(name) = fn_name(code) {
            let impl_type = scopes.iter().rev().find_map(|s| match s {
                Scope::Impl { type_name, .. } => Some(type_name.clone()),
                _ => None,
            });
            let is_test = in_test_scope;
            let id = ws.fns.len();
            ws.fns.push(FnItem {
                file: file_idx,
                line: line.no,
                name,
                impl_type,
                has_self: false,
                is_test,
                body: None,
            });
            pending_test_attr = false;
            match sig_status(code) {
                SigStatus::Open => {
                    open_sig = Some((id, code.to_string()));
                    continue;
                }
                SigStatus::Declaration => {
                    ws.fns[id].has_self = sig_has_self(code);
                }
                SigStatus::BodyOpens => {
                    ws.fns[id].has_self = sig_has_self(code);
                    ws.fns[id].body = Some((line.no, line.no));
                    scopes.push(Scope::Fn {
                        id,
                        depth: depth + opens_before_body(code, code),
                        is_test,
                    });
                    // One-line bodies (`fn f() { g() }`) and trailing
                    // code after the body-opening brace still hold calls.
                    if let Some(pos) = code.find('{') {
                        extract_calls(ws, id, line.no, &code[pos + 1..]);
                    }
                }
            }
            depth += brace_delta(code);
            close_scopes(ws, &mut scopes, depth, line.no);
            continue;
        }

        // `mod name {` under a pending #[cfg(test)].
        if pending_test_attr && code.starts_with("mod ") && code.contains('{') {
            scopes.push(Scope::TestMod { depth: depth + 1 });
            pending_test_attr = false;
            depth += brace_delta(code);
            close_scopes(ws, &mut scopes, depth, line.no);
            continue;
        }

        if !code.is_empty() {
            pending_test_attr = false;
        }

        // Ordinary body line: extract call sites for the innermost fn.
        if let Some(Scope::Fn { id, .. }) =
            scopes.iter().rev().find(|s| matches!(s, Scope::Fn { .. }))
        {
            let caller = *id;
            extract_calls(ws, caller, line.no, code);
            if let Some((_, end)) = &mut ws.fns[caller].body {
                *end = line.no;
            }
        }

        depth += brace_delta(code);
        close_scopes(ws, &mut scopes, depth, line.no);
    }

    ws.files.push(SourceFile { path: rel, lines });
}

/// Pops every scope whose opening depth is now closed.
fn close_scopes(ws: &mut Workspace, scopes: &mut Vec<Scope>, depth: i32, line_no: usize) {
    while let Some(top) = scopes.last() {
        let open_depth = match top {
            Scope::Impl { depth, .. } | Scope::TestMod { depth } => *depth,
            Scope::Fn { depth, .. } => *depth,
        };
        if depth < open_depth {
            if let Scope::Fn { id, .. } = top {
                if let Some((_, end)) = &mut ws.fns[*id].body {
                    *end = line_no;
                }
            }
            scopes.pop();
        } else {
            break;
        }
    }
}

fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for b in code.bytes() {
        match b {
            b'{' => d += 1,
            b'}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Whether a (possibly accumulated) fn signature has ended, and how.
enum SigStatus {
    /// Neither `{` nor `;` seen yet outside generics.
    Open,
    /// Ends in `;` — a bodyless trait declaration.
    Declaration,
    /// A `{` opens the body.
    BodyOpens,
}

fn sig_status(sig: &str) -> SigStatus {
    // The first `{` at angle-bracket level 0 opens the body; a `;` before
    // it makes this a declaration. `where` clauses contain no braces.
    let mut angle = 0i32;
    for b in sig.bytes() {
        match b {
            b'<' => angle += 1,
            b'>' => angle = (angle - 1).max(0),
            b'{' if angle == 0 => return SigStatus::BodyOpens,
            b';' if angle == 0 => return SigStatus::Declaration,
            _ => {}
        }
    }
    SigStatus::Open
}

/// Brace-depth contribution of the signature portion *before* the body
/// opens on its final line: the fn scope starts at `depth + 1` for the
/// body's `{` (earlier signature lines contain no braces).
fn opens_before_body(_sig: &str, _last_line: &str) -> i32 {
    1
}

/// `self` appearing inside the parameter list (before the closing paren
/// of the first top-level parenthesis group).
fn sig_has_self(sig: &str) -> bool {
    let Some(open) = sig.find('(') else {
        return false;
    };
    let mut depth = 0i32;
    let bytes = sig.as_bytes();
    let mut end = sig.len();
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    lexer::has_token(&sig[open..end], "self")
}

/// If this line opens an `impl`/`trait` item, the subject type name.
fn impl_or_trait_type(code: &str) -> Option<String> {
    let rest = code
        .strip_prefix("impl")
        .or_else(|| code.strip_prefix("pub trait"))
        .or_else(|| code.strip_prefix("trait"))
        .or_else(|| code.strip_prefix("unsafe impl"))?;
    if !rest.starts_with([' ', '<']) {
        return None;
    }
    // `impl<T> Foo<T> for Bar<T>` → type after `for`; otherwise the first
    // type segment after generics.
    let rest = skip_generics(rest.trim_start());
    let subject = match lexer::find_token(rest, "for", 0) {
        Some(pos) => &rest[pos + 3..],
        None => rest,
    };
    let subject = subject.trim_start();
    let name: String = subject
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || !name.starts_with(|c: char| c.is_uppercase()) {
        None
    } else {
        Some(name)
    }
}

fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i32;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    s
}

/// If this line begins a fn item, the fn's name.
fn fn_name(code: &str) -> Option<String> {
    let pos = lexer::find_token(code, "fn", 0)?;
    // Only item position: line starts with (pub/const/unsafe/async/extern
    // qualifiers +) `fn`. Closures and `fn(..)` types never start a line
    // with these.
    let prefix = code[..pos].trim();
    const QUALS: &[&str] = &["pub", "const", "unsafe", "async", "extern", "default"];
    let prefix_ok = prefix.is_empty()
        || prefix.split_whitespace().all(|w| {
            QUALS.contains(&w) || (w.starts_with("pub(") && w.ends_with(')')) || w == "\"C\""
        });
    if !prefix_ok {
        return None;
    }
    let rest = code[pos + 2..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Extracts call sites from one masked body line.
fn extract_calls(ws: &mut Workspace, caller: FnId, line_no: usize, code: &str) {
    for (start, name) in lexer::idents(code) {
        let end = start + name.len();
        // Must be directly followed by `(` (allow `::<T>(` turbofish).
        let after = &code[end..];
        let after_trim = after.trim_start();
        let is_call = after_trim.starts_with('(')
            || (after_trim.starts_with("::<") && turbofish_then_paren(after_trim));
        if !is_call || NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        let before = code[..start].trim_end();
        let (kind, callee) = if let Some(recv) = before.strip_suffix('.') {
            // A receiver that is literally `self` pins the call to the
            // enclosing impl type — every workspace method callable as
            // `self.x()` is indexed under that type, so this narrowing
            // loses no workspace edges while dropping every same-named
            // method on unrelated types.
            let recv = recv.trim_end();
            let self_recv = recv.strip_suffix("self").is_some_and(|p| {
                !p.ends_with(|c: char| c.is_alphanumeric() || c == '_' || c == '.')
            });
            match (self_recv, ws.fns[caller].impl_type.clone()) {
                (true, Some(t)) => (CallKind::Qualified(t), name.to_string()),
                _ => (CallKind::Method, name.to_string()),
            }
        } else if before.ends_with("::") {
            let qual = path_segment_before(before);
            match qual {
                Some(q) if q == "Self" => {
                    // Resolved against the enclosing impl type by the
                    // caller's own impl_type at resolution time — store
                    // it now since resolution is name-table based.
                    match ws.fns[caller].impl_type.clone() {
                        Some(t) => (CallKind::Qualified(t), name.to_string()),
                        None => (CallKind::Free, name.to_string()),
                    }
                }
                Some(q) if q.starts_with(|c: char| c.is_uppercase()) => {
                    (CallKind::Qualified(q), name.to_string())
                }
                // `module::name(` — treated as a free-fn call by name.
                _ => (CallKind::Free, name.to_string()),
            }
        } else if before == "fn" || before.ends_with(" fn") {
            continue; // the definition line itself (nested fn / fn-ptr type)
        } else if name.starts_with(|c: char| c.is_uppercase()) {
            // Bare `Type(..)` is a tuple-struct/enum constructor, not a
            // workspace fn.
            continue;
        } else {
            (CallKind::Free, name.to_string())
        };
        ws.calls.push(CallSite {
            caller,
            line: line_no,
            name: callee,
            kind,
            resolved: Vec::new(),
        });
    }
}

/// Whether a `::<..>` turbofish is followed by `(`.
fn turbofish_then_paren(s: &str) -> bool {
    let mut depth = 0i32;
    for (i, b) in s.bytes().enumerate().skip(2) {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start().starts_with('(');
                }
            }
            _ => {}
        }
    }
    false
}

/// The path segment immediately before a trailing `::`.
fn path_segment_before(before: &str) -> Option<String> {
    let stripped = before.strip_suffix("::")?;
    // Drop a trailing generic args group: `Foo::<T>::` → `Foo`.
    let stripped = if stripped.ends_with('>') {
        let mut depth = 0i32;
        let mut cut = None;
        for (i, b) in stripped.bytes().enumerate().rev() {
            match b {
                b'>' => depth += 1,
                b'<' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        match cut {
            Some(i) => stripped[..i].strip_suffix("::").unwrap_or(&stripped[..i]),
            None => stripped,
        }
    } else {
        stripped
    };
    let seg: String = stripped
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if seg.is_empty() {
        None
    } else {
        Some(seg)
    }
}

impl Workspace {
    /// Fns matching a `Type::name` or bare-name pattern, tests excluded.
    pub fn find_fns(&self, type_qual: Option<&str>, name: &str) -> Vec<FnId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && f.name == name
                    && match type_qual {
                        Some(t) => f.impl_type.as_deref() == Some(t),
                        None => true,
                    }
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// The masked lines of a fn's body (defensively clamped).
    pub fn body_lines(&self, id: FnId) -> &[Line] {
        let f = &self.fns[id];
        let Some((start, end)) = f.body else {
            return &[];
        };
        let lines = &self.files[f.file].lines;
        let s = start.saturating_sub(1).min(lines.len());
        let e = end.min(lines.len());
        &lines[s..e]
    }

    /// Display label `file:line: Type::name`.
    pub fn describe(&self, id: FnId) -> String {
        let f = &self.fns[id];
        format!("{}:{}: {}", self.files[f.file].path, f.line, f.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Workspace {
        let mut ws = Workspace::default();
        parse_source(&mut ws, "test.rs", src);
        resolve_calls(&mut ws);
        ws
    }

    #[test]
    fn extracts_free_and_method_fns() {
        let ws = parse(
            "pub fn alpha(x: u32) -> u32 {\n    beta(x)\n}\n\nfn beta(x: u32) -> u32 { x }\n\nstruct S;\nimpl S {\n    pub fn make() -> S { S }\n    fn run(&self) -> u32 { alpha(1) }\n}\n",
        );
        let names: Vec<String> = ws.fns.iter().map(|f| f.label()).collect();
        assert_eq!(names, vec!["alpha", "beta", "S::make", "S::run"]);
        assert!(ws.fns[3].has_self);
        assert!(!ws.fns[2].has_self);
    }

    #[test]
    fn resolves_calls_conservatively() {
        let ws = parse(
            "fn top() {\n    helper();\n    let s = S::make();\n    s.run();\n}\nfn helper() {}\nstruct S;\nimpl S {\n    fn make() -> S { S }\n    fn run(&self) {}\n}\n",
        );
        let top_calls: Vec<(&str, usize)> = ws
            .calls
            .iter()
            .filter(|c| c.caller == 0)
            .map(|c| (c.name.as_str(), c.resolved.len()))
            .collect();
        assert_eq!(top_calls, vec![("helper", 1), ("make", 1), ("run", 1)]);
    }

    #[test]
    fn self_calls_resolve_to_impl_type() {
        let ws = parse(
            "struct S;\nimpl S {\n    fn a(&self) {\n        Self::b();\n    }\n    fn b() {}\n}\n",
        );
        let call = &ws.calls[0];
        assert_eq!(call.kind, CallKind::Qualified("S".into()));
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(ws.fns[call.resolved[0]].label(), "S::b");
    }

    #[test]
    fn self_receiver_narrows_to_enclosing_impl_type() {
        let ws = parse(
            "struct A;\nstruct B;\nimpl A {\n    fn go(&self) {\n        self.step();\n    }\n    fn step(&self) {}\n}\nimpl B {\n    fn step(&self) {}\n}\n",
        );
        let call = ws.calls.iter().find(|c| c.name == "step").unwrap();
        assert_eq!(call.kind, CallKind::Qualified("A".into()));
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(ws.fns[call.resolved[0]].label(), "A::step");
    }

    #[test]
    fn non_self_receiver_stays_a_method_call() {
        let ws = parse(
            "struct A;\nstruct B;\nimpl A {\n    fn go(&self, other: &B) {\n        other.step();\n    }\n}\nimpl B {\n    fn step(&self) {}\n}\n",
        );
        let call = ws.calls.iter().find(|c| c.name == "step").unwrap();
        assert_eq!(call.kind, CallKind::Method);
        assert_eq!(call.resolved.len(), 1);
        assert_eq!(ws.fns[call.resolved[0]].label(), "B::step");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let ws = parse(
            "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() { helper(); }\n}\n",
        );
        assert!(!ws.fns[0].is_test);
        assert!(ws.fns[1].is_test);
        assert!(ws.fns[2].is_test);
        assert!(ws.find_fns(None, "helper").is_empty());
    }

    #[test]
    fn multiline_signatures_and_impl_for() {
        let ws = parse(
            "struct W;\ntrait T {\n    fn decl(&self);\n}\nimpl T for W {\n    fn decl(\n        &self,\n    ) {\n        work();\n    }\n}\nfn work() {}\n",
        );
        let decl_impl = ws
            .fns
            .iter()
            .find(|f| f.name == "decl" && f.body.is_some())
            .unwrap();
        assert_eq!(decl_impl.impl_type.as_deref(), Some("W"));
        assert!(decl_impl.has_self);
        let calls: Vec<&str> = ws.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["work"]);
    }

    #[test]
    fn tuple_constructors_and_keywords_skipped() {
        let ws =
            parse("fn f(x: u32) -> Option<u32> {\n    if x > 1 { Some(x) } else { None }\n}\n");
        assert!(ws.calls.is_empty());
    }

    #[test]
    fn body_ranges_cover_calls() {
        let ws = parse("fn f() {\n    g();\n    g();\n}\nfn g() {}\n");
        let (s, e) = ws.fns[0].body.unwrap();
        assert!(s <= 2 && e >= 3, "body range {s}..{e}");
    }
}
