//! Line-level lexing shared by every pass: comment/string masking and
//! token scanning.
//!
//! The analyzer never parses full Rust — it works line by line on a
//! *masked* view of the source in which string/char literal bodies are
//! blanked and comments are split out. That is enough to extract item
//! boundaries, call sites, and deny-list patterns without ever being
//! fooled by `"Vec::new() unsafe { SeqCst"` inside a literal, and it is
//! what keeps the whole tool dependency-free and fast (one pass over
//! ~30k lines).

/// One masked source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub no: usize,
    /// Code with string/char literal bodies masked out.
    pub code: String,
    /// The line's comment text (`//` tail and/or block-comment content).
    pub comment: String,
}

/// Cross-line lexer state: inside a `/* .. */` comment, and inside an
/// unterminated (multi-line) string literal.
#[derive(Debug, Default, Clone, Copy)]
pub struct LexState {
    pub in_block_comment: bool,
    pub in_string: bool,
}

/// Splits a source line into its code part and its `//` comment part,
/// masking string/char literal contents so brace counting and pattern
/// matching cannot be fooled by literals. Tracks `/* .. */` and
/// multi-line string state across lines via `st`.
pub fn split_line(line: &str, st: &mut LexState) -> (String, String) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    if st.in_string {
        // Continuation of a multi-line string literal: skip (masked)
        // until the closing quote, honouring escapes.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    code.push('"');
                    st.in_string = false;
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        if st.in_string {
            return (code, comment);
        }
    }
    while i < bytes.len() {
        if st.in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                st.in_block_comment = false;
                i += 2;
            } else {
                comment.push(bytes[i] as char);
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                comment.push_str(&line[i..]);
                break;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                st.in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // Mask the string literal body (escapes included). A
                // literal still open at end of line spills into the
                // next line via `st.in_string`.
                code.push('"');
                i += 1;
                st.in_string = true;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            code.push('"');
                            st.in_string = false;
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with a quote
                // one-or-two chars later ('x' or '\n'); lifetimes do not.
                let lit_len = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    bytes[i + 2..]
                        .iter()
                        .position(|&b| b == b'\'')
                        .map(|p| p + 3)
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    Some(3)
                } else {
                    None
                };
                match lit_len {
                    Some(n) => {
                        code.push_str("' '");
                        i += n;
                    }
                    None => {
                        code.push('\'');
                        i += 1;
                    }
                }
            }
            b => {
                code.push(b as char);
                i += 1;
            }
        }
    }
    (code, comment)
}

/// Masks a whole file into [`Line`]s.
pub fn mask(src: &str) -> Vec<Line> {
    let mut st = LexState::default();
    src.lines()
        .enumerate()
        .map(|(idx, raw)| {
            let (code, comment) = split_line(raw, &mut st);
            Line {
                no: idx + 1,
                code,
                comment,
            }
        })
        .collect()
}

/// True when `code` contains `word` as a standalone token (not a prefix
/// or suffix of a longer identifier).
pub fn has_token(code: &str, word: &str) -> bool {
    find_token(code, word, 0).is_some()
}

/// Finds the next standalone-token occurrence of `word` at or after
/// byte offset `from`, returning its start offset.
pub fn find_token(code: &str, word: &str, mut from: usize) -> Option<usize> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident(code[..start].chars().next_back().unwrap());
        let post_ok = end == code.len() || !is_ident(code[end..].chars().next().unwrap());
        if pre_ok && post_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

/// Iterates `(start, ident)` over the identifiers in a masked code line.
/// Byte offsets come from `char_indices`, so non-ASCII text (doc prose
/// that leaks into code on malformed lines) cannot split a char.
pub fn idents(code: &str) -> Vec<(usize, &str)> {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut out = Vec::new();
    let mut chars = code.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_ascii_alphabetic() || c == '_' {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if is_ident(c) {
                    end = i + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            out.push((start, &code[start..end]));
        } else {
            chars.next();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let mut st = LexState::default();
        let (code, comment) = split_line(r#"let s = "Vec::new()"; // tail"#, &mut st);
        assert!(!code.contains("Vec::new"));
        assert!(comment.contains("tail"));
        assert!(!st.in_block_comment && !st.in_string);
    }

    #[test]
    fn multi_line_strings_stay_masked() {
        let lines = mask(
            "println!(\n    \"expected: grows — the 100 % setting\nsecond line of prose\"\n);\n",
        );
        assert!(
            lines[1].code.trim_start().starts_with('"'),
            "{:?}",
            lines[1].code
        );
        assert!(!lines[1].code.contains("expected"));
        assert!(lines[2].code.trim() == "\"", "{:?}", lines[2].code);
        assert!(lines[3].code.contains(')'));
        // Non-ASCII prose never panics the ident scanner.
        for l in &lines {
            let _ = idents(&l.code);
        }
    }

    #[test]
    fn block_comment_state_spans_lines() {
        let lines = mask("let a = 1; /* start\nVec::new()\nend */ let b = 2;");
        assert!(lines[1].code.is_empty());
        assert!(lines[1].comment.contains("Vec::new"));
        assert!(lines[2].code.contains("let b"));
    }

    #[test]
    fn token_matching_rejects_substrings() {
        assert!(has_token("assert!(x)", "assert"));
        assert!(!has_token("debug_assert!(x)", "assert"));
        assert_eq!(find_token("xassert assert", "assert", 0), Some(8));
    }

    #[test]
    fn ident_scan() {
        let ids = idents("foo.bar(baz_2)");
        let names: Vec<&str> = ids.iter().map(|(_, s)| *s).collect();
        assert_eq!(names, vec!["foo", "bar", "baz_2"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let mut b = LexState::default();
        let (code, _) = split_line("fn f<'a>(x: &'a str) { let c = 'x'; }", &mut b);
        assert!(code.contains("'a"));
        assert!(!code.contains("'x'"));
    }
}
