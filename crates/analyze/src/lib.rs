//! `rtopex-analyze` — the whole-workspace static analyzer behind
//! `cargo xtask analyze`.
//!
//! Four passes over a conservative, name-resolved call graph of the
//! shipped crates (see DESIGN.md §8 for the construction and its
//! soundness caveats):
//!
//! 1. **Transitive hot-path purity** ([`purity`]) — from the declared
//!    hot entry points (`decode_subframe_with`, the deque operations,
//!    the `SlotBoard` stage transitions, the cluster loops), every
//!    reachable allocation, lock, panic source, blocking syscall, or
//!    clock read is flagged against the seed's per-class deny mask.
//!    This subsumes (and retires) the PR 4 lexical `hot-*` lints, which
//!    could not see two hops below a module boundary.
//! 2. **Lock-order and blocking audit** ([`locks`]) — the mutex/rwlock
//!    acquisition graph, cycles (potential deadlock), and any lock
//!    taken while a `SlotBoard` stage guard or `DeltaGuard` is held.
//! 3. **Static Eq. 3 schedulability** ([`sched`]) — the paper's
//!    deadline arithmetic evaluated from the tracked bench baselines
//!    against every shipped scheduler config, plus δ admission sanity
//!    and reproduction of the measured capacity ordering.
//! 4. **Adversarial-input taint audit** ([`taint`]) — from the declared
//!    untrusted-byte sources (the wire codecs, `RxSession::ingest_frame`,
//!    the TCP/UDP recv paths), everything reachable is proven panic-free
//!    (including unchecked indexing and length/seq arithmetic),
//!    allocation-free, and free of input-driven unbounded loops (see
//!    DESIGN.md §9).
//!
//! Like `rtopex-check`, the crate has **zero dependencies** — it lexes
//! source text and re-derives timing from mirrored tables, with
//! dev-dependency cross-check tests pinning the mirrors to the shipped
//! constructors.

use std::fmt;
use std::path::Path;

pub mod graph;
pub mod json;
pub mod lexer;
pub mod locks;
pub mod purity;
pub mod sched;
pub mod taint;

/// One analyzer finding, pointing at a workspace-relative file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (may be empty for config-level findings).
    pub file: String,
    /// 1-based line, or 0 when the finding is not line-anchored.
    pub line: usize,
    /// Pass that produced it: `purity`, `locks`, `sched`, or `taint`.
    pub pass: &'static str,
    /// Finding class, usable in `// analyze: allow(<class>): <reason>`
    /// where a suppression applies.
    pub class: &'static str,
    /// Human-readable explanation with the witness chain.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file.is_empty() {
            write!(f, "[{}/{}] {}", self.pass, self.class, self.msg)
        } else {
            write!(
                f,
                "{}:{}: [{}/{}] {}",
                self.file, self.line, self.pass, self.class, self.msg
            )
        }
    }
}

/// Full-workspace analysis result.
#[derive(Debug)]
pub struct Analysis {
    /// All gating findings across the three passes.
    pub violations: Vec<Violation>,
    /// The schedulability report body (JSON), for the CI artifact.
    pub sched_report: String,
}

/// Runs all three passes over the workspace rooted at `root`.
///
/// Every pass is lexical/arithmetic and completes in well under a
/// second; `quick` exists so the CI smoke invocation shares the full
/// job's interface and only skips emitting the schedulability report
/// artifact (the checks themselves always run).
pub fn analyze_workspace(root: &Path, quick: bool) -> Analysis {
    let ws = graph::parse_workspace(root);
    let mut violations = purity::run(&ws);
    violations.extend(locks::run(&ws));
    violations.extend(taint::run(&ws));
    let audit = sched::audit_workspace(root);
    violations.extend(audit.violations);
    Analysis {
        violations,
        sched_report: if quick { String::new() } else { audit.report },
    }
}
