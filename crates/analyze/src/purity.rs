//! Pass 1 — transitive hot-path purity.
//!
//! Seeds the call graph at the declared hot entry points (the PHY
//! decode path, the steal/run loops, the `SlotBoard` stage transitions)
//! and walks every reachable workspace fn, flagging lines that match an
//! effect deny-list the seed forbids: heap allocation, locking,
//! panicking (`unwrap`/`expect`/`assert!`/`panic!`-family), blocking
//! syscalls (sleep/park/join/channel/IO), and clock reads.
//!
//! Each seed carries its own deny *mask*: the PHY kernels and deque
//! operations must be free of all five effect classes, while e.g.
//! `SlotBoard::publish`/`enter` legitimately take the stage `RwLock`
//! (the lock IS the publication protocol) and `SlotBoard::wait`
//! legitimately reads the clock (its spin is deadline-bounded). A BFS
//! from one seed does not descend into another seed's root — that fn is
//! audited under its own, possibly different, mask (seed shadowing).
//!
//! Suppressions (reason mandatory, same line or the comment run
//! directly above):
//!
//! ```text
//! // analyze: allow(alloc): one-time ring construction at node setup
//! // analyze: allow(call:prepare): warm path proven allocation-free by tests/alloc_regression.rs
//! ```
//!
//! Effects on *call-site lines* are scanned even when the callee is
//! external (std/vendored), which is what keeps the unresolved part of
//! the graph sound: `v.to_vec()` is flagged by the line scan whether or
//! not `to_vec` resolves.

use std::collections::{HashMap, VecDeque};

use crate::graph::{FnId, Workspace};
use crate::lexer::Line;
use crate::Violation;

/// Effect classes as a bitmask.
pub mod class {
    pub const ALLOC: u8 = 1 << 0;
    pub const PANIC: u8 = 1 << 1;
    pub const LOCK: u8 = 1 << 2;
    pub const BLOCK: u8 = 1 << 3;
    pub const CLOCK: u8 = 1 << 4;
    pub const ALL: u8 = ALLOC | PANIC | LOCK | BLOCK | CLOCK;
}

/// Suppression/display name of each class bit.
pub fn class_name(bit: u8) -> &'static str {
    match bit {
        class::ALLOC => "alloc",
        class::PANIC => "panic",
        class::LOCK => "lock",
        class::BLOCK => "block",
        class::CLOCK => "clock",
        _ => "effect",
    }
}

/// One hot entry point and the effect classes denied along every path
/// reachable from it.
#[derive(Debug, Clone, Copy)]
pub struct Seed {
    /// `impl` type qualifier, if the seed is a method/associated fn.
    pub type_qual: Option<&'static str>,
    /// Fn name.
    pub name: &'static str,
    /// Denied effect classes ([`class`] bits).
    pub deny: u8,
    /// Why this seed has this mask — printed in reports.
    pub why: &'static str,
}

/// The declared hot entry points of the workspace.
///
/// Masks encode each seed's *contract*, not a wish: subframe decode and
/// the deque operations run inside the Eq. 3 budget on every subframe
/// and must be pure; the cluster's orchestration fns legitimately lock
/// slot mutexes and read the per-subframe clock but must never allocate
/// or panic; the measurement/driver loops only promise not to panic
/// (their boxed-envelope allocation *is* the measured mailbox baseline).
pub const SEEDS: &[Seed] = &[
    // — PHY decode path: everything is denied. —
    Seed {
        type_qual: None,
        name: "decode_subframe_with",
        deny: class::ALL,
        why: "per-subframe PHY decode inside the Eq. 3 budget; tests/alloc_regression.rs proves 0 steady-state allocs",
    },
    // — Work-stealing deque: everything is denied. —
    Seed {
        type_qual: Some("Worker"),
        name: "push",
        deny: class::ALL,
        why: "owner-side deque op on the per-subframe fanout path",
    },
    Seed {
        type_qual: Some("Worker"),
        name: "pop",
        deny: class::ALL,
        why: "owner-side deque op on the per-subframe acquire path",
    },
    Seed {
        type_qual: Some("Stealer"),
        name: "steal",
        deny: class::ALL,
        why: "thief-side deque op on idle cores' steal path",
    },
    Seed {
        type_qual: Some("DeltaGuard"),
        name: "admit",
        deny: class::ALL,
        why: "Alg. 1 delta admission decided at steal time",
    },
    // — SlotBoard stage transitions: per-method contracts. —
    Seed {
        type_qual: Some("SlotBoard"),
        name: "publish",
        deny: class::ALL & !class::LOCK,
        why: "stage transition; the stage RwLock IS the publication protocol",
    },
    Seed {
        type_qual: Some("SlotBoard"),
        name: "enter",
        deny: class::ALL & !class::LOCK,
        why: "epoch-validated stage entry; takes the stage read lock by design",
    },
    Seed {
        type_qual: Some("SlotBoard"),
        name: "poll",
        deny: class::ALL,
        why: "lock-free readiness probe used from the steal loop",
    },
    Seed {
        type_qual: Some("SlotBoard"),
        name: "wait",
        deny: class::ALL & !class::CLOCK,
        why: "deadline-bounded spin; the clock read enforces the 50 ms cap",
    },
    Seed {
        type_qual: Some("StageGuard"),
        name: "complete",
        deny: class::ALL,
        why: "release-store stage completion on the hot path",
    },
    Seed {
        type_qual: Some("StageGuard"),
        name: "decline",
        deny: class::ALL,
        why: "release-store stage decline on the hot path",
    },
    // — Cluster runtime orchestration: slot locks and per-subframe clock
    //   reads are the design; allocation and panicking are not. —
    Seed {
        type_qual: None,
        name: "process_subframe",
        deny: class::ALLOC | class::PANIC,
        why: "per-subframe staged decode orchestration; slot locks and deadline clock reads are part of the protocol",
    },
    Seed {
        type_qual: None,
        name: "try_steal",
        deny: class::ALLOC | class::PANIC,
        why: "idle-core steal path; takes slot mutexes under the stage guard by design",
    },
    Seed {
        type_qual: None,
        name: "fanout_steal",
        deny: class::ALLOC | class::PANIC,
        why: "subtask publication into preallocated slot arenas",
    },
    // — Network fronthaul rx hot path: one frame from the io thread into
    //   the preallocated assembly slots / swap ring. Allocation and
    //   panicking are denied (tests/alloc_regression.rs proves the
    //   steady state); the parking_lot slot locks are the handoff
    //   protocol and the io thread owns no deadline, so locks and clock
    //   reads stay legal. —
    Seed {
        type_qual: Some("RxSession"),
        name: "ingest_frame",
        deny: class::ALLOC | class::PANIC,
        why: "per-frame rx ingest on the io thread; transport-net/tests/alloc_regression.rs proves 0 steady-state allocs",
    },
    // — Simulator per-event hot loop: the engines promise an
    //   allocation-free, lock-free, clock-free steady state (the wheel
    //   speedup and the fleet determinism both depend on it); panics are
    //   allowed — the engines assert invariants with expect/unreachable. —
    Seed {
        type_qual: None,
        name: "on_event",
        deny: class::ALLOC | class::LOCK | class::CLOCK,
        why: "discrete-event hot loop; tests/alloc_regression.rs proves 0 steady-state allocs per subframe",
    },
    // — Run loops and the migration-overhead probes: must not panic.
    //   (fanout_mutex's boxed envelope is the measured mailbox baseline
    //   cost, so allocation is not denied there.) —
    Seed {
        type_qual: None,
        name: "worker_loop",
        deny: class::PANIC,
        why: "long-running per-core loop; a panic kills the core silently",
    },
    Seed {
        type_qual: None,
        name: "fanout_mutex",
        deny: class::PANIC,
        why: "mailbox baseline path; its boxed envelope is the measured handoff cost",
    },
    Seed {
        type_qual: None,
        name: "measure_migration_overhead",
        deny: class::PANIC,
        why: "timed probe; a panic poisons the calibration",
    },
    Seed {
        type_qual: None,
        name: "measure_steal_overhead",
        deny: class::PANIC,
        why: "timed probe; a panic poisons the calibration",
    },
];

/// Heap-allocation constructors and allocating adapters.
pub(crate) const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "vec![",
    "Box::new",
    "String::new",
    "String::from",
    "format!",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
    "with_capacity(",
    ".collect(",
];

/// Panic sources (`debug_assert!` stays legal: it compiles out of
/// release builds; bounds-checked indexing is deliberately NOT pattern-
/// matched — see DESIGN.md §8 caveats).
pub(crate) const PANIC_PATTERNS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Lock acquisitions (mutex/rwlock guards, condvars).
const LOCK_PATTERNS: &[&str] = &[".lock(", ".read(", ".write(", "Condvar::"];

/// Blocking syscalls / IO / channel ops.
const BLOCK_PATTERNS: &[&str] = &[
    "thread::sleep",
    "sleep(",
    ".park(",
    "park_timeout",
    ".join(",
    ".recv(",
    ".recv_timeout(",
    ".send(",
    "File::",
    "read_to_string",
    "read_to_end",
    "stdin(",
    "stdout(",
    "println!",
    "eprintln!",
    "print!",
    "eprint!",
];

/// Syscall-backed clock reads.
const CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime::now"];

fn patterns_for(bit: u8) -> &'static [&'static str] {
    match bit {
        class::ALLOC => ALLOC_PATTERNS,
        class::PANIC => PANIC_PATTERNS,
        class::LOCK => LOCK_PATTERNS,
        class::BLOCK => BLOCK_PATTERNS,
        class::CLOCK => CLOCK_PATTERNS,
        _ => &[],
    }
}

/// Pattern match with a token-start guard for identifier-leading
/// patterns, so `debug_assert!` never trips the `assert!` pattern
/// (patterns starting with `.` need no guard — `x.unwrap(` is a hit).
pub(crate) fn hit(code: &str, pat: &str) -> bool {
    let needs_guard = pat.starts_with(|c: char| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let start = from + pos;
        let pre = code[..start].chars().next_back();
        let pre_ident = pre.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !needs_guard || !pre_ident {
            return true;
        }
        from = start + pat.len();
    }
    false
}

/// Looks for `analyze: allow(<what>): <reason>` covering `line_no`
/// (same-line comment or the comment run directly above). Returns the
/// reason if present and nonempty.
pub fn suppression(lines: &[Line], line_no: usize, what: &str) -> Option<String> {
    let needle = format!("analyze: allow({what}):");
    let check = |l: &Line| -> Option<String> {
        let pos = l.comment.find(&needle)?;
        let reason = l.comment[pos + needle.len()..].trim();
        if reason.is_empty() {
            None
        } else {
            Some(reason.to_string())
        }
    };
    let idx = line_no.checked_sub(1)?;
    let line = lines.get(idx)?;
    if let Some(r) = check(line) {
        return Some(r);
    }
    // Comment run directly above: lines whose code part is empty.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let above = &lines[i];
        if !above.code.trim().is_empty() {
            break;
        }
        if above.comment.trim().is_empty() {
            break;
        }
        if let Some(r) = check(above) {
            return Some(r);
        }
    }
    None
}

/// Runs the purity pass with the default [`SEEDS`].
pub fn run(ws: &Workspace) -> Vec<Violation> {
    run_with_seeds(ws, SEEDS)
}

/// Runs the purity pass with an explicit seed list (fixture tests).
pub fn run_with_seeds(ws: &Workspace, seeds: &[Seed]) -> Vec<Violation> {
    let mut out = Vec::new();

    // Fns that are themselves seed roots: BFS from one seed stops at
    // another seed's root (it is audited under its own mask).
    let mut seed_roots: HashMap<FnId, usize> = HashMap::new();
    let mut roots_of: Vec<Vec<FnId>> = Vec::with_capacity(seeds.len());
    for (si, seed) in seeds.iter().enumerate() {
        let ids = ws.find_fns(seed.type_qual, seed.name);
        if ids.is_empty() {
            out.push(Violation {
                file: String::new(),
                line: 0,
                pass: "purity",
                class: "seed-missing",
                msg: format!(
                    "hot-path seed `{}` not found in the workspace — update the seed table in crates/analyze/src/purity.rs",
                    seed_label(seed)
                ),
            });
        }
        for &id in &ids {
            seed_roots.entry(id).or_insert(si);
        }
        roots_of.push(ids);
    }

    for (si, seed) in seeds.iter().enumerate() {
        for &root in &roots_of[si] {
            audit_seed(ws, seed, root, &seed_roots, si, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.msg).cmp(&(&b.file, b.line, &b.msg)));
    // One finding per (file, line, class) — the first witness chain is
    // enough. Line-0 findings (e.g. seed-missing) have no anchor, so
    // they dedup on the message instead.
    out.dedup_by(|a, b| {
        a.file == b.file
            && a.line == b.line
            && a.class == b.class
            && (a.line != 0 || a.msg == b.msg)
    });
    out
}

fn seed_label(seed: &Seed) -> String {
    match seed.type_qual {
        Some(t) => format!("{}::{}", t, seed.name),
        None => seed.name.to_string(),
    }
}

fn audit_seed(
    ws: &Workspace,
    seed: &Seed,
    root: FnId,
    seed_roots: &HashMap<FnId, usize>,
    seed_idx: usize,
    out: &mut Vec<Violation>,
) {
    // BFS with parent tracking for witness chains.
    let mut parent: HashMap<FnId, FnId> = HashMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    parent.insert(root, root);
    queue.push_back(root);

    while let Some(id) = queue.pop_front() {
        scan_fn(ws, seed, root, id, &parent, out);
        for &ci in &ws.calls_by_fn[id] {
            let call = &ws.calls[ci];
            let file_lines = &ws.files[ws.fns[id].file].lines;
            // Per-edge suppression prunes the edge for every class.
            if suppression(file_lines, call.line, &format!("call:{}", call.name)).is_some() {
                continue;
            }
            for &callee in &call.resolved {
                if ws.fns[callee].is_test || parent.contains_key(&callee) {
                    continue;
                }
                // Seed shadowing: another seed's root is audited under
                // its own mask.
                if let Some(&other) = seed_roots.get(&callee) {
                    if other != seed_idx {
                        continue;
                    }
                }
                parent.insert(callee, id);
                queue.push_back(callee);
            }
        }
    }
}

fn scan_fn(
    ws: &Workspace,
    seed: &Seed,
    root: FnId,
    id: FnId,
    parent: &HashMap<FnId, FnId>,
    out: &mut Vec<Violation>,
) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    for line in ws.body_lines(id) {
        for bit in [
            class::ALLOC,
            class::PANIC,
            class::LOCK,
            class::BLOCK,
            class::CLOCK,
        ] {
            if seed.deny & bit == 0 {
                continue;
            }
            let Some(pat) = patterns_for(bit).iter().find(|p| hit(&line.code, p)) else {
                continue;
            };
            if suppression(&file.lines, line.no, class_name(bit)).is_some() {
                continue;
            }
            let chain = witness_chain(ws, root, id, parent);
            out.push(Violation {
                file: file.path.clone(),
                line: line.no,
                pass: "purity",
                class: class_name(bit),
                msg: format!(
                    "`{pat}` on a hot path: reachable from seed `{}` via {chain} (seed contract: {}); fix it or annotate `// analyze: allow({}): <reason>`",
                    seed_label(seed),
                    seed.why,
                    class_name(bit),
                ),
            });
        }
    }
}

fn witness_chain(ws: &Workspace, root: FnId, id: FnId, parent: &HashMap<FnId, FnId>) -> String {
    let mut chain = vec![id];
    let mut cur = id;
    while cur != root {
        let Some(&p) = parent.get(&cur) else { break };
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| ws.fns[f].label())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{parse_source, resolve_calls, Workspace};

    fn ws(src: &str) -> Workspace {
        let mut ws = Workspace::default();
        parse_source(&mut ws, "t.rs", src);
        resolve_calls(&mut ws);
        ws
    }

    const SEED: &[Seed] = &[Seed {
        type_qual: None,
        name: "hot",
        deny: class::ALL,
        why: "test seed",
    }];

    #[test]
    fn transitive_alloc_is_flagged() {
        let w = ws("fn hot() {\n    mid();\n}\nfn mid() {\n    leaf();\n}\nfn leaf() {\n    let v = Vec::new();\n    drop(v);\n}\n");
        let v = run_with_seeds(&w, SEED);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].class, "alloc");
        assert!(v[0].msg.contains("hot -> mid -> leaf"), "{}", v[0].msg);
    }

    #[test]
    fn line_suppression_with_reason_clears_it() {
        let w = ws("fn hot() {\n    // analyze: allow(alloc): one-time setup\n    let v = Vec::new();\n    drop(v);\n}\n");
        assert!(run_with_seeds(&w, SEED).is_empty());
    }

    #[test]
    fn suppression_without_reason_does_not_count() {
        let w =
            ws("fn hot() {\n    let v = Vec::new(); // analyze: allow(alloc):\n    drop(v);\n}\n");
        assert_eq!(run_with_seeds(&w, SEED).len(), 1);
    }

    #[test]
    fn edge_suppression_prunes_the_callee() {
        let w = ws("fn hot() {\n    // analyze: allow(call:cold): setup-only branch proven unreachable per subframe\n    cold();\n}\nfn cold() {\n    let v = Vec::new();\n    drop(v);\n}\n");
        assert!(run_with_seeds(&w, SEED).is_empty());
    }

    #[test]
    fn seed_shadowing_stops_descent() {
        let seeds: &[Seed] = &[
            Seed {
                type_qual: None,
                name: "hot",
                deny: class::ALL,
                why: "strict",
            },
            Seed {
                type_qual: None,
                name: "relaxed",
                deny: class::PANIC,
                why: "relaxed",
            },
        ];
        // `relaxed` allocates, which its own mask allows; `hot` calling
        // `relaxed` must not re-audit it under the strict mask.
        let w = ws("fn hot() {\n    relaxed();\n}\nfn relaxed() {\n    let v = Vec::new();\n    drop(v);\n}\n");
        assert!(run_with_seeds(&w, seeds).is_empty());
    }

    #[test]
    fn missing_seed_is_reported() {
        let w = ws("fn other() {}\n");
        let v = run_with_seeds(&w, SEED);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].class, "seed-missing");
    }

    #[test]
    fn debug_assert_is_legal() {
        let w = ws("fn hot() {\n    debug_assert!(true);\n}\n");
        assert!(run_with_seeds(&w, SEED).is_empty());
    }

    #[test]
    fn mask_gates_classes() {
        let seeds: &[Seed] = &[Seed {
            type_qual: None,
            name: "hot",
            deny: class::PANIC,
            why: "panic only",
        }];
        let w = ws("fn hot() {\n    let v = Vec::new();\n    v.first().unwrap();\n}\n");
        let v = run_with_seeds(&w, seeds);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].class, "panic");
    }
}
