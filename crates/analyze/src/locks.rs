//! Pass 2 — lock-order and blocking audit.
//!
//! Builds the mutex/rwlock acquisition graph over the whole workspace:
//! an edge `A -> B` means a guard for `A` is still live (lexically, by
//! brace scope) when `B` is acquired — either directly on a later line
//! or transitively inside a callee. Cycles in this graph are potential
//! deadlocks and are reported; so is any lock acquired while a
//! `SlotBoard` stage guard (`.enter(..)` binding) or a `DeltaGuard` is
//! held, because those guards sit on the steal hot path where blocking
//! is only tolerable when argued for explicitly.
//!
//! Lock identity is the *last field/path segment* before the zero-arg
//! `.lock()` / `.read()` / `.write()` call (`arena.fft_slots[i].lock()`
//! names the lock `fft_slots`). That merges same-named locks on
//! different types — a deliberate over-approximation: it can invent
//! cycles, never hide one. Non-zero-arg `.read(buf)` / `.write(buf)` IO
//! calls never match.
//!
//! Suppressions (reason mandatory, same line or the run above):
//!
//! ```text
//! // analyze: allow(lock-order): slot mutexes are leaves; ordering fixed by stage index
//! // analyze: allow(guard-held-lock): slot lock is uncontended by protocol — owner declined the stage
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::graph::{FnId, Workspace};
use crate::lexer::Line;
use crate::purity::suppression;
use crate::Violation;

/// A live guard on the lexical scan stack.
#[derive(Debug, Clone)]
enum Guard {
    /// Mutex/rwlock guard for the named lock.
    Lock {
        name: String,
        binding: Option<String>,
        depth: i32,
    },
    /// `SlotBoard` stage guard or `DeltaGuard`.
    Hot {
        label: &'static str,
        binding: Option<String>,
        depth: i32,
    },
}

impl Guard {
    fn depth(&self) -> i32 {
        match self {
            Guard::Lock { depth, .. } | Guard::Hot { depth, .. } => *depth,
        }
    }
    fn binding(&self) -> Option<&str> {
        match self {
            Guard::Lock { binding, .. } | Guard::Hot { binding, .. } => binding.as_deref(),
        }
    }
}

/// An acquisition-order edge with its first witness site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
}

/// Runs the lock audit over every non-test fn.
pub fn run(ws: &Workspace) -> Vec<Violation> {
    let trans = transitive_locks(ws);
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut out = Vec::new();

    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        scan_fn(ws, id, &trans, &mut edges, &mut out);
    }

    report_cycles(&edges, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.class == b.class);
    out
}

/// Fixpoint: every lock a fn may acquire, directly or via callees.
fn transitive_locks(ws: &Workspace) -> Vec<BTreeSet<String>> {
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ws.fns.len()];
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for line in ws.body_lines(id) {
            for (name, _) in acquisitions(&line.code) {
                direct[id].insert(name);
            }
        }
    }
    let mut trans = direct;
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for &ci in &ws.calls_by_fn[id] {
                for &callee in &ws.calls[ci].resolved {
                    if ws.fns[callee].is_test {
                        continue;
                    }
                    let add: Vec<String> = trans[callee]
                        .iter()
                        .filter(|l| !trans[id].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        trans[id].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return trans;
        }
    }
}

fn scan_fn(
    ws: &Workspace,
    id: FnId,
    trans: &[BTreeSet<String>],
    edges: &mut BTreeMap<(String, String), Edge>,
    out: &mut Vec<Violation>,
) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;

    // Call sites by line, for transitive edges.
    let mut calls_at: HashMap<usize, Vec<usize>> = HashMap::new();
    for &ci in &ws.calls_by_fn[id] {
        calls_at.entry(ws.calls[ci].line).or_default().push(ci);
    }

    for line in ws.body_lines(id) {
        let code = line.code.as_str();
        let binding = let_binding(code);

        // Explicit drops release guards early.
        for dropped in drop_targets(code) {
            guards.retain(|g| g.binding() != Some(dropped.as_str()));
        }

        let acqs = acquisitions(code);
        let hot = hot_guard(code);

        // Direct acquisitions while guards are live.
        for (lock, _) in &acqs {
            note_acquire(file, line, lock, &guards, edges, out);
        }
        // Transitive acquisitions inside callees while guards are live.
        if !guards.is_empty() {
            for ci in calls_at.get(&line.no).into_iter().flatten() {
                for &callee in &ws.calls[*ci].resolved {
                    if ws.fns[callee].is_test {
                        continue;
                    }
                    for lock in &trans[callee] {
                        note_acquire(file, line, lock, &guards, edges, out);
                    }
                }
            }
        }

        // New guards become live (temporaries die at end of statement —
        // modelled as end of line).
        let mut new_guards: Vec<Guard> = Vec::new();
        for (lock, _) in acqs {
            new_guards.push(Guard::Lock {
                name: lock,
                binding: binding.clone(),
                depth,
            });
        }
        if let Some(label) = hot {
            new_guards.push(Guard::Hot {
                label,
                binding: binding.clone(),
                depth,
            });
        }
        let keep_live = binding.is_some();
        if keep_live {
            guards.extend(new_guards);
        }

        depth += code
            .bytes()
            .map(|b| match b {
                b'{' => 1,
                b'}' => -1,
                _ => 0,
            })
            .sum::<i32>();
        guards.retain(|g| g.depth() <= depth);
    }
}

/// Records edges/violations for acquiring `lock` while `guards` live.
fn note_acquire(
    file: &crate::graph::SourceFile,
    line: &Line,
    lock: &str,
    guards: &[Guard],
    edges: &mut BTreeMap<(String, String), Edge>,
    out: &mut Vec<Violation>,
) {
    for g in guards {
        match g {
            Guard::Lock { name, .. } => {
                if suppression(&file.lines, line.no, "lock-order").is_some() {
                    continue;
                }
                edges
                    .entry((name.clone(), lock.to_string()))
                    .or_insert_with(|| Edge {
                        from: name.clone(),
                        to: lock.to_string(),
                        file: file.path.clone(),
                        line: line.no,
                    });
            }
            Guard::Hot { label, .. } => {
                if suppression(&file.lines, line.no, "guard-held-lock").is_some() {
                    continue;
                }
                out.push(Violation {
                    file: file.path.clone(),
                    line: line.no,
                    pass: "locks",
                    class: "guard-held-lock",
                    msg: format!(
                        "lock `{lock}` acquired while a {label} is held — blocking under a hot-path guard; justify with `// analyze: allow(guard-held-lock): <reason>` or restructure",
                    ),
                });
            }
        }
    }
}

fn report_cycles(edges: &BTreeMap<(String, String), Edge>, out: &mut Vec<Violation>) {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges.values() {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    // DFS from every node; report each canonicalized cycle once.
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut stack: Vec<&Edge> = Vec::new();
        dfs(start, start, &adj, &mut stack, &mut seen_cycles, out, 0);
    }
}

fn dfs<'a>(
    start: &str,
    node: &str,
    adj: &BTreeMap<&'a str, Vec<&'a Edge>>,
    stack: &mut Vec<&'a Edge>,
    seen: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Violation>,
    depth: usize,
) {
    if depth > 16 {
        return; // graphs here are tiny; bound for safety
    }
    for e in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
        if e.to == start {
            let mut names: Vec<String> = stack.iter().map(|e| e.from.clone()).collect();
            names.push(e.from.clone());
            let canon = canonical(&names);
            if seen.insert(canon) {
                let witness: Vec<String> = stack
                    .iter()
                    .chain(std::iter::once(e))
                    .map(|e| format!("{} -> {} at {}:{}", e.from, e.to, e.file, e.line))
                    .collect();
                out.push(Violation {
                    file: e.file.clone(),
                    line: e.line,
                    pass: "locks",
                    class: "lock-cycle",
                    msg: format!(
                        "potential deadlock: lock-order cycle [{}] — {}",
                        names.join(" -> "),
                        witness.join("; "),
                    ),
                });
            }
        } else if !stack.iter().any(|s| s.from == e.to) {
            stack.push(e);
            dfs(start, &e.to, adj, stack, seen, out, depth + 1);
            stack.pop();
        }
    }
}

/// Rotates a cycle's node list so the smallest name comes first.
fn canonical(names: &[String]) -> Vec<String> {
    let Some(min_idx) = names
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| n.as_str())
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut v = Vec::with_capacity(names.len());
    v.extend_from_slice(&names[min_idx..]);
    v.extend_from_slice(&names[..min_idx]);
    v
}

/// Zero-arg `.lock()` / `.read()` / `.write()` acquisitions on a masked
/// line, as `(lock_name, offset)` in textual order.
pub fn acquisitions(code: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for method in [".lock(", ".read(", ".write("] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(method) {
            let start = from + pos;
            let after = &code[start + method.len()..];
            if after.trim_start().starts_with(')') {
                out.push((receiver_name(&code[..start]), start));
            }
            from = start + method.len();
        }
    }
    out.sort_by_key(|(_, off)| *off);
    out
}

/// Last field/path segment of the receiver expression ending at `end`
/// (skipping a trailing `[..]` index group).
fn receiver_name(before: &str) -> String {
    let bytes = before.as_bytes();
    let mut i = bytes.len();
    // Skip a trailing index group: `fft_slots[idx]` → `fft_slots`.
    if i > 0 && bytes[i - 1] == b']' {
        let mut depth = 0i32;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = i;
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == end {
        "<expr>".to_string()
    } else {
        before[start..end].to_string()
    }
}

/// Stage-guard / DeltaGuard creation on this line.
fn hot_guard(code: &str) -> Option<&'static str> {
    if code.contains(".enter(") && code.trim_start().starts_with("let ") {
        return Some("SlotBoard stage guard");
    }
    if code.contains("DeltaGuard {") || code.contains("DeltaGuard::new(") {
        return Some("DeltaGuard");
    }
    None
}

/// Binding name of a `let` statement (handles `mut`, `Some(..)`,
/// `Ok(..)` patterns).
fn let_binding(code: &str) -> Option<String> {
    let rest = code.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let rest = rest
        .strip_prefix("Some(")
        .or_else(|| rest.strip_prefix("Ok("))
        .unwrap_or(rest);
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// `drop(x)` / `drop(st)` targets on this line.
fn drop_targets(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = crate::lexer::find_token(code, "drop", from) {
        let after = &code[pos + 4..];
        if let Some(inner) = after.strip_prefix('(') {
            let name: String = inner
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
        from = pos + 4;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{parse_source, resolve_calls, Workspace};

    fn ws(src: &str) -> Workspace {
        let mut w = Workspace::default();
        parse_source(&mut w, "t.rs", src);
        resolve_calls(&mut w);
        w
    }

    #[test]
    fn receiver_names() {
        assert_eq!(acquisitions("let g = self.state.lock();")[0].0, "state");
        let a = acquisitions("let s = arena.fft_slots[idx].lock();");
        assert_eq!(a[0].0, "fft_slots");
        assert!(acquisitions("sock.read(&mut buf)").is_empty());
        assert_eq!(
            acquisitions("let st = self.stage.write().unwrap_or_else(PoisonError::into_inner);")[0]
                .0,
            "stage"
        );
    }

    #[test]
    fn direct_cycle_detected() {
        let w = ws(
            "fn ab() {\n    let g1 = self_a.lock();\n    let g2 = self_b.lock();\n    drop(g2);\n    drop(g1);\n}\nfn ba() {\n    let g2 = self_b.lock();\n    let g1 = self_a.lock();\n    drop(g1);\n    drop(g2);\n}\n",
        );
        let v = run(&w);
        assert!(v.iter().any(|v| v.class == "lock-cycle"), "{v:?}");
    }

    #[test]
    fn scoped_guards_do_not_leak_order() {
        let w = ws(
            "fn ok() {\n    {\n        let g1 = self_a.lock();\n        drop(g1);\n    }\n    {\n        let g2 = self_b.lock();\n        drop(g2);\n    }\n}\nfn ok2() {\n    let g2 = self_b.lock();\n    drop(g2);\n    let g1 = self_a.lock();\n    drop(g1);\n}\n",
        );
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn transitive_cycle_via_callee() {
        let w = ws(
            "fn outer() {\n    let g = self_a.lock();\n    inner();\n    drop(g);\n}\nfn inner() {\n    let g = self_b.lock();\n    drop(g);\n}\nfn rev() {\n    let g = self_b.lock();\n    let h = self_a.lock();\n    drop(h);\n    drop(g);\n}\n",
        );
        let v = run(&w);
        assert!(v.iter().any(|v| v.class == "lock-cycle"), "{v:?}");
    }

    #[test]
    fn guard_held_lock_flagged_and_suppressible() {
        let w = ws(
            "fn steals() {\n    let Some(stage) = board.enter(ep) else { return };\n    let s = slots.lock();\n    drop(s);\n}\n",
        );
        let v = run(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].class, "guard-held-lock");

        let w2 = ws(
            "fn steals() {\n    let Some(stage) = board.enter(ep) else { return };\n    // analyze: allow(guard-held-lock): slot uncontended by protocol\n    let s = slots.lock();\n    drop(s);\n}\n",
        );
        assert!(run(&w2).is_empty());
    }

    #[test]
    fn temporaries_do_not_hold_across_lines() {
        let w = ws(
            "fn a() {\n    self_a.lock().push(1);\n    let g = self_b.lock();\n    drop(g);\n}\nfn b() {\n    self_b.lock().push(1);\n    let g = self_a.lock();\n    drop(g);\n}\n",
        );
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn self_deadlock_same_lock() {
        let w = ws("fn bad() {\n    let g = self_a.lock();\n    let h = self_a.lock();\n    drop(h);\n    drop(g);\n}\n");
        let v = run(&w);
        assert!(v.iter().any(|v| v.class == "lock-cycle"), "{v:?}");
    }
}
