//! Pass 4 — adversarial-input taint audit.
//!
//! PR 8 moved the fronthaul onto a real wire, so the receive path now
//! begins at **untrusted bytes**: anything a peer (or an attacker who
//! can spoof datagrams) puts on the network reaches `decode_hello`,
//! `parse_iq`, `RxSession::ingest_frame` and the TCP length-framed
//! reader before any other code sees it. This pass declares those
//! functions *untrusted-byte sources* and BFS-walks the call graph from
//! them, proving every reachable function is safe to run on attacker
//! input:
//!
//! * **`taint-panic`** — no `unwrap`/`expect`/`assert!`/`panic!`-family
//!   (same patterns as the purity pass). A panic on the io thread is a
//!   remote denial of service.
//! * **`taint-index`** — no unchecked indexing or slicing (`buf[i]`,
//!   `&buf[a..b]`): the one panic source the purity pass deliberately
//!   does not pattern-match (DESIGN.md §8) but which dominates real
//!   parser CVEs. Parsers must use `get(..)`/fixed-size reads, or carry
//!   a reasoned suppression stating the bound.
//! * **`taint-arith`** — no bare `+`/`-`/`*`/`<<` on lines mentioning
//!   length/seq/fragment-typed values unless the line uses
//!   `wrapping_*`/`checked_*`/`saturating_*`: in release builds these
//!   wrap silently and become the out-of-bounds offset one line later.
//! * **`taint-alloc`** — no allocation (purity's patterns): attacker
//!   bytes must not size heap requests on the per-frame path. Session-
//!   setup parsers (`decode_hello`, `negotiate`, `accept`) allow it —
//!   building the owned `StreamParams` is their job — but only behind
//!   the geometry caps (`wire::validate_geometry`).
//! * **`taint-loop`** — no `loop`/`while` whose trip count the input
//!   could control. `for` over slices is bounded by construction and
//!   stays legal; every surviving `while` must carry a suppression
//!   naming its bound (the service loops in `accept`/`start` are
//!   audited under masks that permit them).
//!
//! The BFS is scoped to the transport crates ([`SCOPE`]): a call that
//! resolves outside them crosses the trust boundary — by then the bytes
//! have been validated into typed, geometry-checked structures — and is
//! not descended into, though the *call-site line* is still scanned, so
//! an allocating or panicking adapter on the tainted line is caught
//! regardless of where the callee lives (same soundness argument as the
//! purity pass's handling of unresolved std calls).
//!
//! Suppressions use the shared syntax with the class name, e.g.
//! `// analyze: allow(taint-index): n <= scratch.len() checked above`.

use std::collections::{HashMap, VecDeque};

use crate::graph::{FnId, Workspace};
use crate::purity::{hit, suppression, ALLOC_PATTERNS, PANIC_PATTERNS};
use crate::Violation;

/// Taint effect classes as a bitmask.
pub mod tclass {
    pub const PANIC: u8 = 1 << 0;
    pub const INDEX: u8 = 1 << 1;
    pub const ARITH: u8 = 1 << 2;
    pub const ALLOC: u8 = 1 << 3;
    pub const LOOP: u8 = 1 << 4;
    pub const ALL: u8 = PANIC | INDEX | ARITH | ALLOC | LOOP;
}

/// Suppression/display name of each class bit.
pub fn class_name(bit: u8) -> &'static str {
    match bit {
        tclass::PANIC => "taint-panic",
        tclass::INDEX => "taint-index",
        tclass::ARITH => "taint-arith",
        tclass::ALLOC => "taint-alloc",
        tclass::LOOP => "taint-loop",
        _ => "taint",
    }
}

/// One untrusted-byte source and the classes denied along every path
/// reachable from it.
#[derive(Debug, Clone, Copy)]
pub struct Source {
    /// `impl` type qualifier, if the source is a method.
    pub type_qual: Option<&'static str>,
    /// Fn name.
    pub name: &'static str,
    /// Denied classes ([`tclass`] bits).
    pub deny: u8,
    /// Why this source has this mask — printed in reports.
    pub why: &'static str,
}

/// Per-frame parsers: everything is denied.
const FRAME: u8 = tclass::ALL;
/// Session-setup parsers: run once per connection, build owned params
/// behind the geometry caps — allocation is their job; panics, raw
/// indexing, unchecked arithmetic and input-driven loops still are not.
const SETUP: u8 = tclass::ALL & !tclass::ALLOC;
/// Service entry points (`accept`/`start`/io threads): additionally the
/// io loop runs forever by design, so `loop` is legal; the per-frame
/// work they dispatch to is audited under the stricter masks above.
const SERVICE: u8 = SETUP & !tclass::LOOP;

/// The declared untrusted-byte sources of the workspace: every function
/// a network peer's bytes reach before any validation has happened.
pub const SOURCES: &[Source] = &[
    // — wire.rs: frame codecs, the first code to touch raw bytes. —
    Source {
        type_qual: None,
        name: "decode_hello",
        deny: SETUP,
        why: "parses the first bytes a new peer sends; builds owned StreamParams behind validate_geometry",
    },
    Source {
        type_qual: None,
        name: "decode_hello_ack",
        deny: FRAME,
        why: "parses the worker's 4-byte ack on the aggregator",
    },
    Source {
        type_qual: None,
        name: "check_version",
        deny: FRAME,
        why: "version gate on attacker-announced version field",
    },
    Source {
        type_qual: None,
        name: "parse_iq",
        deny: FRAME,
        why: "per-frame IQ parse on the io thread's 1 ms path",
    },
    Source {
        type_qual: None,
        name: "dequantize_payload",
        deny: FRAME,
        why: "payload decode into preallocated sample buffers",
    },
    // — packet.rs: header codec and sequence tracking. —
    Source {
        type_qual: Some("PacketHeader"),
        name: "read_from",
        deny: FRAME,
        why: "12-byte header decode of untrusted frame bytes",
    },
    Source {
        type_qual: None,
        name: "seq_delta",
        deny: FRAME,
        why: "wrap-aware distance on attacker-controlled seq fields",
    },
    Source {
        type_qual: Some("SeqTracker"),
        name: "observe",
        deny: FRAME,
        why: "per-frame cursor advance driven by the wire seq",
    },
    Source {
        type_qual: Some("SeqTracker"),
        name: "prime",
        deny: FRAME,
        why: "first-frame cursor lock driven by the wire seq",
    },
    Source {
        type_qual: Some("SeqTracker"),
        name: "is_stale",
        deny: FRAME,
        why: "staleness probe on the wire seq",
    },
    // — session.rs: the reassembly state machine. —
    Source {
        type_qual: Some("RxSession"),
        name: "ingest_frame",
        deny: FRAME,
        why: "per-frame ingest: validate, seq-track, assemble, publish",
    },
    Source {
        type_qual: Some("RxSession"),
        name: "on_resync",
        deny: FRAME,
        why: "peer-triggered resync (reconnect / hello replay)",
    },
    Source {
        type_qual: Some("StreamParams"),
        name: "local_cell",
        deny: FRAME,
        why: "maps the wire bs_id to a local index on every frame",
    },
    // — framing.rs/tcp.rs/udp.rs: the socket-facing recv paths. —
    Source {
        type_qual: None,
        name: "read_full",
        deny: FRAME,
        why: "fills a fixed buffer from the socket; loop bound is buf.len()",
    },
    Source {
        type_qual: None,
        name: "read_frame",
        deny: FRAME,
        why: "length-framed TCP reassembly from an attacker-paced stream",
    },
    Source {
        type_qual: None,
        name: "negotiate",
        deny: SERVICE,
        why: "TCP hello/ack exchange; retries until stop, so the loop is a service loop",
    },
    Source {
        type_qual: Some("UdpRxPending"),
        name: "accept",
        deny: SERVICE,
        why: "UDP session acceptor + io thread; setup allocation and the forever io loop are its design",
    },
    Source {
        type_qual: Some("TcpRxPending"),
        name: "accept",
        deny: SERVICE,
        why: "TCP session acceptor; blocks for a valid hello then starts the io thread",
    },
    Source {
        type_qual: Some("TcpFronthaulRx"),
        name: "start",
        deny: SERVICE,
        why: "TCP io thread: read_frame/ingest/reconnect loop",
    },
    Source {
        type_qual: Some("UdpFronthaulRx"),
        name: "start",
        deny: SERVICE,
        why: "UDP io thread: recv/dispatch loop",
    },
    // — legacy in-process reassembly, still a byte-level parser. —
    Source {
        type_qual: Some("IqPacketizer"),
        name: "reassemble",
        deny: SETUP,
        why: "in-process packet reassembly; returns an owned sample vec (the one legal allocation)",
    },
];

/// Trust boundary: the BFS only descends into functions whose file path
/// starts with one of these prefixes. Everything else receives typed,
/// validated data (or is a tooling/test crate) and is covered by the
/// purity pass's hot-path seeds instead. An empty scope (fixtures)
/// disables the filter.
pub const SCOPE: &[&str] = &["crates/transport/src", "crates/transport-net/src"];

/// Arithmetic operators that wrap silently in release builds.
const ARITH_OPS: &[&str] = &[" + ", " - ", " * ", " << ", " += ", " -= ", " *= ", " <<= "];

/// Length/seq/fragment-typed identifiers: arithmetic on a line naming
/// one of these is flagged unless the line is explicitly checked.
const TAINTED_IDENTS: &[&str] = &[
    "len",
    "count",
    "off",
    "offset",
    "seq",
    "fragment",
    "frag",
    "frags",
    "total_fragments",
    "payload_len",
    "n_cells",
    "n_mcs",
    "samples",
    "antennas",
    "subframe",
    "remaining",
    "need",
];

/// Markers that make arithmetic on a line explicitly checked.
const CHECKED_MARKS: &[&str] = &[
    "wrapping_",
    "checked_",
    "saturating_",
    "overflowing_",
    "debug_assert",
];

/// Token match with both-side identifier guards (`len` must not match
/// inside `length` or `self.wlen`).
fn has_token(code: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(tok) {
        let start = from + pos;
        let end = start + tok.len();
        let pre = code[..start].chars().next_back();
        let post = code[end..].chars().next();
        let pre_ident = pre.is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post_ident = post.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !pre_ident && !post_ident {
            return true;
        }
        from = end;
    }
    false
}

/// Detects an index/slice expression: a `[` directly preceded by an
/// identifier character, `)`, or `]`. Attribute (`#[...]`), macro
/// (`vec![`), array-literal (`= [`), and type (`&[u8]`) brackets are
/// all preceded by non-identifier characters and stay legal.
fn has_index_expr(code: &str) -> bool {
    let mut prev = ' ';
    for c in code.chars() {
        if c == '[' && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}

/// Detects unchecked arithmetic on a tainted-named value.
fn has_tainted_arith(code: &str) -> Option<&'static str> {
    if CHECKED_MARKS.iter().any(|m| code.contains(m)) {
        return None;
    }
    let op = ARITH_OPS.iter().find(|op| code.contains(*op))?;
    TAINTED_IDENTS
        .iter()
        .any(|id| has_token(code, id))
        .then_some(op)
}

/// Detects a `loop`/`while` header (input-drivable trip count).
fn has_loop_header(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("loop") && t[4..].trim_start().starts_with('{')
        || t == "loop"
        || t.starts_with("while ")
        || t.starts_with("while(")
        || t.starts_with("while\t")
}

/// First denied pattern hit on a line, with the pattern for the report.
fn scan_line(code: &str, deny: u8) -> Option<(u8, String)> {
    if deny & tclass::PANIC != 0 {
        if let Some(p) = PANIC_PATTERNS.iter().find(|p| hit(code, p)) {
            return Some((tclass::PANIC, format!("`{p}`")));
        }
    }
    if deny & tclass::INDEX != 0 && has_index_expr(code) {
        return Some((tclass::INDEX, "unchecked index/slice".to_string()));
    }
    if deny & tclass::ARITH != 0 {
        if let Some(op) = has_tainted_arith(code) {
            return Some((
                tclass::ARITH,
                format!("unchecked `{}` on a length/seq-typed value", op.trim()),
            ));
        }
    }
    if deny & tclass::ALLOC != 0 {
        if let Some(p) = ALLOC_PATTERNS.iter().find(|p| hit(code, p)) {
            return Some((tclass::ALLOC, format!("`{p}`")));
        }
    }
    if deny & tclass::LOOP != 0 && has_loop_header(code) {
        return Some((
            tclass::LOOP,
            "`loop`/`while` on input-driven path".to_string(),
        ));
    }
    None
}

/// Runs the taint pass with the default [`SOURCES`] and [`SCOPE`].
pub fn run(ws: &Workspace) -> Vec<Violation> {
    run_with(ws, SOURCES, SCOPE)
}

/// Runs the taint pass with explicit sources and scope (fixture tests
/// pass an empty scope to disable the trust-boundary filter).
pub fn run_with(ws: &Workspace, sources: &[Source], scope: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();

    let mut source_roots: HashMap<FnId, usize> = HashMap::new();
    let mut roots_of: Vec<Vec<FnId>> = Vec::with_capacity(sources.len());
    for (si, src) in sources.iter().enumerate() {
        let ids = ws.find_fns(src.type_qual, src.name);
        if ids.is_empty() {
            out.push(Violation {
                file: String::new(),
                line: 0,
                pass: "taint",
                class: "source-missing",
                msg: format!(
                    "untrusted-byte source `{}` not found in the workspace — update the source table in crates/analyze/src/taint.rs",
                    source_label(src)
                ),
            });
        }
        for &id in &ids {
            source_roots.entry(id).or_insert(si);
        }
        roots_of.push(ids);
    }

    for (si, src) in sources.iter().enumerate() {
        for &root in &roots_of[si] {
            audit_source(ws, src, root, &source_roots, si, scope, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.msg).cmp(&(&b.file, b.line, &b.msg)));
    out.dedup_by(|a, b| {
        a.file == b.file
            && a.line == b.line
            && a.class == b.class
            && (a.line != 0 || a.msg == b.msg)
    });
    out
}

fn source_label(src: &Source) -> String {
    match src.type_qual {
        Some(t) => format!("{}::{}", t, src.name),
        None => src.name.to_string(),
    }
}

fn in_scope(ws: &Workspace, id: FnId, scope: &[&str]) -> bool {
    if scope.is_empty() {
        return true;
    }
    let path = &ws.files[ws.fns[id].file].path;
    scope.iter().any(|p| path.starts_with(p))
}

fn audit_source(
    ws: &Workspace,
    src: &Source,
    root: FnId,
    source_roots: &HashMap<FnId, usize>,
    source_idx: usize,
    scope: &[&str],
    out: &mut Vec<Violation>,
) {
    // BFS with parent tracking for witness chains; identical discipline
    // to the purity pass (per-edge suppressions, source shadowing), plus
    // the trust-boundary scope filter.
    let mut parent: HashMap<FnId, FnId> = HashMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    parent.insert(root, root);
    queue.push_back(root);

    while let Some(id) = queue.pop_front() {
        scan_fn(ws, src, root, id, &parent, out);
        for &ci in &ws.calls_by_fn[id] {
            let call = &ws.calls[ci];
            let file_lines = &ws.files[ws.fns[id].file].lines;
            if suppression(file_lines, call.line, &format!("call:{}", call.name)).is_some() {
                continue;
            }
            for &callee in &call.resolved {
                if ws.fns[callee].is_test
                    || parent.contains_key(&callee)
                    || !in_scope(ws, callee, scope)
                {
                    continue;
                }
                if let Some(&other) = source_roots.get(&callee) {
                    if other != source_idx {
                        continue;
                    }
                }
                parent.insert(callee, id);
                queue.push_back(callee);
            }
        }
    }
}

fn scan_fn(
    ws: &Workspace,
    src: &Source,
    root: FnId,
    id: FnId,
    parent: &HashMap<FnId, FnId>,
    out: &mut Vec<Violation>,
) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    for line in ws.body_lines(id) {
        let mut deny = src.deny;
        while deny != 0 {
            let Some((bit, what)) = scan_line(&line.code, deny) else {
                break;
            };
            deny &= !bit;
            if suppression(&file.lines, line.no, class_name(bit)).is_some() {
                continue;
            }
            let chain = witness_chain(ws, root, id, parent);
            out.push(Violation {
                file: file.path.clone(),
                line: line.no,
                pass: "taint",
                class: class_name(bit),
                msg: format!(
                    "{what} reachable from untrusted-byte source `{}` via {chain} (source contract: {}); fix it or annotate `// analyze: allow({}): <reason>`",
                    source_label(src),
                    src.why,
                    class_name(bit),
                ),
            });
        }
    }
}

fn witness_chain(ws: &Workspace, root: FnId, id: FnId, parent: &HashMap<FnId, FnId>) -> String {
    let mut chain = vec![id];
    let mut cur = id;
    while cur != root {
        let Some(&p) = parent.get(&cur) else { break };
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&f| ws.fns[f].label())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{parse_source, resolve_calls, Workspace};

    fn ws(src: &str) -> Workspace {
        let mut ws = Workspace::default();
        parse_source(&mut ws, "t.rs", src);
        resolve_calls(&mut ws);
        ws
    }

    const SRC: &[Source] = &[Source {
        type_qual: None,
        name: "ingest",
        deny: tclass::ALL,
        why: "test source",
    }];

    fn run_t(w: &Workspace) -> Vec<Violation> {
        run_with(w, SRC, &[])
    }

    #[test]
    fn unchecked_index_is_flagged_transitively() {
        let w = ws("fn ingest(b: &[u8]) {\n    inner(b);\n}\nfn inner(b: &[u8]) {\n    let _x = b[0];\n}\n");
        let v = run_t(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].class, "taint-index");
        assert!(v[0].msg.contains("ingest -> inner"), "{}", v[0].msg);
    }

    #[test]
    fn get_based_access_is_legal() {
        let w = ws("fn ingest(b: &[u8]) {\n    let _x = b.get(0);\n    let _y: &[u8] = &b[..]; // analyze: allow(taint-index): full-range slice cannot panic\n}\n");
        let relevant: Vec<_> = run_t(&w)
            .into_iter()
            .filter(|v| v.class == "taint-index")
            .collect();
        assert!(relevant.is_empty(), "{relevant:?}");
    }

    #[test]
    fn attribute_and_macro_brackets_are_not_indexing() {
        let w = ws("fn ingest(b: &[u8]) {\n    #[allow(dead_code)]\n    let _v: &[u8] = b;\n    let _w = [0u8; 4];\n}\n");
        assert!(run_t(&w).is_empty(), "{:?}", run_t(&w));
    }

    #[test]
    fn tainted_arith_is_flagged_and_wrapping_is_legal() {
        let w = ws("fn ingest(b: &[u8]) {\n    let payload_len = b.len();\n    let _x = payload_len * 4;\n}\n");
        let v = run_t(&w);
        assert!(v.iter().any(|v| v.class == "taint-arith"), "{v:?}");
        let w2 = ws("fn ingest(b: &[u8]) {\n    let payload_len = b.len();\n    let _x = payload_len.checked_mul(4);\n}\n");
        assert!(
            !run_t(&w2).iter().any(|v| v.class == "taint-arith"),
            "{:?}",
            run_t(&w2)
        );
    }

    #[test]
    fn arith_on_untainted_names_is_legal() {
        let w = ws("fn ingest(_b: &[u8]) {\n    let budget = 3;\n    let _x = budget * 4;\n}\n");
        assert!(run_t(&w).is_empty(), "{:?}", run_t(&w));
    }

    #[test]
    fn panic_and_alloc_reuse_purity_patterns() {
        let w = ws("fn ingest(b: &[u8]) {\n    let v = b.to_vec();\n    v.first().unwrap();\n}\n");
        let classes: Vec<_> = run_t(&w).iter().map(|v| v.class).collect();
        assert!(classes.contains(&"taint-alloc"), "{classes:?}");
        assert!(classes.contains(&"taint-panic"), "{classes:?}");
    }

    #[test]
    fn while_loop_is_flagged_for_is_bounded() {
        let w = ws("fn ingest(b: &[u8]) {\n    while !b.is_empty() {\n    }\n    for _x in b {\n    }\n}\n");
        let v = run_t(&w);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].class, "taint-loop");
    }

    #[test]
    fn mask_gates_classes() {
        let srcs: &[Source] = &[Source {
            type_qual: None,
            name: "ingest",
            deny: tclass::PANIC,
            why: "panic only",
        }];
        let w = ws("fn ingest(b: &[u8]) {\n    let _x = b[0];\n}\n");
        assert!(run_with(&w, srcs, &[]).is_empty());
    }

    #[test]
    fn scope_cuts_the_trust_boundary() {
        let mut w = Workspace::default();
        parse_source(
            &mut w,
            "crates/transport/src/a.rs",
            "fn ingest(b: &[u8]) {\n    outside(b);\n}\n",
        );
        parse_source(
            &mut w,
            "crates/core/src/b.rs",
            "pub fn outside(b: &[u8]) {\n    let _x = b[0];\n}\n",
        );
        resolve_calls(&mut w);
        let v = run_with(&w, SRC, &["crates/transport/src"]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_source_is_reported() {
        let w = ws("fn other() {}\n");
        let v = run_t(&w);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].class, "source-missing");
    }

    #[test]
    fn suppression_with_reason_clears_each_class() {
        let w = ws(concat!(
            "fn ingest(b: &[u8]) {\n",
            "    // analyze: allow(taint-index): header length checked two lines up\n",
            "    let _x = b[0];\n",
            "    let seq = 1u32;\n",
            "    // analyze: allow(taint-arith): seq is u32, wrap is the protocol\n",
            "    let _y = seq + 1;\n",
            "}\n"
        ));
        assert!(run_t(&w).is_empty(), "{:?}", run_t(&w));
    }

    #[test]
    fn multiple_classes_on_one_line_all_reported() {
        let w = ws("fn ingest(b: &[u8]) {\n    let payload_len = 4;\n    let _v = b[payload_len * 2..].to_vec();\n}\n");
        let classes: Vec<_> = run_t(&w).iter().map(|v| v.class).collect();
        assert!(classes.contains(&"taint-index"), "{classes:?}");
        assert!(classes.contains(&"taint-arith"), "{classes:?}");
        assert!(classes.contains(&"taint-alloc"), "{classes:?}");
    }
}
