//! Pass 3 — the static Eq. 3 schedulability audit.
//!
//! Re-derives the paper's deadline arithmetic from the *tracked* bench
//! baselines alone (`BENCH_kernels.json`, `BENCH_node.json`) and gates
//! every shipped scheduler config against it:
//!
//! * **Eq. 3 budget** — a γ-calibrated kernel component model (FFT
//!   `n·log₂n` fit, turbo linear-in-K interpolation over the measured
//!   {512, 2048, 6144} points, per-Qm demapper scaling) estimates the
//!   worst-MCS subframe processing time `T̂_w` per (bandwidth, MCS);
//!   every shipped (scheduler, cells, MCS) tuple must satisfy
//!   `T̂_w ≤ 2·period − rtt_half` (the dilated Eq. 3 budget) and the
//!   2-cores-per-cell utilization bound `T̂_w ≤ 2·period`.
//! * **δ admission sanity** — a config's declared δ must not be below
//!   the *measured* handoff overhead of its migration path
//!   (`steal_delta` / `mailbox_delta` from `BENCH_node.json`) nor below
//!   the smallest migratable subtask (an FFT transform): a δ smaller
//!   than either makes Alg. 1's `tp + δ ≤ slack` test admit migrations
//!   whose bookkeeping exceeds the work moved.
//! * **capacity reproduction** — recomputes `cells_sustained` per mode
//!   from the raw miss arrays + threshold (the leading-run rule the
//!   experiment uses) and fails if the recomputed table drifts from the
//!   recorded one or if the paper's ordering steal ≥ mutex ≥ global no
//!   longer holds.
//! * **fleet-level pooling gate** (`BENCH_sim.json`) — re-fits the
//!   pooling curve `cells/core = a + b/H` from the recorded per-mode
//!   sweep arrays and flags any shipped fleet deployment whose
//!   `cells_per_host` exceeds the fitted capacity at its fleet size,
//!   plus the engine-throughput floor (wheel ≥ [`MIN_ENGINE_SPEEDUP`]×
//!   the seed heap engine) and the wheel/heap bit-identity witness.
//!
//! The PHY structure (FFT sizes, PRB/TBS tables, turbo segmentation)
//! and the shipped configs are *mirrored* here rather than imported, so
//! the analyzer stays dependency-free; `tests/mirror_check.rs` proves
//! (via dev-dependencies) that every mirrored table equals the shipped
//! constructors' output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::Json;
use crate::Violation;

// ---------------------------------------------------------------------
// Mirrored LTE structure (cross-checked by tests/mirror_check.rs).
// ---------------------------------------------------------------------

/// Mirrored `rtopex_phy::params::Bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bw {
    Mhz1_4,
    Mhz3,
    Mhz5,
    Mhz10,
    Mhz15,
    Mhz20,
}

/// Mirrored `SYMBOLS_PER_SUBFRAME`.
pub const SYMBOLS_PER_SUBFRAME: usize = 14;

impl Bw {
    pub const fn fft_size(self) -> usize {
        match self {
            Bw::Mhz1_4 => 128,
            Bw::Mhz3 => 256,
            Bw::Mhz5 => 512,
            Bw::Mhz10 => 1024,
            Bw::Mhz15 => 1536,
            Bw::Mhz20 => 2048,
        }
    }

    pub const fn num_prbs(self) -> usize {
        match self {
            Bw::Mhz1_4 => 6,
            Bw::Mhz3 => 15,
            Bw::Mhz5 => 25,
            Bw::Mhz10 => 50,
            Bw::Mhz15 => 75,
            Bw::Mhz20 => 100,
        }
    }

    pub const fn num_subcarriers(self) -> usize {
        self.num_prbs() * 12
    }

    /// Data REs: everything except the two DMRS symbols.
    pub const fn data_res(self) -> usize {
        self.num_subcarriers() * (SYMBOLS_PER_SUBFRAME - 2)
    }

    pub const fn label(self) -> &'static str {
        match self {
            Bw::Mhz1_4 => "1.4MHz",
            Bw::Mhz3 => "3MHz",
            Bw::Mhz5 => "5MHz",
            Bw::Mhz10 => "10MHz",
            Bw::Mhz15 => "15MHz",
            Bw::Mhz20 => "20MHz",
        }
    }
}

/// Mirrored `Mcs::modulation_order`.
pub const fn qm(mcs: u8) -> usize {
    match mcs {
        0..=10 => 2,
        11..=20 => 4,
        _ => 6,
    }
}

/// Mirrored 36.213 TBS column for N_PRB = 50, indexed by I_TBS.
const TBS_50PRB: [usize; 27] = [
    1384, 1800, 2216, 2856, 3624, 4392, 5160, 6200, 6968, 7992, 8760, 9912, 11448, 12960, 14112,
    15264, 16416, 18336, 19848, 21384, 22920, 25456, 27376, 28336, 30576, 31704, 32856,
];

/// Mirrored `Mcs::tbs_index` + `transport_block_bits`.
pub fn tbs_bits(mcs: u8, nprb: usize) -> usize {
    let i_tbs = match mcs {
        0..=10 => mcs as usize,
        11..=20 => mcs as usize - 1,
        _ => mcs as usize - 2,
    };
    let base = TBS_50PRB[i_tbs];
    if nprb == 50 {
        return base;
    }
    let scaled = base as u64 * nprb as u64 / 50;
    ((scaled / 8 * 8) as usize).max(16)
}

const MAX_CODE_BLOCK: usize = 6144;
const BLOCK_CRC_LEN: usize = 24;
/// Transport-block CRC24A length prepended before segmentation.
pub const TB_CRC_LEN: usize = 24;

fn next_valid_k(want: usize) -> Option<usize> {
    if want > MAX_CODE_BLOCK {
        return None;
    }
    Some(if want <= 512 {
        40usize.max(want.div_ceil(8) * 8)
    } else if want <= 1024 {
        want.div_ceil(16) * 16
    } else if want <= 2048 {
        want.div_ceil(32) * 32
    } else {
        want.div_ceil(64) * 64
    })
}

fn prev_valid_k(k: usize) -> Option<usize> {
    if k <= 40 {
        return None;
    }
    let want = k - 1;
    Some(if want <= 512 {
        40usize.max(want / 8 * 8)
    } else if want <= 1024 {
        (want / 16 * 16).max(512)
    } else if want <= 2048 {
        (want / 32 * 32).max(1024)
    } else {
        (want / 64 * 64).max(2048)
    })
}

/// Mirrored `Segmentation::compute(b).block_sizes()` for a transport
/// block of `b` bits (TB CRC included).
pub fn block_sizes(b: usize) -> Vec<usize> {
    let (c, b_prime) = if b <= MAX_CODE_BLOCK {
        (1, b)
    } else {
        let c = b.div_ceil(MAX_CODE_BLOCK - BLOCK_CRC_LEN);
        (c, b + c * BLOCK_CRC_LEN)
    };
    let Some(k_plus) = next_valid_k(b_prime.div_ceil(c)) else {
        return Vec::new();
    };
    let (k_minus, c_minus, c_plus) = if c == 1 {
        (0, 0, 1)
    } else {
        match prev_valid_k(k_plus) {
            Some(k_minus) => {
                let delta = k_plus - k_minus;
                let c_minus = (c * k_plus - b_prime) / delta;
                (k_minus, c_minus, c - c_minus)
            }
            None => (0, 0, c),
        }
    };
    let mut out = vec![k_minus; c_minus];
    out.extend(std::iter::repeat_n(k_plus, c_plus));
    out
}

// ---------------------------------------------------------------------
// Mirrored shipped configs (cross-checked by tests/mirror_check.rs).
// ---------------------------------------------------------------------

/// Scheduler modes, named as in `BENCH_node.json`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Partitioned,
    Global,
    RtOpexMutex,
    RtOpexSteal,
}

impl Mode {
    pub const fn key(self) -> &'static str {
        match self {
            Mode::Partitioned => "partitioned",
            Mode::Global => "global",
            Mode::RtOpexMutex => "rtopex_mutex",
            Mode::RtOpexSteal => "rtopex_steal",
        }
    }
}

/// A mirrored shipped scheduler config.
#[derive(Clone, Debug)]
pub struct MirrorConfig {
    /// Short name used in the report.
    pub name: &'static str,
    /// Source file declaring the real constructor (for diagnostics).
    pub file: &'static str,
    pub bw: Bw,
    pub cells: usize,
    pub period_us: f64,
    pub rtt_half_us: f64,
    pub mcs_pool: &'static [u8],
    pub delta_us: f64,
    /// Modes the config ships with / is swept over.
    pub modes: &'static [Mode],
}

impl MirrorConfig {
    /// Dilated Eq. 3 budget: `2·period − rtt_half`.
    pub fn budget_us(&self) -> f64 {
        2.0 * self.period_us - self.rtt_half_us
    }
}

/// Every scheduler config the repo ships.
pub fn shipped_configs() -> Vec<MirrorConfig> {
    vec![
        MirrorConfig {
            name: "cluster-demo",
            file: "crates/runtime/src/cluster.rs",
            bw: Bw::Mhz1_4,
            cells: 3,
            period_us: 1_000.0,
            rtt_half_us: 1_000.0,
            mcs_pool: &[5, 10, 16, 22, 27],
            delta_us: 60.0,
            modes: &[Mode::RtOpexSteal],
        },
        MirrorConfig {
            name: "node-demo",
            file: "crates/runtime/src/node.rs",
            bw: Bw::Mhz1_4,
            cells: 2,
            period_us: 1_000.0,
            rtt_half_us: 1_000.0,
            mcs_pool: &[5, 10, 16, 22, 27],
            delta_us: 60.0,
            modes: &[Mode::RtOpexMutex],
        },
        MirrorConfig {
            name: "example-cran-node",
            file: "examples/cran_node.rs",
            bw: Bw::Mhz1_4,
            cells: 2,
            period_us: 1_000.0,
            rtt_half_us: 1_000.0,
            mcs_pool: &[10, 16, 27],
            delta_us: 60.0,
            modes: &[Mode::Partitioned, Mode::RtOpexMutex, Mode::RtOpexSteal],
        },
        MirrorConfig {
            name: "experiments-cluster-sweep",
            file: "crates/experiments/src/cluster_scale.rs",
            bw: Bw::Mhz5,
            cells: 5,
            period_us: 6_000.0,
            rtt_half_us: 7_000.0,
            mcs_pool: &[5, 10, 16, 22, 27],
            delta_us: 60.0,
            modes: &[
                Mode::Partitioned,
                Mode::Global,
                Mode::RtOpexMutex,
                Mode::RtOpexSteal,
            ],
        },
    ]
}

// ---------------------------------------------------------------------
// Tracked bench baselines.
// ---------------------------------------------------------------------

/// Minimum recorded batched-turbo speedup (`batched.*.speedup` in
/// `BENCH_kernels.json`) the tracked baseline must keep: the cross-cell
/// batched drain exists to outrun per-call dispatch, so a recorded batch
/// that no longer pays for itself is a regression to profile before
/// re-recording. The floor sits under the ~1.35× measured at batch 4 so
/// host-noise jitter across re-records does not flap the gate.
pub const MIN_BATCH_SPEEDUP: f64 = 1.2;

/// One `machine` fingerprint from a tracked `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineFp {
    pub cpu: String,
    pub cores: usize,
    /// Widest SIMD tier (empty when an old file predates the field).
    pub simd_tier: String,
}

/// Parses the `machine` block of any `BENCH_*.json`.
pub fn parse_machine(src: &str) -> Result<MachineFp, String> {
    let j = Json::parse(src)?;
    let m = j.get("machine").ok_or("missing `machine` block")?;
    Ok(MachineFp {
        cpu: m
            .get("cpu")
            .and_then(Json::as_str)
            .ok_or("missing machine.cpu")?
            .to_string(),
        cores: m
            .get("cores")
            .and_then(Json::as_f64)
            .ok_or("missing machine.cores")? as usize,
        simd_tier: m
            .get("simd_tier")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
    })
}

/// Cross-checks the machine fingerprints of the tracked baselines. The γ
/// calibration transfers `BENCH_kernels.json` measurements onto
/// `BENCH_node.json` budgets (and the fleet gate extrapolates from
/// `BENCH_sim.json`), which is only meaningful when every file was
/// recorded on the same machine — CPU model, core count and widest SIMD
/// tier must all agree, or the whole Eq. 3 audit compares apples to
/// oranges.
pub fn audit_machines(files: &[(&str, &str)]) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut parsed: Vec<(&str, MachineFp)> = Vec::new();
    for (name, src) in files {
        match parse_machine(src) {
            Ok(fp) => parsed.push((name, fp)),
            Err(e) => v.push(Violation {
                file: name.to_string(),
                line: 0,
                pass: "sched",
                class: "machine-fingerprint",
                msg: format!(
                    "{e} — regenerate with rtopex-bench so the analyzer can refuse cross-machine baseline comparisons"
                ),
            }),
        }
    }
    let Some((first_name, first)) = parsed.first() else {
        return v;
    };
    for (name, fp) in &parsed[1..] {
        let tier_differs = !fp.simd_tier.is_empty()
            && !first.simd_tier.is_empty()
            && fp.simd_tier != first.simd_tier;
        if fp.cpu != first.cpu || fp.cores != first.cores || tier_differs {
            v.push(Violation {
                file: name.to_string(),
                line: 0,
                pass: "sched",
                class: "machine-mismatch",
                msg: format!(
                    "machine fingerprint ({}, {} cores, {}) disagrees with {first_name} ({}, {} cores, {}) — baselines from different machines cannot be compared; regenerate all BENCH_*.json on one host",
                    fp.cpu, fp.cores, fp.simd_tier, first.cpu, first.cores, first.simd_tier
                ),
            });
        }
    }
    v
}

/// Recorded batched-dispatch speedups from `BENCH_kernels.json`
/// (`batched.*.speedup`); empty when the section is absent (fixtures
/// predating batched dispatch).
pub fn parse_batched(src: &str) -> Result<Vec<(String, f64)>, String> {
    let j = Json::parse(src)?;
    let Some(b) = j.get("batched") else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for (key, val) in b.fields() {
        let s = val
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing speedup for batched entry `{key}`"))?;
        out.push((key.clone(), s));
    }
    Ok(out)
}

/// WCET inputs parsed from `BENCH_kernels.json`.
#[derive(Debug, Clone)]
pub struct KernelTable {
    /// Measured turbo per-iteration cost as `(K, ns)` points, ascending.
    pub turbo: Vec<(f64, f64)>,
    /// Per-data-symbol demap cost for Qm 2/4/6 (ns).
    pub demap_per_sym_ns: [f64; 3],
    /// Per-RE MRC/equalize cost at 2 antennas (ns).
    pub mrc_per_re_ns: f64,
    /// Measured FFT forward costs as `(n, ns)` points.
    pub fft: Vec<(usize, f64)>,
    /// Measured end-to-end subframe decode, 1.4 MHz MCS 27 (ns) — the
    /// γ-calibration anchor.
    pub subframe_ref_ns: f64,
}

/// Parses `BENCH_kernels.json`.
pub fn parse_kernels(src: &str) -> Result<KernelTable, String> {
    let j = Json::parse(src)?;
    let kernels = j.get("kernels").ok_or("missing `kernels` object")?;
    let mean = |name: &str| -> Result<f64, String> {
        kernels
            .path(&[name, "mean_ns"])
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing kernel `{name}`"))
    };
    let mut turbo = Vec::new();
    let mut fft = Vec::new();
    for (key, _) in kernels.fields() {
        if let Some(k) = key.strip_prefix("turbo_decode_1iter_") {
            let k: f64 = k.parse().map_err(|_| format!("bad turbo key `{key}`"))?;
            turbo.push((k, mean(key)?));
        } else if let Some(n) = key.strip_prefix("fft_forward_") {
            let n: usize = n.parse().map_err(|_| format!("bad fft key `{key}`"))?;
            fft.push((n, mean(key)?));
        }
    }
    turbo.sort_by(|a, b| a.0.total_cmp(&b.0));
    fft.sort_by_key(|(n, _)| *n);
    if turbo.len() < 2 {
        return Err("need at least two turbo_decode_1iter_* points".into());
    }
    Ok(KernelTable {
        turbo,
        demap_per_sym_ns: [
            mean("demap_600sym_qm_2")? / 600.0,
            mean("demap_600sym_qm_4")? / 600.0,
            mean("demap_600sym_qm_6")? / 600.0,
        ],
        mrc_per_re_ns: mean("mrc_600sc_2ant_600")? / 600.0,
        fft,
        subframe_ref_ns: mean("subframe_decode_mhz1_4_mcs_27")?,
    })
}

/// Migration-overhead and capacity inputs parsed from `BENCH_node.json`.
#[derive(Debug, Clone)]
pub struct NodeBench {
    /// Worst measured steal-path handoff delta (µs).
    pub steal_delta_us: f64,
    /// Worst measured mailbox handoff delta (µs).
    pub mailbox_delta_us: f64,
    /// Sweep miss threshold.
    pub miss_threshold: f64,
    /// Per-mode `(key, miss array, recorded cells_sustained)`.
    pub modes: Vec<(String, Vec<f64>, usize)>,
    /// Recorded headline claim.
    pub headline_steal_ge_mutex: bool,
    /// Batched-vs-unbatched steal sweep, when recorded.
    pub batching: Option<BatchingBench>,
    /// Real-network fronthaul section, when recorded.
    pub multihost: Option<MultihostBench>,
}

/// The `batching` block of `BENCH_node.json`: the steal sweep with and
/// without cross-cell batched decode dispatch.
#[derive(Debug, Clone)]
pub struct BatchingBench {
    pub batched_miss: Vec<f64>,
    pub batched_sustained: usize,
    pub unbatched_miss: Vec<f64>,
    pub unbatched_sustained: usize,
}

/// The `multihost` block of `BENCH_node.json`: per-transport fronthaul
/// rx overheads on loopback plus the verdict of the localhost
/// multi-process demo (`rtopex-fronthaul --spawn`).
#[derive(Debug, Clone)]
pub struct MultihostBench {
    /// Cadence period (µs) the overheads were measured against.
    pub period_us: f64,
    /// Per-transport `(name, handoff_p50_us, rx_per_subframe_us)`.
    pub transports: Vec<(String, f64, f64)>,
    /// Aggregate miss rate of the spawned multi-process demo.
    pub demo_miss_rate: f64,
    /// Sequence gaps observed by the demo workers.
    pub demo_gaps: f64,
    /// Recorded demo verdict (miss bar + crc + full delivery).
    pub demo_ok: bool,
}

/// Parses `BENCH_node.json`.
pub fn parse_node(src: &str) -> Result<NodeBench, String> {
    let j = Json::parse(src)?;
    let delta = |path: &[&str]| -> Result<f64, String> {
        j.path(path)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing `{}`", path.join(".")))
    };
    let steal_delta_us = delta(&["steal_path", "fft", "steal_delta_us"])?.max(delta(&[
        "steal_path",
        "decode",
        "steal_delta_us",
    ])?);
    let mailbox_delta_us = delta(&["steal_path", "fft", "mailbox_delta_us"])?.max(delta(&[
        "steal_path",
        "decode",
        "mailbox_delta_us",
    ])?);
    let miss_threshold = delta(&["sweep", "config", "miss_threshold"])?;
    let mut modes = Vec::new();
    for (key, val) in j
        .path(&["sweep", "modes"])
        .ok_or("missing sweep.modes")?
        .fields()
    {
        let miss: Vec<f64> = val
            .get("miss")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing miss array for `{key}`"))?
            .iter()
            .filter_map(Json::as_f64)
            .collect();
        let recorded = val
            .get("cells_sustained")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing cells_sustained for `{key}`"))?
            as usize;
        modes.push((key.clone(), miss, recorded));
    }
    let batching = j.get("batching").map(|b| {
        let arm = |which: &str| -> (Vec<f64>, usize) {
            let miss = b
                .path(&[which, "miss"])
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(Json::as_f64).collect())
                .unwrap_or_default();
            let sustained = b
                .path(&[which, "cells_sustained"])
                .and_then(Json::as_f64)
                .unwrap_or(-1.0) as usize;
            (miss, sustained)
        };
        let (batched_miss, batched_sustained) = arm("batched");
        let (unbatched_miss, unbatched_sustained) = arm("unbatched");
        BatchingBench {
            batched_miss,
            batched_sustained,
            unbatched_miss,
            unbatched_sustained,
        }
    });
    let multihost = j.get("multihost").map(|m| {
        let mut transports = Vec::new();
        if let Some(t) = m.get("transports") {
            for (name, val) in t.fields() {
                transports.push((
                    name.clone(),
                    val.get("handoff_p50_us")
                        .and_then(Json::as_f64)
                        .unwrap_or(-1.0),
                    val.get("rx_per_subframe_us")
                        .and_then(Json::as_f64)
                        .unwrap_or(-1.0),
                ));
            }
        }
        MultihostBench {
            period_us: m.get("period_us").and_then(Json::as_f64).unwrap_or(0.0),
            transports,
            demo_miss_rate: m
                .path(&["demo", "miss_rate"])
                .and_then(Json::as_f64)
                .unwrap_or(1.0),
            demo_gaps: m
                .path(&["demo", "gaps"])
                .and_then(Json::as_f64)
                .unwrap_or(-1.0),
            demo_ok: m
                .path(&["demo", "ok"])
                .and_then(Json::as_bool)
                .unwrap_or(false),
        }
    });
    Ok(NodeBench {
        steal_delta_us,
        mailbox_delta_us,
        miss_threshold,
        modes,
        headline_steal_ge_mutex: j
            .path(&["headline", "steal_ge_mutex"])
            .and_then(Json::as_bool)
            .unwrap_or(false),
        batching,
        multihost,
    })
}

// ---------------------------------------------------------------------
// The γ-calibrated component model.
// ---------------------------------------------------------------------

/// Modeled FFT cost (ns) for size `n`: measured point if tracked,
/// otherwise an `n·log₂n` fit whose per-op constant is interpolated in
/// `log₂n` between the power-of-two anchors.
pub fn fft_cost_ns(t: &KernelTable, n: usize) -> f64 {
    if let Some((_, ns)) = t.fft.iter().find(|(m, _)| *m == n) {
        return *ns;
    }
    let anchors: Vec<(f64, f64)> = t
        .fft
        .iter()
        .filter(|(m, _)| m.is_power_of_two())
        .map(|(m, ns)| {
            let lg = (*m as f64).log2();
            (lg, ns / (*m as f64 * lg))
        })
        .collect();
    let lg = (n as f64).log2();
    let c = interp(&anchors, lg);
    c * n as f64 * lg
}

/// Modeled turbo per-iteration cost (ns) at block size `k`, linear
/// between the measured K points (clamped extrapolation outside).
pub fn iter_cost_ns(t: &KernelTable, k: usize) -> f64 {
    interp(&t.turbo, k as f64)
}

/// Piecewise-linear interpolation over ascending `(x, y)` points.
fn interp(points: &[(f64, f64)], x: f64) -> f64 {
    match points {
        [] => 0.0,
        [(_, y)] => *y,
        _ => {
            let i = points
                .windows(2)
                .position(|w| x <= w[1].0)
                .unwrap_or(points.len() - 2);
            let (x0, y0) = points[i];
            let (x1, y1) = points[i + 1];
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        }
    }
}

/// Uncalibrated subframe component model (ns).
pub fn modeled_subframe_ns(t: &KernelTable, bw: Bw, mcs: u8, antennas: usize) -> f64 {
    let ffts = (SYMBOLS_PER_SUBFRAME * antennas) as f64 * fft_cost_ns(t, bw.fft_size());
    let mrc = t.mrc_per_re_ns
        * (bw.num_subcarriers() * SYMBOLS_PER_SUBFRAME) as f64
        * (antennas as f64 / 2.0);
    let qi = match qm(mcs) {
        2 => 0,
        4 => 1,
        _ => 2,
    };
    let demap = t.demap_per_sym_ns[qi] * bw.data_res() as f64;
    let b = tbs_bits(mcs, bw.num_prbs()) + TB_CRC_LEN;
    let turbo: f64 = block_sizes(b)
        .iter()
        .map(|&k| iter_cost_ns(t, k) * MAX_TURBO_ITERS as f64)
        .sum();
    ffts + mrc + demap + turbo
}

/// Mirrored `DEFAULT_MAX_TURBO_ITERS`.
pub const MAX_TURBO_ITERS: usize = 4;

/// Calibration factor γ: measured end-to-end subframe decode over the
/// component model at the same operating point (1.4 MHz, MCS 27,
/// 2 antennas). γ < 1 captures early-terminating turbo iterations and
/// cache effects the per-kernel microbenches cannot see.
pub fn gamma(t: &KernelTable) -> f64 {
    t.subframe_ref_ns / modeled_subframe_ns(t, Bw::Mhz1_4, 27, 2)
}

/// Calibrated subframe processing estimate `T̂` (µs).
pub fn estimate_us(t: &KernelTable, bw: Bw, mcs: u8, antennas: usize) -> f64 {
    gamma(t) * modeled_subframe_ns(t, bw, mcs, antennas) / 1_000.0
}

/// Smallest migratable subtask (µs): one FFT transform — the finest
/// granule `fanout_steal` publishes.
pub fn smallest_subtask_us(t: &KernelTable, bw: Bw) -> f64 {
    gamma(t) * fft_cost_ns(t, bw.fft_size()) / 1_000.0
}

/// The leading-run capacity rule the cluster sweep uses: cells
/// sustained = longest prefix of the miss array under the threshold.
pub fn cells_sustained(miss: &[f64], threshold: f64) -> usize {
    miss.iter().take_while(|m| **m < threshold).count()
}

// ---------------------------------------------------------------------
// Mirrored fleet deployments + pooling-curve fit
// (cross-checked by tests/mirror_check.rs).
// ---------------------------------------------------------------------

/// Minimum wheel-vs-heap speedup the tracked full-scale engine run must
/// keep — the PR's headline throughput claim, enforced as a gate so a
/// regression in the wheel/streaming hot loop cannot land silently. The
/// gated number is `engine.engine_speedup`: the partitioned-scheduler
/// measurement, which isolates the event-queue + workload-generation
/// change (the rtopex/global rows are diluted by scheduler logic both
/// engines share and are recorded, not gated).
pub const MIN_ENGINE_SPEEDUP: f64 = 10.0;

/// Mirrored `rtopex_experiments::pooling::CORE_BUDGET`.
pub const FLEET_CORE_BUDGET: usize = 8;

/// Mirrored `rtopex_experiments::pooling::MISS_BUDGET`.
pub const FLEET_MISS_BUDGET: f64 = 5e-3;

/// A mirrored `rtopex_experiments::pooling::FleetDeployment`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetMirror {
    pub name: &'static str,
    pub hosts: usize,
    /// Pooling-sweep mode name (a `pooling.modes` key in `BENCH_sim.json`).
    pub mode: &'static str,
    pub cells_per_host: usize,
}

/// Mirrored `rtopex_experiments::pooling::SHIPPED_FLEET_CONFIGS`.
pub fn shipped_fleet_configs() -> Vec<FleetMirror> {
    vec![
        FleetMirror {
            name: "edge-4",
            hosts: 4,
            mode: "rtopex-steal",
            cells_per_host: 4,
        },
        FleetMirror {
            name: "metro-16",
            hosts: 16,
            mode: "rtopex-steal",
            cells_per_host: 4,
        },
        FleetMirror {
            name: "region-64",
            hosts: 64,
            mode: "partitioned",
            cells_per_host: 4,
        },
    ]
}

/// Mirrored `rtopex_experiments::pooling::fit_inverse`: least-squares
/// fit of `y = a + b/H` in `x = 1/H`, returning `(a, b)`.
pub fn fit_inverse(hosts: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(hosts.len(), y.len(), "fit needs one y per fleet size");
    assert!(!hosts.is_empty(), "fit needs at least one point");
    let n = hosts.len() as f64;
    let xs: Vec<f64> = hosts.iter().map(|&h| 1.0 / h).collect();
    let xbar = xs.iter().sum::<f64>() / n;
    let ybar = y.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - xbar) * (x - xbar)).sum();
    if sxx == 0.0 {
        return (ybar, 0.0);
    }
    let sxy: f64 = xs
        .iter()
        .zip(y)
        .map(|(x, yv)| (x - xbar) * (yv - ybar))
        .sum();
    let b = sxy / sxx;
    (ybar - b * xbar, b)
}

/// Predicted whole-cell capacity of one [`FLEET_CORE_BUDGET`]-core host
/// in a fleet of `hosts` hosts, from a fitted `(a, b)` curve.
pub fn fleet_capacity(fit: (f64, f64), hosts: usize) -> usize {
    ((fit.0 + fit.1 / hosts as f64) * FLEET_CORE_BUDGET as f64).floor() as usize
}

/// One scheduler's wheel-vs-heap row from `engine.wheel_vs_heap`.
#[derive(Debug, Clone)]
pub struct EngineRow {
    pub name: String,
    pub speedup: f64,
    /// Whether the two engines produced bit-identical reports.
    pub reports_match: bool,
}

/// One mode's recorded pooling curve from `pooling.modes`.
#[derive(Debug, Clone)]
pub struct FleetCurve {
    pub name: String,
    pub hosts: Vec<f64>,
    pub cells_per_core: Vec<f64>,
    /// Fit parameters as recorded by the bench (re-fitted during audit).
    pub fit_a: f64,
    pub fit_b: f64,
}

/// Simulator-throughput and pooling inputs parsed from `BENCH_sim.json`.
#[derive(Debug, Clone)]
pub struct SimBench {
    /// Whether the file was generated with `--quick` (CI schema runs —
    /// never a legitimate tracked baseline).
    pub quick: bool,
    pub engine_speedup: f64,
    pub engines: Vec<EngineRow>,
    pub core_budget: usize,
    pub miss_budget: f64,
    pub modes: Vec<FleetCurve>,
}

/// Parses `BENCH_sim.json`.
pub fn parse_sim(src: &str) -> Result<SimBench, String> {
    let j = Json::parse(src)?;
    let quick = j
        .get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing `quick`")?;
    let engine = j.get("engine").ok_or("missing `engine`")?;
    let engine_speedup = engine
        .get("engine_speedup")
        .and_then(Json::as_f64)
        .ok_or("missing engine.engine_speedup")?;
    let mut engines = Vec::new();
    for (key, val) in engine
        .get("wheel_vs_heap")
        .ok_or("missing engine.wheel_vs_heap")?
        .fields()
    {
        engines.push(EngineRow {
            name: key.clone(),
            speedup: val
                .get("speedup")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing speedup for engine `{key}`"))?,
            reports_match: val
                .get("reports_match")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("missing reports_match for engine `{key}`"))?,
        });
    }
    if engines.is_empty() {
        return Err("engine.wheel_vs_heap has no entries".into());
    }
    let pooling = j.get("pooling").ok_or("missing `pooling`")?;
    let num = |key: &str| -> Result<f64, String> {
        pooling
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing pooling.{key}"))
    };
    let arr = |val: &Json, key: &str, of: &str| -> Result<Vec<f64>, String> {
        val.get(key)
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_f64).collect())
            .ok_or_else(|| format!("missing {key} array for mode `{of}`"))
    };
    let mut modes = Vec::new();
    for (key, val) in pooling
        .get("modes")
        .ok_or("missing pooling.modes")?
        .fields()
    {
        let hosts = arr(val, "hosts", key)?;
        let cells_per_core = arr(val, "cells_per_core", key)?;
        if hosts.is_empty() || hosts.len() != cells_per_core.len() {
            return Err(format!(
                "mode `{key}`: hosts/cells_per_core length mismatch"
            ));
        }
        modes.push(FleetCurve {
            name: key.clone(),
            hosts,
            cells_per_core,
            fit_a: val
                .get("fit_a")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing fit_a for mode `{key}`"))?,
            fit_b: val
                .get("fit_b")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing fit_b for mode `{key}`"))?,
        });
    }
    if modes.is_empty() {
        return Err("pooling.modes has no entries".into());
    }
    Ok(SimBench {
        quick,
        engine_speedup,
        engines,
        core_budget: num("core_budget")? as usize,
        miss_budget: num("miss_budget")?,
        modes,
    })
}

/// Audits the tracked simulator baseline against the mirrored fleet
/// deployments: engine-throughput floor, wheel/heap bit-identity, fit
/// drift, and the fleet-level capacity gate.
pub fn audit_sim(sim_src: &str, fleet: &[FleetMirror]) -> Audit {
    let mut v = Vec::new();
    let sim = match parse_sim(sim_src) {
        Ok(s) => s,
        Err(e) => {
            v.push(parse_violation("BENCH_sim.json", e));
            return Audit {
                violations: v,
                report: "{}".into(),
            };
        }
    };
    let file = || "BENCH_sim.json".to_string();

    if sim.quick {
        v.push(Violation {
            file: file(),
            line: 0,
            pass: "sched",
            class: "quick-baseline",
            msg: "tracked BENCH_sim.json was generated with --quick; regenerate it full-scale with `rtopex-bench --sim`".into(),
        });
    }
    if sim.core_budget != FLEET_CORE_BUDGET || (sim.miss_budget - FLEET_MISS_BUDGET).abs() > 1e-12 {
        v.push(Violation {
            file: file(),
            line: 0,
            pass: "sched",
            class: "fleet-drift",
            msg: format!(
                "pooling budgets in the tracked file (C = {}, miss = {}) disagree with the shipped experiment (C = {FLEET_CORE_BUDGET}, miss = {FLEET_MISS_BUDGET}) — re-run `rtopex-bench --sim`",
                sim.core_budget, sim.miss_budget
            ),
        });
    }

    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"engine_speedup\": {:.3},", sim.engine_speedup);
    let _ = writeln!(report, "  \"engines\": {{");
    for (i, e) in sim.engines.iter().enumerate() {
        let comma = if i + 1 < sim.engines.len() { "," } else { "" };
        let _ = writeln!(
            report,
            "    \"{}\": {{\"speedup\": {:.3}, \"reports_match\": {}}}{comma}",
            e.name, e.speedup, e.reports_match
        );
        if !e.reports_match {
            v.push(Violation {
                file: file(),
                line: 0,
                pass: "sched",
                class: "wheel-heap-divergence",
                msg: format!(
                    "engine `{}`: the wheel/streaming engine and the seed heap baseline produced different reports — the recorded speedup was bought with a behavior change",
                    e.name
                ),
            });
        }
    }
    let _ = writeln!(report, "  }},");
    if sim.engine_speedup < MIN_ENGINE_SPEEDUP {
        v.push(Violation {
            file: file(),
            line: 0,
            pass: "sched",
            class: "sim-throughput-regression",
            msg: format!(
                "minimum wheel-vs-heap speedup {:.1}x is below the {MIN_ENGINE_SPEEDUP:.0}x floor — the discrete-event hot loop regressed (or the baseline got faster); profile before re-recording",
                sim.engine_speedup
            ),
        });
    }

    // Re-fit every recorded curve; the recorded parameters must agree
    // (the recorded arrays are the ground truth — a doctored fit cannot
    // widen capacity without also doctoring the sweep points).
    let mut fits: Vec<(&str, (f64, f64))> = Vec::new();
    let _ = writeln!(report, "  \"fit\": {{");
    for (i, c) in sim.modes.iter().enumerate() {
        let fit = fit_inverse(&c.hosts, &c.cells_per_core);
        let comma = if i + 1 < sim.modes.len() { "," } else { "" };
        let _ = writeln!(
            report,
            "    \"{}\": {{\"a\": {:.3}, \"b\": {:.3}}}{comma}",
            c.name, fit.0, fit.1
        );
        if (fit.0 - c.fit_a).abs() > 0.01 || (fit.1 - c.fit_b).abs() > 0.01 {
            v.push(Violation {
                file: file(),
                line: 0,
                pass: "sched",
                class: "fleet-drift",
                msg: format!(
                    "mode `{}`: pooling fit re-computed from the sweep arrays is a = {:.3}, b = {:.3}, but the tracked file records a = {:.3}, b = {:.3} — re-run `rtopex-bench --sim` or fix the file",
                    c.name, fit.0, fit.1, c.fit_a, c.fit_b
                ),
            });
        }
        fits.push((c.name.as_str(), fit));
    }
    let _ = writeln!(report, "  }},");

    // The gate: every shipped fleet deployment must fit under the
    // re-fitted curve at its fleet size.
    let _ = writeln!(report, "  \"deployments\": [");
    for (i, d) in fleet.iter().enumerate() {
        let comma = if i + 1 < fleet.len() { "," } else { "" };
        match fits.iter().find(|(name, _)| *name == d.mode) {
            Some(&(_, fit)) => {
                let cap = fleet_capacity(fit, d.hosts);
                let ok = d.cells_per_host <= cap;
                let _ = writeln!(
                    report,
                    "    {{\"name\": \"{}\", \"hosts\": {}, \"mode\": \"{}\", \"cells_per_host\": {}, \"fitted_capacity\": {cap}, \"ok\": {ok}}}{comma}",
                    d.name, d.hosts, d.mode, d.cells_per_host
                );
                if !ok {
                    v.push(Violation {
                        file: file(),
                        line: 0,
                        pass: "sched",
                        class: "fleet-unschedulable",
                        msg: format!(
                            "fleet deployment `{}` ({} hosts × {} cells, {}) exceeds the fitted pooling capacity of {cap} cells/host at H = {} — shrink the deployment or re-measure",
                            d.name, d.hosts, d.cells_per_host, d.mode, d.hosts
                        ),
                    });
                }
            }
            None => {
                let _ = writeln!(
                    report,
                    "    {{\"name\": \"{}\", \"mode\": \"{}\", \"ok\": false}}{comma}",
                    d.name, d.mode
                );
                v.push(Violation {
                    file: file(),
                    line: 0,
                    pass: "sched",
                    class: "fleet-unschedulable",
                    msg: format!(
                        "fleet deployment `{}` references mode `{}`, which the tracked pooling sweep never measured",
                        d.name, d.mode
                    ),
                });
            }
        }
    }
    let _ = writeln!(report, "  ]");
    report.push_str("}\n");

    Audit {
        violations: v,
        report,
    }
}

// ---------------------------------------------------------------------
// The audit.
// ---------------------------------------------------------------------

/// Audit outcome: gating violations plus the JSON report body.
#[derive(Debug)]
pub struct Audit {
    pub violations: Vec<Violation>,
    pub report: String,
}

/// Audits the workspace: tracked baselines + shipped configs. The
/// report composes the Eq. 3 (node-level) audit and the fleet-level
/// pooling audit as `{"eq3": …, "fleet": …}`.
pub fn audit_workspace(root: &Path) -> Audit {
    let kernels = fs::read_to_string(root.join("BENCH_kernels.json"))
        .map_err(|e| format!("BENCH_kernels.json: {e}"));
    let node = fs::read_to_string(root.join("BENCH_node.json"))
        .map_err(|e| format!("BENCH_node.json: {e}"));
    let sim_src = fs::read_to_string(root.join("BENCH_sim.json"));
    // Same-machine gate first: comparing baselines recorded on different
    // hosts invalidates every downstream number.
    let mut fp_files: Vec<(&str, &str)> = Vec::new();
    if let Ok(k) = &kernels {
        fp_files.push(("BENCH_kernels.json", k.as_str()));
    }
    if let Ok(n) = &node {
        fp_files.push(("BENCH_node.json", n.as_str()));
    }
    if let Ok(s) = &sim_src {
        fp_files.push(("BENCH_sim.json", s.as_str()));
    }
    let machine_violations = audit_machines(&fp_files);
    let mut eq3 = match (kernels, node) {
        (Ok(k), Ok(n)) => audit(&k, &n, &shipped_configs()),
        (k, n) => {
            let mut violations = Vec::new();
            for err in [k.err(), n.err()].into_iter().flatten() {
                violations.push(parse_violation("", err));
            }
            Audit {
                violations,
                report: "{}".into(),
            }
        }
    };
    let fleet = match sim_src {
        Ok(s) => audit_sim(&s, &shipped_fleet_configs()),
        Err(e) => Audit {
            violations: vec![parse_violation("", format!("BENCH_sim.json: {e}"))],
            report: "{}".into(),
        },
    };
    eq3.violations.extend(machine_violations);
    eq3.violations.extend(fleet.violations);
    Audit {
        violations: eq3.violations,
        report: format!(
            "{{\n\"eq3\": {},\n\"fleet\": {}}}\n",
            eq3.report.trim_end(),
            fleet.report
        ),
    }
}

/// Audits explicit inputs (fixture tests inject doctored baselines and
/// configs here).
pub fn audit(kernels_src: &str, node_src: &str, configs: &[MirrorConfig]) -> Audit {
    let mut v = Vec::new();
    let mut report = String::from("{\n");

    let table = match parse_kernels(kernels_src) {
        Ok(t) => t,
        Err(e) => {
            v.push(parse_violation("BENCH_kernels.json", e));
            return Audit {
                violations: v,
                report: "{}".into(),
            };
        }
    };
    let node = match parse_node(node_src) {
        Ok(n) => n,
        Err(e) => {
            v.push(parse_violation("BENCH_node.json", e));
            return Audit {
                violations: v,
                report: "{}".into(),
            };
        }
    };

    // Batched-dispatch floor: the recorded cross-cell batch must still
    // outrun per-call dispatch.
    let batched = match parse_batched(kernels_src) {
        Ok(b) => b,
        Err(e) => {
            v.push(parse_violation("BENCH_kernels.json", e));
            Vec::new()
        }
    };
    for (key, speedup) in &batched {
        if *speedup < MIN_BATCH_SPEEDUP {
            v.push(Violation {
                file: "BENCH_kernels.json".into(),
                line: 0,
                pass: "sched",
                class: "batching-regression",
                msg: format!(
                    "batched entry `{key}`: recorded speedup {speedup:.2}x is below the {MIN_BATCH_SPEEDUP}x floor — the batched drain no longer pays for its staging; profile before re-recording"
                ),
            });
        }
    }

    let g = gamma(&table);
    let _ = writeln!(report, "  \"gamma\": {g:.4},");
    let _ = writeln!(report, "  \"batched_speedups\": {{");
    for (i, (key, s)) in batched.iter().enumerate() {
        let comma = if i + 1 < batched.len() { "," } else { "" };
        let _ = writeln!(report, "    \"{key}\": {s:.3}{comma}");
    }
    let _ = writeln!(report, "  }},");
    let _ = writeln!(report, "  \"configs\": [");

    for (ci, cfg) in configs.iter().enumerate() {
        let budget = cfg.budget_us();
        let _ = writeln!(report, "    {{");
        let _ = writeln!(report, "      \"name\": \"{}\",", cfg.name);
        let _ = writeln!(
            report,
            "      \"bandwidth\": \"{}\", \"cells\": {}, \"period_us\": {}, \"budget_us\": {}, \"delta_us\": {},",
            cfg.bw.label(),
            cfg.cells,
            cfg.period_us,
            budget,
            cfg.delta_us
        );
        let _ = writeln!(report, "      \"mcs\": [");
        for (mi, &mcs) in cfg.mcs_pool.iter().enumerate() {
            let t_hat = estimate_us(&table, cfg.bw, mcs, 2);
            let eq3_ok = t_hat <= budget;
            let util_ok = t_hat <= 2.0 * cfg.period_us;
            let comma = if mi + 1 < cfg.mcs_pool.len() { "," } else { "" };
            let _ = writeln!(
                report,
                "        {{\"mcs\": {mcs}, \"t_hat_us\": {t_hat:.1}, \"eq3_ok\": {eq3_ok}, \"util_ok\": {util_ok}}}{comma}"
            );
            if !eq3_ok || !util_ok {
                for mode in cfg.modes {
                    v.push(Violation {
                        file: cfg.file.to_string(),
                        line: 0,
                        pass: "sched",
                        class: "unschedulable",
                        msg: format!(
                            "config `{}` ({}, {} cells, {}) is statically unschedulable at MCS {mcs}: T̂_w = {t_hat:.1} µs exceeds {} (Eq. 3 budget {budget:.0} µs, 2-core bound {:.0} µs)",
                            cfg.name,
                            cfg.bw.label(),
                            cfg.cells,
                            mode.key(),
                            if eq3_ok { "the 2-core utilization bound" } else { "the Eq. 3 budget" },
                            2.0 * cfg.period_us,
                        ),
                    });
                }
            }
        }
        let _ = writeln!(report, "      ],");

        // δ admission sanity, for the modes that migrate.
        let smallest = smallest_subtask_us(&table, cfg.bw);
        let _ = writeln!(
            report,
            "      \"smallest_subtask_us\": {smallest:.2}, \"measured_steal_delta_us\": {:.2}, \"measured_mailbox_delta_us\": {:.2}",
            node.steal_delta_us, node.mailbox_delta_us
        );
        for mode in cfg.modes {
            let measured = match mode {
                Mode::RtOpexSteal => node.steal_delta_us,
                Mode::RtOpexMutex => node.mailbox_delta_us,
                _ => continue,
            };
            if cfg.delta_us < measured {
                v.push(Violation {
                    file: cfg.file.to_string(),
                    line: 0,
                    pass: "sched",
                    class: "delta-too-small",
                    msg: format!(
                        "config `{}`: declared δ = {} µs is below the measured {} handoff overhead {measured:.1} µs — Alg. 1 would admit migrations that cannot pay for themselves",
                        cfg.name,
                        cfg.delta_us,
                        mode.key()
                    ),
                });
            }
            if cfg.delta_us < smallest {
                v.push(Violation {
                    file: cfg.file.to_string(),
                    line: 0,
                    pass: "sched",
                    class: "delta-too-small",
                    msg: format!(
                        "config `{}`: declared δ = {} µs is below the smallest migratable subtask ({smallest:.1} µs FFT at {}) — the admission test degenerates",
                        cfg.name,
                        cfg.delta_us,
                        cfg.bw.label()
                    ),
                });
            }
        }
        let comma = if ci + 1 < configs.len() { "," } else { "" };
        let _ = writeln!(report, "    }}{comma}");
    }
    let _ = writeln!(report, "  ],");

    // Real-network fronthaul gate: the tracked baseline must carry the
    // multihost section, every transport's per-subframe rx cost must fit
    // inside the cadence period (otherwise the delivery thread cannot
    // keep up with the fronthaul and run_fed degrades to shedding), and
    // the recorded localhost multi-process demo must have passed.
    match &node.multihost {
        None => {
            let _ = writeln!(report, "  \"multihost\": null,");
            v.push(Violation {
                file: "BENCH_node.json".into(),
                line: 0,
                pass: "sched",
                class: "multihost-missing",
                msg: "missing `multihost` section — re-run `rtopex-bench --node` (or `--node --refresh-multihost`) so the real-network fronthaul overheads and the multi-process demo verdict stay tracked".into(),
            });
        }
        Some(m) => {
            for required in ["inproc", "udp", "tcp"] {
                if !m.transports.iter().any(|(n, ..)| n == required) {
                    v.push(Violation {
                        file: "BENCH_node.json".into(),
                        line: 0,
                        pass: "sched",
                        class: "multihost-missing",
                        msg: format!(
                            "multihost.transports is missing `{required}` — all three fronthaul transports must stay measured"
                        ),
                    });
                }
            }
            let _ = writeln!(report, "  \"multihost\": {{");
            let _ = writeln!(report, "    \"period_us\": {:.1},", m.period_us);
            let _ = writeln!(report, "    \"transports\": {{");
            for (i, (name, handoff, rx)) in m.transports.iter().enumerate() {
                let comma = if i + 1 < m.transports.len() { "," } else { "" };
                let _ = writeln!(
                    report,
                    "      \"{name}\": {{\"handoff_p50_us\": {handoff:.3}, \"rx_per_subframe_us\": {rx:.3}}}{comma}"
                );
                if !(handoff.is_finite() && *handoff > 0.0 && rx.is_finite() && *rx > 0.0) {
                    v.push(Violation {
                        file: "BENCH_node.json".into(),
                        line: 0,
                        pass: "sched",
                        class: "multihost-overrun",
                        msg: format!(
                            "multihost.transports.{name}: handoff_p50_us = {handoff}, rx_per_subframe_us = {rx} — overheads must be positive measured numbers; re-run `rtopex-bench --node --refresh-multihost`"
                        ),
                    });
                } else if *rx >= m.period_us {
                    v.push(Violation {
                        file: "BENCH_node.json".into(),
                        line: 0,
                        pass: "sched",
                        class: "multihost-overrun",
                        msg: format!(
                            "multihost.transports.{name}: rx cost {rx:.1} µs/subframe does not fit the {:.0} µs cadence period — a worker fed over this transport cannot keep up with one cell, let alone pool several",
                            m.period_us
                        ),
                    });
                }
            }
            let _ = writeln!(report, "    }},");
            let _ = writeln!(report, "    \"demo_ok\": {}", m.demo_ok);
            let _ = writeln!(report, "  }},");
            if !m.demo_ok || m.demo_miss_rate > node.miss_threshold || m.demo_gaps != 0.0 {
                v.push(Violation {
                    file: "BENCH_node.json".into(),
                    line: 0,
                    pass: "sched",
                    class: "multihost-demo",
                    msg: format!(
                        "recorded multi-process demo failed its bar (ok = {}, miss_rate = {}, gaps = {}) — the distributed fronthaul no longer sustains the localhost capacity claim; debug before re-recording",
                        m.demo_ok, m.demo_miss_rate, m.demo_gaps
                    ),
                });
            }
        }
    }

    // Capacity reproduction from the raw miss arrays.
    let mut computed: Vec<(String, usize, usize)> = Vec::new();
    for (key, miss, recorded) in &node.modes {
        let c = cells_sustained(miss, node.miss_threshold);
        if c != *recorded {
            v.push(Violation {
                file: "BENCH_node.json".into(),
                line: 0,
                pass: "sched",
                class: "capacity-drift",
                msg: format!(
                    "mode `{key}`: cells_sustained recomputed from the miss array is {c}, but the tracked file records {recorded} — re-run `rtopex-bench --node` or fix the file"
                ),
            });
        }
        computed.push((key.clone(), c, *recorded));
    }
    // The batched-vs-unbatched steal sweep reproduces under the same
    // leading-run rule as the per-mode arrays.
    if let Some(b) = &node.batching {
        for (which, miss, recorded) in [
            ("batched", &b.batched_miss, b.batched_sustained),
            ("unbatched", &b.unbatched_miss, b.unbatched_sustained),
        ] {
            let c = cells_sustained(miss, node.miss_threshold);
            if c != recorded {
                v.push(Violation {
                    file: "BENCH_node.json".into(),
                    line: 0,
                    pass: "sched",
                    class: "capacity-drift",
                    msg: format!(
                        "batching.{which}: cells_sustained recomputed from the miss array is {c}, but the tracked file records {recorded} — re-run `rtopex-bench --node` or fix the file"
                    ),
                });
            }
        }
    }
    let lookup = |k: &str| {
        computed
            .iter()
            .find(|(key, ..)| key == k)
            .map(|(_, c, _)| *c)
    };
    let _ = writeln!(report, "  \"capacity\": {{");
    for (i, (key, c, recorded)) in computed.iter().enumerate() {
        let comma = if i + 1 < computed.len() { "," } else { "" };
        let _ = writeln!(
            report,
            "    \"{key}\": {{\"computed\": {c}, \"recorded\": {recorded}}}{comma}"
        );
    }
    let _ = writeln!(report, "  }},");
    if let (Some(steal), Some(mutex), Some(global)) = (
        lookup("rtopex_steal"),
        lookup("rtopex_mutex"),
        lookup("global"),
    ) {
        let ordered = steal >= mutex && mutex >= global;
        let _ = writeln!(
            report,
            "  \"capacity_ordering\": {{\"steal\": {steal}, \"mutex\": {mutex}, \"global\": {global}, \"steal_ge_mutex_ge_global\": {ordered}}}"
        );
        if !ordered {
            v.push(Violation {
                file: "BENCH_node.json".into(),
                line: 0,
                pass: "sched",
                class: "capacity-order",
                msg: format!(
                    "measured capacity ordering violated: steal={steal}, mutex={mutex}, global={global} — the paper's steal ≥ mutex ≥ global claim no longer holds in the tracked baseline"
                ),
            });
        }
        if node.headline_steal_ge_mutex != (steal >= mutex) {
            v.push(Violation {
                file: "BENCH_node.json".into(),
                line: 0,
                pass: "sched",
                class: "capacity-drift",
                msg: "headline.steal_ge_mutex disagrees with the miss arrays".into(),
            });
        }
    } else {
        let _ = writeln!(report, "  \"capacity_ordering\": null");
        v.push(Violation {
            file: "BENCH_node.json".into(),
            line: 0,
            pass: "sched",
            class: "capacity-drift",
            msg: "sweep.modes is missing one of rtopex_steal/rtopex_mutex/global".into(),
        });
    }
    report.push_str("}\n");

    Audit {
        violations: v,
        report,
    }
}

fn parse_violation(file: &str, err: String) -> Violation {
    Violation {
        file: file.to_string(),
        line: 0,
        pass: "sched",
        class: "bench-parse",
        msg: err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: &str = include_str!("../../../BENCH_kernels.json");
    const NODE: &str = include_str!("../../../BENCH_node.json");

    #[test]
    fn gamma_is_sane() {
        let t = parse_kernels(KERNELS).unwrap();
        let g = gamma(&t);
        assert!(g > 0.1 && g < 2.0, "gamma = {g}");
        // The calibration anchor reproduces itself exactly.
        let anchor = estimate_us(&t, Bw::Mhz1_4, 27, 2);
        assert!((anchor - t.subframe_ref_ns / 1000.0).abs() < 1e-6);
    }

    #[test]
    fn fft_model_matches_tracked_points_and_interpolates() {
        let t = parse_kernels(KERNELS).unwrap();
        assert_eq!(fft_cost_ns(&t, 128), 1290.0);
        let t512 = fft_cost_ns(&t, 512);
        assert!(t512 > 1290.0 && t512 < 12942.0, "fft512 = {t512}");
    }

    #[test]
    fn shipped_configs_pass_the_audit() {
        let a = audit(KERNELS, NODE, &shipped_configs());
        assert!(a.violations.is_empty(), "{:#?}", a.violations);
        assert!(a.report.contains("capacity_ordering"));
    }

    #[test]
    fn capacity_ordering_reproduced_from_miss_arrays_alone() {
        let n = parse_node(NODE).unwrap();
        let get = |k: &str| {
            n.modes
                .iter()
                .find(|(key, ..)| key == k)
                .map(|(_, m, _)| cells_sustained(m, n.miss_threshold))
                .unwrap()
        };
        let (steal, mutex, global, part) = (
            get("rtopex_steal"),
            get("rtopex_mutex"),
            get("global"),
            get("partitioned"),
        );
        assert!(
            steal >= mutex && mutex >= global,
            "{steal} {mutex} {global}"
        );
        // The PR 7 measured table (batched dispatch + NUMA-aware steal).
        assert_eq!((steal, mutex, global, part), (5, 4, 3, 2));
    }

    fn machine_doc(cpu: &str, cores: usize, tier: &str) -> String {
        format!(r#"{{ "machine": {{ "cpu": "{cpu}", "cores": {cores}, "simd_tier": "{tier}" }} }}"#)
    }

    #[test]
    fn cross_machine_baselines_are_refused() {
        let a = machine_doc("Xeon", 1, "avx512");
        let b = machine_doc("EPYC", 64, "avx2");
        let v = audit_machines(&[("BENCH_kernels.json", &a), ("BENCH_node.json", &b)]);
        assert!(v.iter().any(|v| v.class == "machine-mismatch"), "{v:#?}");
    }

    #[test]
    fn same_machine_baselines_pass_and_legacy_files_without_tier_are_tolerated() {
        let a = machine_doc("Xeon", 1, "avx512");
        let legacy = r#"{ "machine": { "cpu": "Xeon", "cores": 1 } }"#;
        assert!(audit_machines(&[("k", &a), ("n", &a), ("s", legacy)]).is_empty());
    }

    #[test]
    fn missing_machine_block_is_flagged() {
        let v = audit_machines(&[("BENCH_kernels.json", "{}")]);
        assert!(v.iter().any(|v| v.class == "machine-fingerprint"), "{v:#?}");
    }

    #[test]
    fn tracked_baselines_share_a_machine() {
        let v = audit_machines(&[
            ("BENCH_kernels.json", KERNELS),
            ("BENCH_node.json", NODE),
            ("BENCH_sim.json", SIM),
        ]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn tracked_batched_speedups_clear_the_floor() {
        let b = parse_batched(KERNELS).unwrap();
        assert!(
            !b.is_empty(),
            "tracked kernels baseline must record batched rows"
        );
        assert!(b.iter().all(|(_, s)| *s >= MIN_BATCH_SPEEDUP), "{b:?}");
    }

    #[test]
    fn batched_speedup_below_floor_is_caught() {
        let doc = KERNELS.replace(
            "\"batched\": {",
            "\"batched\": {\n    \"turbo_kX_b4\": { \"per_call_avx2_ns\": 100, \"batched_ns\": 100, \"speedup\": 1.000 },",
        );
        assert_ne!(doc, KERNELS, "tracked baseline must have a batched section");
        let a = audit(&doc, NODE, &shipped_configs());
        assert!(
            a.violations
                .iter()
                .any(|v| v.class == "batching-regression"),
            "{:#?}",
            a.violations
        );
    }

    /// A minimal node doc whose batching block records
    /// `batched_sustained`; the miss arrays support exactly 2.
    fn node_doc(batched_sustained: usize) -> String {
        format!(
            r#"{{
  "steal_path": {{
    "fft": {{ "steal_delta_us": 10.0, "mailbox_delta_us": 20.0 }},
    "decode": {{ "steal_delta_us": 12.0, "mailbox_delta_us": 25.0 }}
  }},
  "sweep": {{
    "config": {{ "miss_threshold": 0.005 }},
    "modes": {{
      "partitioned": {{ "miss": [0.0, 0.1], "cells_sustained": 1 }},
      "global": {{ "miss": [0.0, 0.1], "cells_sustained": 1 }},
      "rtopex_mutex": {{ "miss": [0.0, 0.1], "cells_sustained": 1 }},
      "rtopex_steal": {{ "miss": [0.0, 0.0], "cells_sustained": 2 }}
    }}
  }},
  "batching": {{
    "batched": {{ "miss": [0.0, 0.0], "cells_sustained": {batched_sustained} }},
    "unbatched": {{ "miss": [0.0, 0.1], "cells_sustained": 1 }}
  }},
  "headline": {{ "steal_ge_mutex": true }}
}}"#
        )
    }

    #[test]
    fn batching_capacity_drift_is_caught() {
        let a = audit(KERNELS, &node_doc(3), &[]);
        assert!(
            a.violations
                .iter()
                .any(|v| v.class == "capacity-drift" && v.msg.contains("batching.batched")),
            "{:#?}",
            a.violations
        );
        let ok = audit(KERNELS, &node_doc(2), &[]);
        assert!(
            !ok.violations.iter().any(|v| v.class == "capacity-drift"),
            "{:#?}",
            ok.violations
        );
    }

    /// `node_doc` extended with a multihost section whose udp rx cost
    /// and demo verdict are the knobs.
    fn node_doc_with_multihost(udp_rx: f64, demo_ok: bool) -> String {
        let mh = format!(
            r#""multihost": {{
    "period_us": 6000.0,
    "transports": {{
      "inproc": {{ "handoff_p50_us": 50.0, "rx_per_subframe_us": 40.0 }},
      "udp": {{ "handoff_p50_us": 300.0, "rx_per_subframe_us": {udp_rx:.1} }},
      "tcp": {{ "handoff_p50_us": 350.0, "rx_per_subframe_us": 90.0 }}
    }},
    "demo": {{ "workers": 2, "cells": 4, "miss_rate": 0.0, "gaps": 0, "ok": {demo_ok} }}
  }},
  "headline""#
        );
        node_doc(2).replace("\"headline\"", &mh)
    }

    #[test]
    fn multihost_gate_catches_missing_section_and_failed_demo() {
        // The minimal node doc has no multihost section at all.
        let a = audit(KERNELS, &node_doc(2), &[]);
        assert!(
            a.violations.iter().any(|v| v.class == "multihost-missing"),
            "{:#?}",
            a.violations
        );
        // A failed demo verdict must fire the gate …
        let a = audit(KERNELS, &node_doc_with_multihost(100.0, false), &[]);
        assert!(
            a.violations.iter().any(|v| v.class == "multihost-demo"),
            "{:#?}",
            a.violations
        );
        // … and a healthy section must not.
        let a = audit(KERNELS, &node_doc_with_multihost(100.0, true), &[]);
        assert!(
            !a.violations
                .iter()
                .any(|v| v.class.starts_with("multihost")),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn multihost_rx_overrun_is_caught() {
        // An rx cost above the cadence period cannot sustain even one
        // cell over that transport.
        let a = audit(KERNELS, &node_doc_with_multihost(999_999.0, true), &[]);
        assert!(
            a.violations.iter().any(|v| v.class == "multihost-overrun"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn unschedulable_config_is_caught() {
        let bad = MirrorConfig {
            name: "bad",
            file: "fixture.rs",
            bw: Bw::Mhz5,
            cells: 2,
            period_us: 300.0,
            rtt_half_us: 100.0,
            mcs_pool: &[27],
            delta_us: 60.0,
            modes: &[Mode::RtOpexSteal],
        };
        let a = audit(KERNELS, NODE, &[bad]);
        assert!(
            a.violations.iter().any(|v| v.class == "unschedulable"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn tiny_delta_is_caught() {
        let bad = MirrorConfig {
            name: "tiny-delta",
            file: "fixture.rs",
            bw: Bw::Mhz5,
            cells: 2,
            period_us: 6_000.0,
            rtt_half_us: 7_000.0,
            mcs_pool: &[27],
            delta_us: 0.5,
            modes: &[Mode::RtOpexSteal],
        };
        let a = audit(KERNELS, NODE, &[bad]);
        assert!(
            a.violations.iter().any(|v| v.class == "delta-too-small"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn report_is_valid_json() {
        let a = audit(KERNELS, NODE, &shipped_configs());
        crate::json::Json::parse(&a.report).expect("report must parse");
    }

    const SIM: &str = include_str!("../../../BENCH_sim.json");

    /// A synthetic `BENCH_sim.json` with flat pooling curves: the
    /// partitioned asymptote is held at 0.5 cells/core while the
    /// rtopex-steal one and the engine speedup are the knobs.
    fn sim_doc(engine_speedup: f64, reports_match: bool, steal_a: f64) -> String {
        let hosts = "[1, 2, 4, 8, 16, 32, 64]";
        let flat = |a: f64| {
            let v: Vec<String> = (0..7).map(|_| format!("{a:.3}")).collect();
            format!("[{}]", v.join(", "))
        };
        format!(
            r#"{{
  "schema": 1, "quick": false,
  "engine": {{
    "wheel_vs_heap": {{
      "partitioned": {{ "speedup": {engine_speedup:.3}, "reports_match": {reports_match} }}
    }},
    "engine_speedup": {engine_speedup:.3}
  }},
  "pooling": {{
    "core_budget": 8, "miss_budget": 0.005,
    "modes": {{
      "partitioned": {{ "hosts": {hosts}, "cells_per_core": {part}, "fit_a": 0.500, "fit_b": 0.000 }},
      "rtopex-steal": {{ "hosts": {hosts}, "cells_per_core": {steal}, "fit_a": {steal_a:.3}, "fit_b": 0.000 }}
    }}
  }}
}}"#,
            part = flat(0.5),
            steal = flat(steal_a),
        )
    }

    #[test]
    fn tracked_sim_baseline_passes_the_fleet_gate() {
        let a = audit_sim(SIM, &shipped_fleet_configs());
        assert!(a.violations.is_empty(), "{:#?}", a.violations);
        assert!(a.report.contains("deployments"));
    }

    #[test]
    fn sim_report_is_valid_json() {
        let a = audit_sim(SIM, &shipped_fleet_configs());
        crate::json::Json::parse(&a.report).expect("fleet report must parse");
    }

    #[test]
    fn refit_reproduces_the_recorded_fit() {
        let sim = parse_sim(SIM).unwrap();
        for c in &sim.modes {
            let (a, b) = fit_inverse(&c.hosts, &c.cells_per_core);
            assert!(
                (a - c.fit_a).abs() <= 0.01 && (b - c.fit_b).abs() <= 0.01,
                "{}: refit ({a:.3}, {b:.3}) vs recorded ({:.3}, {:.3})",
                c.name,
                c.fit_a,
                c.fit_b
            );
        }
    }

    #[test]
    fn overcommitted_fleet_deployment_is_caught() {
        // A steal asymptote of 0.25 cells/core caps an 8-core host at 2
        // cells; edge-4 and metro-16 ship 4.
        let a = audit_sim(&sim_doc(20.0, true, 0.25), &shipped_fleet_configs());
        let fleet: Vec<_> = a
            .violations
            .iter()
            .filter(|v| v.class == "fleet-unschedulable")
            .collect();
        assert_eq!(fleet.len(), 2, "{:#?}", a.violations);
        assert!(fleet.iter().any(|v| v.msg.contains("edge-4")));
        assert!(fleet.iter().any(|v| v.msg.contains("metro-16")));
    }

    #[test]
    fn engine_throughput_regression_is_caught() {
        let a = audit_sim(&sim_doc(3.0, true, 1.0), &shipped_fleet_configs());
        assert!(
            a.violations
                .iter()
                .any(|v| v.class == "sim-throughput-regression"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn wheel_heap_divergence_is_caught() {
        let a = audit_sim(&sim_doc(20.0, false, 1.0), &shipped_fleet_configs());
        assert!(
            a.violations
                .iter()
                .any(|v| v.class == "wheel-heap-divergence"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn doctored_fit_is_caught_by_the_refit() {
        // Widen the recorded asymptote without touching the sweep
        // arrays: the re-fit disagrees and the audit flags the drift.
        let doc = sim_doc(20.0, true, 0.25)
            .replace(&format!("\"fit_a\": {:.3}", 0.25), "\"fit_a\": 1.000");
        let a = audit_sim(&doc, &shipped_fleet_configs());
        assert!(
            a.violations.iter().any(|v| v.class == "fleet-drift"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn quick_baseline_is_rejected() {
        let doc = sim_doc(20.0, true, 1.0).replace("\"quick\": false", "\"quick\": true");
        let a = audit_sim(&doc, &shipped_fleet_configs());
        assert!(
            a.violations.iter().any(|v| v.class == "quick-baseline"),
            "{:#?}",
            a.violations
        );
    }

    #[test]
    fn missing_mode_curve_is_caught() {
        let a = audit_sim(
            &sim_doc(20.0, true, 1.0),
            &[FleetMirror {
                name: "phantom",
                hosts: 4,
                mode: "never-swept",
                cells_per_host: 1,
            }],
        );
        assert!(
            a.violations
                .iter()
                .any(|v| v.class == "fleet-unschedulable" && v.msg.contains("never measured")),
            "{:#?}",
            a.violations
        );
    }
}
