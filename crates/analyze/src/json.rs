//! A minimal recursive-descent JSON parser — just enough to read the
//! tracked `BENCH_kernels.json` / `BENCH_node.json` baselines without
//! pulling a dependency into the analyzer.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.s.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Chained path lookup: `j.path(&["sweep", "config", "period_us"])`.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for k in keys {
            cur = cur.get(k)?;
        }
        Some(cur)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object fields, for iteration.
    pub fn fields(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(f) => f,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char,
                self.i,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.obj(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            other => Err(format!(
                "unexpected `{}` at offset {}",
                other.map(|c| c as char).unwrap_or('∅'),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            // BMP-only \uXXXX — the bench files are ASCII.
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-walk UTF-8 from the byte we consumed.
                    let start = self.i - 1;
                    let ch_len = utf8_len(c);
                    let bytes = self
                        .s
                        .get(start..start + ch_len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.i = start + ch_len;
                }
            }
        }
        Err("unterminated string".into())
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let j = Json::parse(r#"{"a": {"b": [1, 2.5, -3e2]}, "s": "x\ny", "t": true, "n": null}"#)
            .unwrap();
        assert_eq!(j.path(&["a", "b"]).unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.path(&["a", "b"]).unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(j.get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
    }

    #[test]
    fn reads_the_tracked_bench_schema_shape() {
        let j = Json::parse(
            r#"{"kernels": {"turbo_decode_1iter_512": {"mean_ns": 14375, "iters": 10000}}}"#,
        )
        .unwrap();
        assert_eq!(
            j.path(&["kernels", "turbo_decode_1iter_512", "mean_ns"])
                .unwrap()
                .as_f64(),
            Some(14375.0)
        );
    }
}
