//! The annotation invariant linter behind `cargo xtask lint`.
//!
//! Two families of line-level lints over the shipped crates (vendored
//! deps, the model checker's shim internals, and this tool are excluded):
//!
//! * **safety-comment** — every `unsafe { .. }` block and `unsafe impl`
//!   in any linted file must carry a `// SAFETY:` comment on the same
//!   line or in the comment run directly above it.
//! * **ordering-justification** — every `Ordering::SeqCst` must carry an
//!   `// ORDERING:` comment on the same line or directly above. SeqCst
//!   is the strongest (and slowest) ordering; each use must say which
//!   StoreLoad pattern or total-order argument needs it, so downgrades
//!   stay auditable against the `rtopex-check` model suites.
//!
//! The lexical `hot-alloc`/`hot-panic`/`hot-clock` lints that lived here
//! through PR 4 were retired in favour of the transitive purity pass in
//! `rtopex-analyze` (`cargo xtask analyze`): a per-file deny list could
//! not see an allocation two calls below a module boundary, while the
//! call-graph pass follows the reachable set from the declared hot entry
//! points. Their `// lint: allow(hot-*)` suppressions migrated to the
//! analyzer's `// analyze: allow(<class>): <reason>` syntax.
//!
//! Suppression syntax, one line at a time, with a mandatory reason:
//!
//! ```text
//! // lint: allow(ordering-justification): covered by the module note
//! top.store(t, Ordering::SeqCst);
//! ```
//!
//! `#[cfg(test)]` blocks are skipped entirely: the lints guard shipped
//! code, not test scaffolding.

use std::fmt;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) swept by [`lint_workspace`].
const LINT_ROOTS: &[&str] = &[
    "src",
    "crates/core/src",
    "crates/lte-phy/src",
    "crates/runtime/src",
    "crates/transport/src",
    "crates/transport-net/src",
    "crates/distrib/src",
    "crates/workload/src",
    "crates/model/src",
    "crates/sim/src",
    "crates/experiments/src",
    "crates/bench/src",
];

/// One lint hit, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name, usable in `// lint: allow(<name>): <reason>`.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.msg
        )
    }
}

/// Splits a source line into its code part and its `//` comment part,
/// masking string/char literal contents so brace counting and pattern
/// matching cannot be fooled by literals. Tracks `/* .. */` state across
/// lines via `in_block_comment`.
fn split_line(line: &str, in_block_comment: &mut bool) -> (String, String) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                comment.push(bytes[i] as char);
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                comment.push_str(&line[i..]);
                break;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                // Mask the string literal body (escapes included).
                code.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with a quote
                // one-or-two chars later ('x' or '\n'); lifetimes do not.
                let lit_len = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    // '\x' escapes span at least 4 bytes: '\ x '
                    bytes[i + 2..]
                        .iter()
                        .position(|&b| b == b'\'')
                        .map(|p| p + 3)
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    Some(3)
                } else {
                    None
                };
                match lit_len {
                    Some(n) => {
                        code.push_str("' '");
                        i += n;
                    }
                    None => {
                        code.push('\'');
                        i += 1;
                    }
                }
            }
            b => {
                code.push(b as char);
                i += 1;
            }
        }
    }
    (code, comment)
}

/// True when `code` contains `word` as a standalone token (not a prefix
/// or suffix of a longer identifier).
fn has_token(code: &str, word: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident(code[..start].chars().next_back().unwrap());
        let post_ok = end == code.len() || !is_ident(code[end..].chars().next().unwrap());
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Is this `unsafe` occurrence one that needs a `// SAFETY:` comment?
/// `unsafe {` and `unsafe impl` do; `unsafe fn`/`unsafe extern`/
/// `unsafe(...)` attribute forms do not (the fn *body's* blocks are
/// linted instead, per `unsafe_op_in_unsafe_fn`).
fn unsafe_needs_comment(code: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let pre_ok = start == 0 || !is_ident(code[..start].chars().next_back().unwrap());
        let post_ok = end == code.len() || !is_ident(code[end..].chars().next().unwrap());
        let rest = code[end..].trim_start();
        if pre_ok
            && post_ok
            && !rest.starts_with("fn")
            && !rest.starts_with("extern")
            && !rest.starts_with('(')
        {
            return true;
        }
        from = end;
    }
    false
}

/// Lints one file's source. `rel` is the workspace-relative path used
/// for reporting.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    let mut depth: i64 = 0;
    // Depth at which a `#[cfg(test)]` block opened; lines inside are
    // exempt from every lint.
    let mut skip_above: Option<i64> = None;
    let mut pending_test_attr = false;
    // The comment run directly above the current line, plus each line's
    // own trailing comment — where SAFETY:/ORDERING:/allow() live.
    let mut comment_run = String::new();
    let mut prev_full_line = String::new();

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = split_line(raw, &mut in_block_comment);
        let trimmed = code.trim();

        if pending_test_attr && skip_above.is_none() && code.contains('{') {
            skip_above = Some(depth);
            pending_test_attr = false;
        }
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[cfg(all(test") {
            pending_test_attr = true;
        }
        let in_test_block = skip_above.is_some() || pending_test_attr;

        if !in_test_block && !trimmed.is_empty() {
            let allow = |name: &str| {
                let tag = format!("lint: allow({name})");
                comment.contains(&tag) || prev_full_line.contains(&tag)
            };
            let mut report = |lint: &'static str, msg: String| {
                if !allow(lint) {
                    out.push(Violation {
                        file: rel.to_string(),
                        line: line_no,
                        lint,
                        msg,
                    });
                }
            };

            if unsafe_needs_comment(&code)
                && !comment.contains("SAFETY:")
                && !comment_run.contains("SAFETY:")
            {
                report(
                    "safety-comment",
                    "`unsafe` block/impl without a `// SAFETY:` justification".to_string(),
                );
            }
            if has_token(&code, "SeqCst")
                && !comment.contains("ORDERING:")
                && !comment_run.contains("ORDERING:")
            {
                report(
                    "ordering-justification",
                    "`Ordering::SeqCst` without an `// ORDERING:` justification".to_string(),
                );
            }
        }

        // Maintain brace depth and close out a finished test block.
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(d) = skip_above {
            if depth <= d {
                skip_above = None;
            }
        }

        // A comment-only line extends the run above the next code line.
        // Attribute lines keep the run alive (`// SAFETY:` above
        // `#[inline] unsafe {..}` counts), and so do the middle lines of
        // a multi-line statement — a justification above `match self`
        // still covers the `.compare_exchange(.., SeqCst, ..)` four
        // lines down. The run dies at statement/block boundaries.
        if trimmed.is_empty() && !comment.is_empty() {
            comment_run.push_str(&comment);
            comment_run.push('\n');
        } else if !(trimmed.starts_with("#[") && trimmed.ends_with(']'))
            && (trimmed.ends_with(';')
                || trimmed.ends_with('{')
                || trimmed.ends_with('}')
                || trimmed.ends_with(','))
        {
            comment_run.clear();
        }
        prev_full_line = raw.to_string();
    }
    out
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every file under [`LINT_ROOTS`], rooted at `workspace_root`.
pub fn lint_workspace(workspace_root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for root in LINT_ROOTS {
        let mut files = Vec::new();
        rust_files(&workspace_root.join(root), &mut files);
        for path in files {
            let rel = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(&path) {
                Ok(src) => violations.extend(lint_source(&rel, &src)),
                Err(e) => violations.push(Violation {
                    file: rel,
                    line: 0,
                    lint: "io",
                    msg: format!("unreadable: {e}"),
                }),
            }
        }
    }
    violations
}

/// CLI entry: prints violations, returns the process exit code.
pub fn run(workspace_root: &Path) -> i32 {
    let violations = lint_workspace(workspace_root);
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        eprintln!("xtask lint: clean");
        0
    } else {
        eprintln!("xtask lint: {} violation(s)", violations.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COLD: &str = "crates/runtime/src/node.rs";

    fn lints(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel, src).into_iter().map(|v| v.lint).collect()
    }

    #[test]
    fn unannotated_unsafe_block_fails_everywhere() {
        let src = "fn load(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
        assert_eq!(lints(COLD, src), vec!["safety-comment"]);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let above = "fn load(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lints(COLD, above).is_empty());
        let inline = "fn load(p: *const u32) -> u32 {\n    unsafe { *p } // SAFETY: caller guarantees p is valid.\n}\n";
        assert!(lints(COLD, inline).is_empty());
        let with_attr = "// SAFETY: table is 'static.\n#[inline]\nunsafe impl Sync for T {}\n";
        assert!(lints(COLD, with_attr).is_empty());
    }

    #[test]
    fn unsafe_fn_declaration_needs_no_block_comment() {
        // The body's unsafe *blocks* carry the comments instead.
        let src = "pub unsafe fn raw(p: *const u32) -> u32 {\n    // SAFETY: contract forwarded.\n    unsafe { *p }\n}\n";
        assert!(lints(COLD, src).is_empty());
    }

    #[test]
    fn seqcst_requires_ordering_comment() {
        let bare = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::SeqCst);\n}\n";
        assert_eq!(lints(COLD, bare), vec!["ordering-justification"]);
        let justified = "fn f(a: &AtomicU64) {\n    // ORDERING: StoreLoad barrier against the stealer's top load.\n    a.store(1, Ordering::SeqCst);\n}\n";
        assert!(lints(COLD, justified).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn shipped() {}\n#[cfg(test)]\nmod tests {\n    fn helper(a: &AtomicU64) {\n        a.store(1, Ordering::SeqCst);\n        unsafe { core::hint::unreachable_unchecked() }\n    }\n}\n";
        assert!(lints(COLD, src).is_empty(), "{:?}", lint_source(COLD, src));
    }

    #[test]
    fn suppression_with_reason_is_honoured_per_line() {
        let same_line = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::SeqCst); // lint: allow(ordering-justification): module-level note covers it\n}\n";
        assert!(lints(COLD, same_line).is_empty());
        let line_above = "fn f(a: &AtomicU64) {\n    // lint: allow(ordering-justification): module-level note covers it\n    a.store(1, Ordering::SeqCst);\n}\n";
        assert!(lints(COLD, line_above).is_empty());
        // Suppressing one lint does not blanket the line for others.
        let wrong_name = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::SeqCst); // lint: allow(safety-comment): wrong lint\n}\n";
        assert_eq!(lints(COLD, wrong_name), vec!["ordering-justification"]);
    }

    #[test]
    fn unsafe_code_lint_attributes_are_not_unsafe_blocks() {
        let src = "#![forbid(unsafe_code)]\n#![allow(unsafe_code)]\nfn f() {}\n";
        assert!(lints(COLD, src).is_empty());
    }

    #[test]
    fn justification_covers_a_multi_line_statement() {
        let src = "fn f(&self) {\n    // ORDERING: decisive CAS, totally ordered with pop's barrier.\n    match self\n        .top\n        .compare_exchange(1, 2, Ordering::SeqCst, Ordering::Relaxed)\n    {\n        _ => {}\n    }\n}\n";
        assert!(lints(COLD, src).is_empty(), "{:?}", lint_source(COLD, src));
    }

    #[test]
    fn string_literals_cannot_fool_the_linter() {
        let src = "fn f() {\n    let s = \"unsafe { SeqCst\";\n}\n";
        assert!(lints(COLD, src).is_empty());
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        // CARGO_MANIFEST_DIR = <root>/crates/xtask.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let violations = lint_workspace(&root);
        assert!(
            violations.is_empty(),
            "workspace must pass `cargo xtask lint`:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
