//! The crate-layering gate behind `cargo xtask layering`.
//!
//! The transport-decoupling contract of the distributed fronthaul
//! (DESIGN.md §6f, mirroring the exemplar's independent transport
//! crates): the core runtime must compile without any network
//! transport. Concretely, the transitive *path-dependency* closure of
//! the protected crates (`rtopex-runtime`, `rtopex-core`) must not
//! contain any of the banned crates (`rtopex-transport-net`,
//! `rtopex-distrib`) — the runtime consumes the `FronthaulTx`/
//! `FronthaulRx` traits from `rtopex-transport` and stays ignorant of
//! sockets, wire framing, and session management.
//!
//! The check reads `[dependencies]` tables of the workspace manifests
//! directly (line-oriented, no TOML dep): every dependency either names
//! a workspace crate (resolved via `workspace = true` + the root
//! `[workspace.dependencies]` paths) or is external and ignored.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::path::Path;

/// Crates whose transitive closure must stay transport-free.
const PROTECTED: &[&str] = &["rtopex-runtime", "rtopex-core"];
/// Network-transport crates the closure must not contain.
const BANNED: &[&str] = &["rtopex-transport-net", "rtopex-distrib"];
/// Dev-loop-only crates: nothing in the shipped dependency graph may
/// depend on them (the fuzzer exists to attack the product, not to be
/// part of it — its panic hook and process-global probe map must never
/// ride along into a runtime binary).
const TOOLING_ONLY: &[&str] = &["rtopex-fuzz"];

/// `[dependencies]` (and `[dev-dependencies]` are deliberately NOT
/// included: dev-deps do not ship in the library) of one manifest.
fn runtime_deps(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_deps = section.trim_end_matches(']') == "dependencies";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, _)) = line.split_once('=') {
            deps.push(name.trim().trim_matches('"').to_string());
        }
    }
    deps
}

/// Maps workspace crate name -> its runtime dependency names, from
/// every `crates/*/Cargo.toml` plus the root package.
fn workspace_graph(root: &Path) -> BTreeMap<String, Vec<String>> {
    let mut graph = BTreeMap::new();
    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            manifests.push(e.path().join("Cargo.toml"));
        }
    }
    for path in manifests {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let Some(name) = text
            .lines()
            .skip_while(|l| l.trim() != "[package]")
            .find_map(|l| {
                l.trim()
                    .strip_prefix("name")
                    .and_then(|r| r.trim().strip_prefix('='))
                    .map(|v| v.trim().trim_matches('"').to_string())
            })
        else {
            continue;
        };
        graph.insert(name, runtime_deps(&text));
    }
    graph
}

/// Runs the gate; returns the process exit code.
pub fn run(root: &Path) -> i32 {
    let graph = workspace_graph(root);
    if graph.is_empty() {
        eprintln!("xtask layering: no workspace manifests found under {root:?}");
        return 2;
    }
    let mut bad = 0;
    for &protected in PROTECTED {
        if !graph.contains_key(protected) {
            eprintln!("xtask layering: protected crate `{protected}` not in the workspace");
            bad += 1;
            continue;
        }
        // BFS the closure, remembering one witness path per crate.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        seen.insert(protected);
        queue.push_back(protected);
        while let Some(cur) = queue.pop_front() {
            for dep in graph.get(cur).map(Vec::as_slice).unwrap_or(&[]) {
                let dep = dep.as_str();
                if graph.contains_key(dep) && seen.insert(dep) {
                    parent.insert(dep, cur);
                    queue.push_back(dep);
                }
            }
        }
        for &banned in BANNED {
            if seen.contains(banned) {
                let mut chain = vec![banned];
                while let Some(&p) = parent.get(*chain.last().unwrap()) {
                    chain.push(p);
                }
                chain.reverse();
                eprintln!(
                    "xtask layering: `{protected}` transitively depends on `{banned}` \
                     ({}) — the core runtime must stay network-transport-free; \
                     move the dependency behind the rtopex-transport traits",
                    chain.join(" -> ")
                );
                bad += 1;
            }
        }
        let closure: Vec<&str> = seen.iter().copied().filter(|&c| c != protected).collect();
        eprintln!(
            "xtask layering: `{protected}` closure ({}): {}",
            closure.len(),
            closure.join(", ")
        );
    }
    for &tool in TOOLING_ONLY {
        if !graph.contains_key(tool) {
            // Anti-vacuity pin: a renamed fuzz crate would silently
            // escape the tooling-only rule.
            eprintln!("xtask layering: tooling-only crate `{tool}` not in the workspace");
            bad += 1;
            continue;
        }
        for (krate, deps) in &graph {
            if krate != tool && deps.iter().any(|d| d == tool) {
                eprintln!(
                    "xtask layering: `{krate}` depends on tooling-only crate `{tool}` — \
                     the fuzzer must stay out of the shipped dependency graph"
                );
                bad += 1;
            }
        }
    }
    if bad == 0 {
        eprintln!("xtask layering: clean");
        0
    } else {
        eprintln!("xtask layering: {bad} violation(s)");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_deps_skips_dev_dependencies() {
        let m = "[package]\nname = \"x\"\n[dependencies]\na = { workspace = true }\n\
                 b = \"1\"\n[dev-dependencies]\nc = { workspace = true }\n";
        assert_eq!(runtime_deps(m), vec!["a", "b"]);
    }

    #[test]
    fn shipped_workspace_is_layered() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        assert_eq!(run(root), 0);
    }

    #[test]
    fn protected_and_banned_crates_exist_in_the_workspace() {
        // A rename would silently turn the gate vacuous; pin the names.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let graph = workspace_graph(root);
        for name in PROTECTED.iter().chain(BANNED).chain(TOOLING_ONLY) {
            assert!(graph.contains_key(*name), "`{name}` left the workspace");
        }
    }
}
