//! Repo automation. Two subcommands:
//!
//! * `cargo xtask lint` — annotation invariant linter (see [`lint`]).
//! * `cargo xtask analyze [--quick]` — whole-workspace call-graph
//!   analyzer: transitive hot-path purity, lock-order/blocking audit,
//!   and the static Eq. 3 schedulability gate (see `rtopex-analyze`).
//!   Without `--quick`, the schedulability report is written to
//!   `target/analyze/schedulability.json` for the CI artifact.
//! * `cargo xtask layering` — crate-layering gate: the core runtime
//!   must stay free of network-transport dependencies (see [`layering`]).
//! * `cargo xtask fuzz [--smoke]` — fuzzer automation: corpus replay
//!   gate (`--smoke`, CI) or a budgeted nightly sweep (see [`fuzz`]).

mod fuzz;
mod layering;
mod lint;

use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // CARGO_MANIFEST_DIR = <workspace>/crates/xtask at compile time; the
    // binary only ever runs from this repo via the cargo alias.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    match args.first().map(String::as_str) {
        Some("lint") => std::process::exit(lint::run(root)),
        Some("layering") => std::process::exit(layering::run(root)),
        Some("analyze") => {
            let quick = args.iter().any(|a| a == "--quick");
            std::process::exit(analyze(root, quick));
        }
        Some("fuzz") => std::process::exit(fuzz::run(root, &args[1..])),
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint, analyze, layering, fuzz");
            std::process::exit(2);
        }
        None => {
            eprintln!(
                "usage: cargo xtask <lint | analyze [--quick] | layering | \
                 fuzz [--smoke | --seed N --iters N --budget-ms N]>"
            );
            std::process::exit(2);
        }
    }
}

/// Runs the three analyzer passes, prints findings, and (unless `quick`)
/// writes the schedulability report artifact. Returns the exit code.
fn analyze(root: &Path, quick: bool) -> i32 {
    let analysis = rtopex_analyze::analyze_workspace(root, quick);
    if !quick {
        let dir = root.join("target/analyze");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("xtask analyze: cannot create {}: {e}", dir.display());
            return 2;
        }
        let path = dir.join("schedulability.json");
        if let Err(e) = std::fs::write(&path, &analysis.sched_report) {
            eprintln!("xtask analyze: cannot write {}: {e}", path.display());
            return 2;
        }
        eprintln!("xtask analyze: schedulability report -> {}", path.display());
    }
    for v in &analysis.violations {
        eprintln!("{v}");
    }
    if analysis.violations.is_empty() {
        eprintln!("xtask analyze: clean");
        0
    } else {
        eprintln!("xtask analyze: {} violation(s)", analysis.violations.len());
        1
    }
}
