//! Repo automation. Currently one subcommand:
//!
//! * `cargo xtask lint` — hot-path invariant linter (see [`lint`]).

mod lint;

use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // CARGO_MANIFEST_DIR = <workspace>/crates/xtask at compile time; the
    // binary only ever runs from this repo via the cargo alias.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    match args.first().map(String::as_str) {
        Some("lint") => std::process::exit(lint::run(root)),
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint");
            std::process::exit(2);
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            std::process::exit(2);
        }
    }
}
