//! `cargo xtask fuzz` — fuzzer automation (see `crates/fuzz`).
//!
//! * `cargo xtask fuzz --smoke` — gating mode: build `rtopex-fuzz`
//!   release and replay the committed corpus on every target. Any
//!   crash, slow input, empty corpus, or vacuous (zero-edge)
//!   instrumentation fails the invocation; CI runs this next to the
//!   analyzer gates.
//! * `cargo xtask fuzz [--seed N] [--iters N] [--budget-ms N]` —
//!   nightly mode: a budgeted open-ended run on every target, findings
//!   written under `target/fuzz-findings/<target>` for artifact upload.
//!   Exit 2 means "findings to triage", not a broken build.

use std::path::Path;
use std::process::Command;

/// Runs the gate; returns the process exit code.
pub fn run(root: &Path, args: &[String]) -> i32 {
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };

    let build = Command::new("cargo")
        .args(["build", "--release", "-q", "-p", "rtopex-fuzz"])
        .current_dir(root)
        .status();
    match build {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask fuzz: building rtopex-fuzz failed ({s})");
            return 2;
        }
        Err(e) => {
            eprintln!("xtask fuzz: cannot invoke cargo: {e}");
            return 2;
        }
    }
    let bin = root.join("target/release/rtopex-fuzz");

    if smoke {
        // Replay with no target argument covers every registered target
        // and enforces the anti-vacuity edge check per target.
        return match Command::new(&bin).arg("replay").current_dir(root).status() {
            Ok(s) if s.success() => {
                eprintln!("xtask fuzz: smoke replay clean");
                0
            }
            Ok(_) => {
                eprintln!("xtask fuzz: smoke replay found corpus regressions");
                1
            }
            Err(e) => {
                eprintln!("xtask fuzz: cannot run {}: {e}", bin.display());
                2
            }
        };
    }

    // Nightly: enumerate targets from the binary itself so a new target
    // is picked up without touching this file.
    let listing = match Command::new(&bin).arg("list").current_dir(root).output() {
        Ok(o) => String::from_utf8_lossy(&o.stdout).into_owned(),
        Err(e) => {
            eprintln!("xtask fuzz: cannot run {}: {e}", bin.display());
            return 2;
        }
    };
    let seed = flag("--seed", 1);
    let iters = flag("--iters", 250_000);
    let budget_ms = flag("--budget-ms", 120_000);
    let mut findings = false;
    for name in listing.lines().filter_map(|l| l.split_whitespace().next()) {
        let status = Command::new(&bin)
            .args([
                "run",
                name,
                "--seed",
                &seed.to_string(),
                "--iters",
                &iters.to_string(),
                "--budget-ms",
                &budget_ms.to_string(),
            ])
            .current_dir(root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(_) => findings = true,
            Err(e) => {
                eprintln!("xtask fuzz: cannot run target {name}: {e}");
                return 2;
            }
        }
    }
    if findings {
        eprintln!("xtask fuzz: findings under target/fuzz-findings/ — triage them");
        2
    } else {
        eprintln!("xtask fuzz: nightly sweep clean (seed {seed}, {iters} iters/target)");
        0
    }
}
