//! Property-based invariants of the simulator across random operating
//! points: the §3.2 dominance guarantee and conservation of subframes.

use proptest::prelude::*;
use rtopex::sim::{run, SchedulerKind, SimConfig};
use rtopex::workload::Scenario;

fn config(rtt: u64, seed: u64) -> SimConfig {
    let mut s = Scenario::smoke_test();
    s.subframes = 1_200;
    s.seed = seed;
    SimConfig::from_scenario(&s, rtt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// RT-OPEX never misses more than partitioned on the same workload,
    /// for any transport latency, seed, or migration cost.
    #[test]
    fn rtopex_dominates_partitioned(
        rtt in 400u64..900,
        seed in 0u64..1_000,
        delta in 0u64..100,
    ) {
        let mut p = config(rtt, seed);
        p.scheduler = SchedulerKind::Partitioned;
        let mut r = config(rtt, seed);
        r.scheduler = SchedulerKind::RtOpex { delta_us: delta };
        let pm = run(&p).deadline.overall().missed;
        let rm = run(&r).deadline.overall().missed;
        prop_assert!(rm <= pm, "rtt {rtt} seed {seed} δ {delta}: {rm} > {pm}");
    }

    /// Every released subframe is accounted for exactly once, and the
    /// completion/drop split is consistent, under every scheduler.
    #[test]
    fn subframes_are_conserved(
        rtt in 400u64..900,
        seed in 0u64..1_000,
        which in 0usize..3,
    ) {
        let mut cfg = config(rtt, seed);
        cfg.scheduler = [
            SchedulerKind::Partitioned,
            SchedulerKind::RtOpex { delta_us: 20 },
            SchedulerKind::Global {
                cores: 8,
                policy: rtopex::core::global::QueuePolicy::Edf,
            },
        ][which];
        let report = run(&cfg);
        let total = (cfg.num_bs * cfg.subframes) as u64;
        prop_assert_eq!(report.deadline.total_subframes(), total);
        prop_assert!(report.deadline.overall().missed <= total);
        // Drops are a subset of misses for the partitioned-based engines.
        if which < 2 {
            prop_assert!(report.dropped <= report.deadline.overall().missed);
            prop_assert_eq!(
                report.proc_times_us.len() as u64 + report.dropped,
                total
            );
        }
    }

    /// Miss rates are monotone (within tolerance) in transport latency for
    /// the partitioned scheduler: shrinking the budget can only hurt.
    #[test]
    fn partitioned_monotone_in_rtt(seed in 0u64..200) {
        let rates: Vec<f64> = [450u64, 600, 750, 900]
            .iter()
            .map(|&rtt| {
                let mut cfg = config(rtt, seed);
                cfg.scheduler = SchedulerKind::Partitioned;
                run(&cfg).miss_rate()
            })
            .collect();
        for w in rates.windows(2) {
            // Allow tiny statistical wiggle at these sample sizes.
            prop_assert!(w[1] >= w[0] - 2e-3, "rates {rates:?}");
        }
    }
}
