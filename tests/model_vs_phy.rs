//! Integration: the analytical models and the real PHY must agree on the
//! *mechanisms* — the simulator's validity rests on this bridge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex::model::iters::IterationModel;
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};

/// Decodes `trials` random subframes; returns (mean iterations, CRC fails).
fn phy_stats(mcs: u8, snr_db: f64, trials: usize, seed: u64) -> (f64, usize) {
    phy_stats_ant(mcs, 2, snr_db, trials, seed)
}

fn phy_stats_ant(mcs: u8, antennas: usize, snr_db: f64, trials: usize, seed: u64) -> (f64, usize) {
    let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, antennas, mcs).expect("config");
    let tx = UplinkTx::new(cfg.clone());
    let rx = UplinkRx::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut iters = 0usize;
    let mut fails = 0usize;
    for _ in 0..trials {
        let payload: Vec<u8> = (0..cfg.transport_block_bytes())
            .map(|_| rng.gen())
            .collect();
        let sf = tx.encode_subframe(&payload).expect("encode");
        let mut chan = AwgnChannel::new(snr_db);
        let rxs = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
        let out = rx.decode_subframe(&rxs).expect("decode");
        iters += out.max_iterations();
        if !out.crc_ok {
            fails += 1;
        }
    }
    (iters as f64 / trials as f64, fails)
}

#[test]
fn real_decoder_iterations_rise_as_snr_falls() {
    // The mechanism behind Eq. (1)'s L term, straight from the real
    // decoder: colder channels burn more iterations. Single antenna (no
    // MRC gain), 16-QAM near its waterfall.
    let (clean, _) = phy_stats_ant(16, 1, 25.0, 6, 1);
    let (cold, _) = phy_stats_ant(16, 1, 8.0, 6, 1);
    assert!(
        cold > clean,
        "iterations should rise as SNR falls: {clean} → {cold}"
    );
}

#[test]
fn real_decoder_fails_below_requirement_like_the_model() {
    let im = IterationModel::paper_gpp();
    // Far below requirement: both model and PHY must fail CRCs.
    let req = IterationModel::required_snr_db(16);
    let (_, fails) = phy_stats(16, req - 10.0, 4, 2);
    assert_eq!(fails, 4, "PHY should fail hopeless channels");
    assert!(im.crc_fail_prob(16, req - 10.0) > 0.95);
    // Far above: both succeed.
    let (_, fails) = phy_stats(16, req + 12.0, 4, 3);
    assert_eq!(fails, 0, "PHY should pass comfortable channels");
    assert!(im.crc_fail_prob(16, req + 12.0) < 0.05);
}

#[test]
fn real_decode_time_grows_with_mcs_like_eq1() {
    // Eq. (1): higher D·L means longer decode. Measure the real thing.
    let time_of = |mcs: u8| -> f64 {
        let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, mcs).expect("config");
        let tx = UplinkTx::new(cfg.clone());
        let rx = UplinkRx::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let payload: Vec<u8> = (0..cfg.transport_block_bytes())
            .map(|_| rng.gen())
            .collect();
        let sf = tx.encode_subframe(&payload).expect("encode");
        let mut chan = AwgnChannel::new(30.0);
        let rxs = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            std::hint::black_box(rx.decode_subframe(&rxs).expect("decode"));
        }
        t0.elapsed().as_secs_f64()
    };
    let low = time_of(0);
    let high = time_of(27);
    assert!(
        high > 1.5 * low,
        "MCS 27 should cost well over MCS 0: {low:.4}s vs {high:.4}s"
    );
}

#[test]
fn subtask_counts_agree_between_model_and_phy() {
    // The Fig. 5 decomposition the scheduler plans with must match what
    // the PHY actually exposes.
    use rtopex::phy::segmentation::Segmentation;
    for mcs in [0u8, 7, 16, 27] {
        let cfg = UplinkConfig::new(Bandwidth::Mhz10, 2, mcs).expect("config");
        let seg = Segmentation::compute(cfg.tbs_bits() + 24).expect("segmentation");
        assert_eq!(cfg.breakdown().decode, seg.num_blocks, "MCS {mcs}");
        assert_eq!(cfg.breakdown().fft, 2 * 14);
        assert_eq!(cfg.breakdown().demod, 12);
    }
}
