//! Guards the PR's two hot-path guarantees:
//!
//! 1. **Zero steady-state allocations** — after one warm-up subframe (or an
//!    explicit [`PhyWorkspace::warm`]), `UplinkRx::decode_subframe_with`
//!    performs no heap allocation at all, measured by a counting global
//!    allocator.
//! 2. **Bit-exactness** — the workspace-reusing decode produces exactly the
//!    same output as the staged `start_job` decode path, for random MCS /
//!    SNR / antenna configurations, including *different* consecutive
//!    configurations reusing one workspace (stale-buffer hazard).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::uplink::{BlockBuf, JobSlab, RxOutput, UplinkConfig, UplinkRx, UplinkTx};
use rtopex::phy::workspace::PhyWorkspace;
use rtopex::phy::Cf32;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Wraps the system allocator, counting allocations made by the *current
/// thread* while that thread's counter is armed. Per-thread counting keeps
/// the measurement immune to the test harness's other threads.
struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<Option<u64>> = const { Cell::new(None) };
}

fn note_alloc() {
    // `try_with` so allocations during TLS teardown never panic.
    let _ = ALLOC_COUNT.try_with(|c| {
        if let Some(n) = c.get() {
            c.set(Some(n + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocation counter armed; returns
/// (result, allocations made by `f`).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOC_COUNT.with(|c| c.set(Some(0)));
    let r = f();
    let n = ALLOC_COUNT.with(|c| c.replace(None)).unwrap_or(0);
    (r, n)
}

/// Builds an encoded, channel-impaired subframe for the configuration.
fn make_subframe(cfg: &UplinkConfig, snr_db: f64, seed: u64) -> (Vec<u8>, Vec<Vec<Cf32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let tx = UplinkTx::new(cfg.clone());
    let payload: Vec<u8> = (0..cfg.transport_block_bytes())
        .map(|_| rng.gen())
        .collect();
    let sf = tx.encode_subframe(&payload).expect("encode");
    let mut chan = AwgnChannel::new(snr_db);
    let samples = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
    (payload, samples)
}

/// Decodes via the staged job path (the reference the runtime node uses).
fn staged_decode(rx: &UplinkRx, samples: &[Vec<Cf32>]) -> RxOutput {
    let mut job = rx.start_job(samples).expect("job");
    for i in 0..job.fft_subtask_count() {
        let out = job.run_fft_subtask(i);
        job.absorb_fft(out);
    }
    job.finish_fft();
    for i in 0..job.demod_subtask_count() {
        let out = job.run_demod_subtask(i);
        job.absorb_demod(out);
    }
    for r in 0..job.decode_subtask_count() {
        let out = job.run_decode_subtask(r);
        job.absorb_decode(out);
    }
    job.finish().expect("finish")
}

#[test]
fn steady_state_decode_makes_zero_allocations() {
    // Multi-block configuration: 5 MHz, 2 antennas, MCS 20 exercises every
    // stage buffer including per-block reuse of the turbo workspace.
    let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).unwrap();
    assert!(cfg.segmentation().num_blocks >= 2, "want multi-block");
    let (_, samples) = make_subframe(&cfg, 28.0, 0xA110C);

    let rx = UplinkRx::new(cfg.clone());
    let mut ws = PhyWorkspace::new();
    ws.warm(&cfg);
    // One warm-up decode settles anything `warm` cannot size exactly.
    let warm = rx.decode_subframe_with(&samples, &mut ws).expect("decode");
    assert!(warm.crc_ok, "test vector must decode cleanly");

    let (crc_ok, allocs) = count_allocs(|| {
        let mut all_ok = true;
        for _ in 0..5 {
            let view = rx.decode_subframe_with(&samples, &mut ws).expect("decode");
            all_ok &= view.crc_ok;
        }
        all_ok
    });
    assert!(crc_ok);
    assert_eq!(
        allocs, 0,
        "steady-state decode_subframe_with must not touch the heap"
    );
}

#[test]
fn warm_start_decode_makes_zero_allocations_across_configs() {
    // A workspace warmed for the largest configuration must stay
    // allocation-free when subframes alternate between configurations.
    let big = UplinkConfig::new(Bandwidth::Mhz5, 2, 24).unwrap();
    let small = UplinkConfig::new(Bandwidth::Mhz5, 2, 7).unwrap();
    let (_, big_samples) = make_subframe(&big, 30.0, 1);
    let (_, small_samples) = make_subframe(&small, 30.0, 2);
    let big_rx = UplinkRx::new(big.clone());
    let small_rx = UplinkRx::new(small.clone());

    let mut ws = PhyWorkspace::new();
    ws.warm(&big);
    ws.warm(&small);
    // Warm-up pass per configuration.
    big_rx.decode_subframe_with(&big_samples, &mut ws).unwrap();
    small_rx
        .decode_subframe_with(&small_samples, &mut ws)
        .unwrap();

    let (_, allocs) = count_allocs(|| {
        for _ in 0..3 {
            big_rx.decode_subframe_with(&big_samples, &mut ws).unwrap();
            small_rx
                .decode_subframe_with(&small_samples, &mut ws)
                .unwrap();
        }
    });
    assert_eq!(allocs, 0, "alternating configs must reuse warmed buffers");
}

/// One subframe through the cluster's staged slab path, with antenna 0
/// and code block 0 taking the "migrated" route: kernels execute into
/// preallocated slot buffers (as a thief would) and the owner absorbs
/// them. Returns the transport-block CRC verdict.
fn slab_round(
    rx: &UplinkRx,
    samples: &[Vec<Cf32>],
    slab: &mut JobSlab,
    fft_slot: &mut Vec<Cf32>,
    dec_slot: &mut BlockBuf,
) -> bool {
    let mut job = rx.start_job_in(samples, slab).expect("job");
    rx.run_fft_batch_into(samples, 0, fft_slot);
    job.absorb_fft_batch(0, fft_slot);
    for b in 1..samples.len() {
        job.run_fft_batch_local(b);
    }
    job.finish_fft();
    for i in 0..job.demod_subtask_count() {
        job.run_demod_subtask_local(i);
    }
    let blocks = job.decode_subtask_count();
    let (iterations, crc_ok) = rx.run_decode_subtask_into(job.coded_llrs(), 0, &mut dec_slot.bits);
    dec_slot.iterations = iterations;
    dec_slot.crc_ok = crc_ok;
    job.absorb_decode_buf(0, dec_slot);
    for r in 1..blocks {
        job.run_decode_subtask_local(r);
    }
    job.finish().expect("finish").crc_ok
}

#[test]
fn staged_slab_path_makes_zero_allocations() {
    // The cluster node's per-subframe path: slab job + arena-style slot
    // buffers. After warming (and one settling round) the whole staged
    // pipeline — including the migrated-and-absorbed subtasks — must not
    // touch the heap.
    let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).unwrap();
    assert!(cfg.segmentation().num_blocks >= 2, "want multi-block");
    let (_, samples) = make_subframe(&cfg, 28.0, 0x51AB);
    let rx = UplinkRx::new(cfg.clone());

    rtopex::phy::workspace::with_thread_workspace(|ws| ws.warm(&cfg));
    let mut slab = JobSlab::new();
    slab.warm(&cfg);
    let mut fft_slot: Vec<Cf32> = Vec::with_capacity(14 * cfg.bandwidth.num_subcarriers());
    let mut dec_slot = BlockBuf::new();
    dec_slot.warm(&cfg);
    let warm = slab_round(&rx, &samples, &mut slab, &mut fft_slot, &mut dec_slot);
    assert!(warm, "test vector must decode cleanly");

    let (crc_ok, allocs) = count_allocs(|| {
        let mut all_ok = true;
        for _ in 0..5 {
            all_ok &= slab_round(&rx, &samples, &mut slab, &mut fft_slot, &mut dec_slot);
        }
        all_ok
    });
    assert!(crc_ok);
    assert_eq!(
        allocs, 0,
        "steady-state staged slab path must not touch the heap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The workspace decode equals the staged decode bit for bit — same
    /// payload, CRCs, and per-block iteration counts — even when one
    /// workspace is reused across two different configurations in a row.
    #[test]
    fn workspace_decode_is_bit_exact(
        mcs_a in 0u8..29,
        mcs_b in 0u8..29,
        ants in 1usize..3,
        snr_tenths in 120i64..300,
        seed in 0u64..1_000,
    ) {
        let snr_db = snr_tenths as f64 / 10.0;
        let mut ws = PhyWorkspace::new();
        for (round, mcs) in [mcs_a, mcs_b].into_iter().enumerate() {
            let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, ants, mcs).unwrap();
            let (_, samples) = make_subframe(&cfg, snr_db, seed ^ round as u64);
            let rx = UplinkRx::new(cfg);
            let reference = staged_decode(&rx, &samples);
            let view = rx.decode_subframe_with(&samples, &mut ws).expect("decode");
            prop_assert_eq!(view.payload, &reference.payload[..]);
            prop_assert_eq!(view.crc_ok, reference.crc_ok);
            prop_assert_eq!(view.block_crc_ok, &reference.block_crc_ok[..]);
            prop_assert_eq!(view.block_iterations, &reference.block_iterations[..]);
        }
    }
}
