//! Stress and model-based tests for the bounded Chase–Lev deque behind
//! the cluster's lock-free migration path (`rtopex::core::steal`).
//!
//! The property under stress: **every pushed ticket is consumed exactly
//! once** — either popped by the owner (LIFO) or stolen by exactly one
//! thief (FIFO) — across wrap-arounds of the bounded ring and under
//! maximum thief contention. CI runs this under `cargo test --release`
//! with `RUST_TEST_THREADS=1` so the thief threads spawned *inside* the
//! test own the machine's cores instead of fighting the harness.

use proptest::prelude::*;
use rtopex::core::slots::{SlotBoard, SlotState};
use rtopex::core::steal::{decode_ticket, encode_ticket, steal_pair, Steal};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Four thieves hammer one owner through sustained wrap-around of a small
/// ring; each of `TOTAL` tickets must be consumed exactly once.
#[test]
fn every_ticket_popped_or_stolen_exactly_once() {
    const TOTAL: usize = 100_000;
    const THIEVES: usize = 4;
    let (mut w, s) = steal_pair(64);
    let seen: Vec<AtomicU8> = (0..TOTAL).map(|_| AtomicU8::new(0)).collect();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..THIEVES {
            let s = s.clone();
            let seen = &seen;
            let done = &done;
            scope.spawn(move || {
                let mut idle = 0u32;
                loop {
                    match s.steal() {
                        Steal::Taken(t) => {
                            idle = 0;
                            seen[t as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {
                            idle = 0;
                            std::hint::spin_loop();
                        }
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            idle += 1;
                            if idle > 64 {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
        }

        // Owner: push every ticket; when the ring fills, work the backlog
        // LIFO like the runtime's fan-out does. Occasionally pop anyway so
        // both ends stay active while thieves race the same slots.
        for t in 0..TOTAL as u64 {
            while w.push(t).is_err() {
                if let Some(x) = w.pop() {
                    seen[x as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
            if t % 7 == 0 {
                if let Some(x) = w.pop() {
                    seen[x as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        while let Some(x) = w.pop() {
            seen[x as usize].fetch_add(1, Ordering::Relaxed);
        }
        // The deque is empty from the owner's side; any ticket not yet
        // counted is in a thief's hands and will be counted before the
        // scope joins.
        done.store(true, Ordering::Release);
    });

    let mut missing = 0usize;
    let mut duplicated = 0usize;
    for c in &seen {
        match c.load(Ordering::Relaxed) {
            0 => missing += 1,
            1 => {}
            _ => duplicated += 1,
        }
    }
    assert_eq!(
        (missing, duplicated),
        (0, 0),
        "of {TOTAL} tickets: {missing} lost, {duplicated} consumed twice"
    );
}

/// Two owners with interleaved thieves — the cluster shape, where every
/// core is simultaneously an owner of its own deque and a thief of
/// everyone else's.
#[test]
fn two_owners_cross_stealing_stay_exact() {
    const PER_OWNER: usize = 20_000;
    let (w0, s0) = steal_pair(32);
    let (w1, s1) = steal_pair(32);
    let seen: Vec<AtomicU8> = (0..2 * PER_OWNER).map(|_| AtomicU8::new(0)).collect();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Each owner thread pushes its own range and steals from the peer.
        let owners: Vec<_> = [(w0, s1.clone(), 0u64), (w1, s0.clone(), PER_OWNER as u64)]
            .into_iter()
            .map(|(mut w, peer, base)| {
                let seen = &seen;
                scope.spawn(move || {
                    for t in 0..PER_OWNER as u64 {
                        let ticket = base + t;
                        while w.push(ticket).is_err() {
                            if let Some(x) = w.pop() {
                                seen[x as usize].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if let Steal::Taken(x) = peer.steal() {
                            seen[x as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    while let Some(x) = w.pop() {
                        seen[x as usize].fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // A floating thief drains whatever the owners leave behind.
        let done_ref = &done;
        let seen = &seen;
        scope.spawn(move || loop {
            let mut took = false;
            for s in [&s0, &s1] {
                match s.steal() {
                    Steal::Taken(x) => {
                        took = true;
                        seen[x as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => took = true,
                    Steal::Empty => {}
                }
            }
            if !took {
                if done_ref.load(Ordering::Acquire) {
                    break;
                }
                std::thread::yield_now();
            }
        });
        // Both owners drain their own deques before exiting, so once they
        // have joined, the floating thief can stop.
        for h in owners {
            h.join().expect("owner thread");
        }
        done.store(true, Ordering::Release);
    });

    let consumed_once = seen
        .iter()
        .filter(|c| c.load(Ordering::Relaxed) == 1)
        .count();
    assert_eq!(consumed_once, 2 * PER_OWNER, "every ticket exactly once");
}

/// Cross-thread epoch reuse (ABA) under real atomics: the owner publishes
/// thousands of short-lived stages, abandoning most of them on a timed-out
/// wait, while a thief steals tickets and deliberately dawdles between the
/// steal and the epoch validation. A dawdling thief's `enter` must come
/// back refused — and an admitted thief must read exactly the descriptor
/// of *its* epoch, never a later stage's (the ABA corruption this
/// protocol exists to prevent; `crates/check/tests/arena_model.rs` proves
/// the same property over all bounded interleavings).
#[test]
fn stale_epoch_tickets_refused_under_reuse_stress() {
    const MIN_EPOCHS: u64 = 20_000;
    // Scheduling decides when a steal actually goes stale, so the owner
    // keeps publishing (well past MIN_EPOCHS if needed) until the thief
    // has reported at least one refusal, up to a generous wall-clock cap.
    const TIME_CAP: Duration = Duration::from_secs(10);
    let board = SlotBoard::new(1, 0u64);
    let (mut w, s) = steal_pair(8);
    let done = AtomicBool::new(false);
    let executed = std::sync::atomic::AtomicU64::new(0);
    let stale = std::sync::atomic::AtomicU64::new(0);
    let mut epochs_run = 0u64;

    std::thread::scope(|scope| {
        let board = &board;
        let done = &done;
        let (executed, stale) = (&executed, &stale);
        scope.spawn(move || {
            let mut lag = 0u32;
            loop {
                match s.steal() {
                    Steal::Taken(t) => {
                        let (e, i) = decode_ticket(t);
                        assert_eq!(i, 0, "single-slot board");
                        // Dawdle a varying amount before validating, so
                        // the owner's recover-and-republish cycle often
                        // overtakes this ticket.
                        lag = (lag + 1) % 8;
                        for _ in 0..lag {
                            std::thread::yield_now();
                        }
                        match board.enter(e) {
                            Some(stage) => {
                                assert_eq!(
                                    *stage.desc(),
                                    e,
                                    "admitted thief read a different stage's descriptor (ABA)"
                                );
                                stage.complete(0);
                                executed.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                stale.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        });

        let start = Instant::now();
        let mut e = 0u64;
        while e < MIN_EPOCHS || (stale.load(Ordering::Relaxed) == 0 && start.elapsed() < TIME_CAP) {
            e += 1;
            // Epochs are the board's own monotone counter (starting at 0),
            // so stage `e` gets epoch `e`; writing `e` into the descriptor
            // lets the thief cross-check ticket epoch against descriptor.
            let epoch = board.publish(1, |d| *d = e);
            assert_eq!(epoch, e, "publish must bump the epoch by exactly one");
            let ticket = encode_ticket(epoch, 0);
            if w.push(ticket).is_err() {
                // Ring full of abandoned tickets: drain one and retry.
                let _ = w.pop();
                w.push(ticket).expect("slot freed");
            }
            // Alternate between giving the thief a real window (so the
            // Done/absorb path runs) and bailing immediately (so recover
            // + republish overtakes in-flight steals → stale tickets).
            let deadline = if e.is_multiple_of(2) {
                Instant::now() + Duration::from_micros(50)
            } else {
                Instant::now()
            };
            match board.wait(0, deadline) {
                SlotState::Done => {}
                SlotState::Pending | SlotState::Declined => {
                    // Recover: reclaim the ticket if the thief has not
                    // taken it, and execute "locally" (a no-op here).
                    let _ = w.pop();
                }
            }
        }
        epochs_run = e;
        done.store(true, Ordering::Release);
    });

    let (executed, stale) = (
        executed.load(Ordering::Relaxed),
        stale.load(Ordering::Relaxed),
    );
    // The scenario must actually have exercised the ABA regime, not
    // passed vacuously.
    assert!(
        executed + stale > 0,
        "thief never obtained a ticket — scenario vacuous"
    );
    assert!(
        stale > 0,
        "no steal ever went stale across {epochs_run} republishes — scenario vacuous \
         (executed {executed})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded, the deque must behave exactly like a bounded
    /// `VecDeque`: push appends at the back (failing when full), pop takes
    /// from the back (LIFO), steal takes from the front (FIFO), and
    /// without contention a steal never spuriously retries.
    #[test]
    fn deque_matches_reference_model(
        ops in proptest::collection::vec(0u8..3, 1..400),
    ) {
        const CAP: usize = 8; // power of two: the ring's exact capacity
        let (mut w, s) = steal_pair(CAP);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 => {
                    let res = w.push(next);
                    if model.len() < CAP {
                        prop_assert_eq!(res, Ok(()), "push must fit");
                        model.push_back(next);
                    } else {
                        prop_assert_eq!(res, Err(next), "push must reject when full");
                    }
                    next += 1;
                }
                1 => {
                    prop_assert_eq!(w.pop(), model.pop_back(), "pop is LIFO");
                }
                _ => {
                    let got = match s.steal() {
                        Steal::Taken(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => {
                            prop_assert!(false, "uncontended steal retried");
                            None
                        }
                    };
                    prop_assert_eq!(got, model.pop_front(), "steal is FIFO");
                }
            }
            prop_assert_eq!(w.is_empty(), model.is_empty());
            prop_assert_eq!(s.len_hint(), model.len());
        }
    }
}
