//! SIMD dispatch must never change a decode result.
//!
//! The vectorized PHY kernels (max-log-MAP, soft demapper, MRC, FFT
//! butterflies) are designed to be **bit-exact** across tiers: the AVX2
//! and AVX-512 intrinsic paths and the portable lane forms perform the
//! same additions, multiplies by the same constants and the same
//! `max`/`min` reductions in rounding-equivalent order. These property
//! tests drive whole subframes through `decode_subframe_with` under a
//! forced-scalar tier, under every other tier this CPU supports, and
//! under auto dispatch, and require the coded LLRs, the recovered
//! payload, the CRC verdicts and the per-block turbo iteration counts to
//! match exactly. The batched decode entry point
//! (`run_staged_decode_batch`, which pairs same-`K` blocks from
//! different cells through the wide turbo kernel) is held to the same
//! standard against per-block sequential decodes.
//!
//! On hardware without AVX2/AVX-512 the tier loop shrinks to the tiers
//! that exist and the test degrades gracefully — the lane-form-vs-
//! reference equivalence is covered by unit tests inside `rtopex-phy`
//! regardless of the machine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::simd::{self, SimdTier};
use rtopex::phy::uplink::{
    run_staged_decode_batch, DecodeBatchScratch, RxOutput, UplinkConfig, UplinkRx, UplinkTx,
};
use rtopex::phy::workspace::PhyWorkspace;
use rtopex::phy::Cf32;
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests in this binary: `force_tier` is process-global,
/// so concurrent test threads must not interleave tier changes.
/// Poisoning is ignored — the override is valid in any state.
fn tier_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One end-to-end decode under the currently active tier: returns the
/// coded LLRs from the staged pipeline plus the owned output of the
/// workspace decode (the two paths are themselves bit-identical, which
/// `alloc_regression.rs` already enforces).
fn decode_under_current_tier(
    rx: &UplinkRx,
    samples: &[Vec<Cf32>],
    ws: &mut PhyWorkspace,
) -> (Vec<f32>, RxOutput) {
    let (llrs, out) = (
        coded_llrs_under_current_tier(rx, samples),
        rx.decode_subframe_with(samples, ws)
            .expect("workspace decode")
            .to_output(),
    );
    (llrs, out)
}

/// Runs the staged FFT + demod pipeline and returns the coded LLR stream.
fn coded_llrs_under_current_tier(rx: &UplinkRx, samples: &[Vec<Cf32>]) -> Vec<f32> {
    let mut job = rx.start_job(samples).expect("staged job");
    for i in 0..job.fft_subtask_count() {
        let out = job.run_fft_subtask(i);
        job.absorb_fft(out);
    }
    job.finish_fft();
    for i in 0..job.demod_subtask_count() {
        let out = job.run_demod_subtask(i);
        job.absorb_demod(out);
    }
    job.coded_llrs().to_vec()
}

/// An encoded noisy subframe plus its receiver.
fn make_cell(bw: Bandwidth, mcs: u8, snr_db: f64, seed: u64) -> (UplinkRx, Vec<Vec<Cf32>>) {
    let cfg = UplinkConfig::new(bw, 2, mcs).expect("config");
    let tx = UplinkTx::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let payload: Vec<u8> = (0..cfg.transport_block_bytes())
        .map(|_| rng.gen())
        .collect();
    let sf = tx.encode_subframe(&payload).expect("encode");
    let mut chan = AwgnChannel::new(snr_db);
    let samples = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
    (UplinkRx::new(cfg), samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn every_supported_tier_and_auto_dispatch_decode_identically(
        seed in 0u64..1_000,
        mcs in prop::sample::select(vec![5u8, 16, 27]),
        bw in prop::sample::select(vec![Bandwidth::Mhz1_4, Bandwidth::Mhz5]),
        snr_db in prop::sample::select(vec![6.0f64, 12.0, 30.0]),
    ) {
        let _g = tier_guard();
        let (rx, samples) = make_cell(bw, mcs, snr_db, seed);
        let mut ws = PhyWorkspace::new();

        simd::force_tier(Some(SimdTier::Scalar));
        let (llrs_scalar, out_scalar) = decode_under_current_tier(&rx, &samples, &mut ws);

        for tier in simd::supported_tiers().skip(1) {
            simd::force_tier(Some(tier));
            let (llrs, out) = decode_under_current_tier(&rx, &samples, &mut ws);
            prop_assert_eq!(
                &llrs_scalar, &llrs,
                "coded LLRs diverged between scalar and {}", tier.name()
            );
            prop_assert_eq!(&out_scalar.payload, &out.payload);
            prop_assert_eq!(out_scalar.crc_ok, out.crc_ok);
            prop_assert_eq!(&out_scalar.block_crc_ok, &out.block_crc_ok);
            prop_assert_eq!(&out_scalar.block_iterations, &out.block_iterations);
        }

        simd::force_tier(None);
        let (llrs_auto, out_auto) = decode_under_current_tier(&rx, &samples, &mut ws);
        prop_assert_eq!(llrs_scalar, llrs_auto, "coded LLRs diverged under auto dispatch");
        prop_assert_eq!(&out_scalar.payload, &out_auto.payload);
        prop_assert_eq!(out_scalar.crc_ok, out_auto.crc_ok);
        prop_assert_eq!(&out_scalar.block_crc_ok, &out_auto.block_crc_ok);
        prop_assert_eq!(&out_scalar.block_iterations, &out_auto.block_iterations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn batched_cross_cell_decode_matches_sequential_on_every_tier(
        seed in 0u64..1_000,
        mcs_a in prop::sample::select(vec![10u8, 16]),
        mcs_b in prop::sample::select(vec![22u8, 27]),
        snr_db in prop::sample::select(vec![8.0f64, 30.0]),
    ) {
        let _g = tier_guard();
        // Two cells at different MCS so the batch mixes block sizes and
        // modulations; 5 MHz so high MCS carries multiple code blocks.
        let cells = [
            make_cell(Bandwidth::Mhz5, mcs_a, snr_db, seed),
            make_cell(Bandwidth::Mhz5, mcs_b, snr_db, seed ^ 0x9E37_79B9),
        ];

        // Scalar per-block sequential reference, in staging order.
        simd::force_tier(Some(SimdTier::Scalar));
        let llrs: Vec<Vec<f32>> =
            cells.iter().map(|(rx, s)| coded_llrs_under_current_tier(rx, s)).collect();
        let mut reference = Vec::new();
        for (ci, (rx, _)) in cells.iter().enumerate() {
            for r in 0..rx.config().e_splits().len() {
                let out = rx.run_decode_subtask_on(&llrs[ci], r);
                reference.push((out.bits, out.iterations, out.crc_ok));
            }
        }

        for tier in simd::supported_tiers() {
            simd::force_tier(Some(tier));
            let mut scratch = DecodeBatchScratch::new();
            for (rx, _) in &cells {
                scratch.warm(rx.config());
            }
            let mut got = Vec::new();
            let mut rxs: Vec<&UplinkRx> = Vec::new();
            let drain = |rxs: &mut Vec<&UplinkRx>, scratch: &mut DecodeBatchScratch,
                             got: &mut Vec<(Vec<u8>, usize, bool)>| {
                if scratch.is_empty() {
                    return;
                }
                run_staged_decode_batch(rxs, scratch);
                for i in 0..scratch.len() {
                    let s = scratch.slot(i);
                    got.push((s.bits.clone(), s.iterations, s.crc_ok));
                }
                scratch.clear();
                rxs.clear();
            };
            // Stage every block of both cells through one shared scratch;
            // the cell boundary lands mid-batch, so batches mix blocks
            // (and K values) from both cells — the cross-cell shape the
            // cluster's drain produces.
            for (ci, (rx, _)) in cells.iter().enumerate() {
                for r in 0..rx.config().e_splits().len() {
                    if scratch.is_full() {
                        drain(&mut rxs, &mut scratch, &mut got);
                    }
                    rx.stage_decode_subtask(&llrs[ci], r, &mut scratch);
                    rxs.push(rx);
                }
            }
            drain(&mut rxs, &mut scratch, &mut got);

            prop_assert_eq!(got.len(), reference.len());
            for (i, (got_i, ref_i)) in got.iter().zip(reference.iter()).enumerate() {
                prop_assert_eq!(
                    got_i, ref_i,
                    "batched block {} diverged from sequential scalar on {}", i, tier.name()
                );
            }
        }
        simd::force_tier(None);
    }
}
