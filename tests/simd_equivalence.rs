//! SIMD dispatch must never change a decode result.
//!
//! The vectorized PHY kernels (max-log-MAP, soft demapper, MRC, FFT
//! butterflies) are designed to be **bit-exact** across tiers: the AVX2
//! intrinsic paths and the portable lane forms perform the same additions,
//! multiplies by the same constants and the same `max`/`min` reductions in
//! rounding-equivalent order. This property test drives whole subframes
//! through `decode_subframe_with` under a forced-scalar tier and under
//! auto dispatch, and requires the coded LLRs, the recovered payload, the
//! CRC verdicts and the per-block turbo iteration counts to match exactly.
//!
//! On hardware without AVX2 the auto tier resolves to scalar and the test
//! degrades to a (trivially passing) self-comparison — the lane-form-vs-
//! reference equivalence is covered by unit tests inside `rtopex-phy`
//! regardless of the machine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::simd::{self, SimdTier};
use rtopex::phy::uplink::{RxOutput, UplinkConfig, UplinkRx, UplinkTx};
use rtopex::phy::workspace::PhyWorkspace;
use rtopex::phy::Cf32;

/// One end-to-end decode under the currently active tier: returns the
/// coded LLRs from the staged pipeline plus the owned output of the
/// workspace decode (the two paths are themselves bit-identical, which
/// `alloc_regression.rs` already enforces).
fn decode_under_current_tier(
    rx: &UplinkRx,
    samples: &[Vec<Cf32>],
    ws: &mut PhyWorkspace,
) -> (Vec<f32>, RxOutput) {
    let mut job = rx.start_job(samples).expect("staged job");
    for i in 0..job.fft_subtask_count() {
        let out = job.run_fft_subtask(i);
        job.absorb_fft(out);
    }
    job.finish_fft();
    for i in 0..job.demod_subtask_count() {
        let out = job.run_demod_subtask(i);
        job.absorb_demod(out);
    }
    let llrs = job.coded_llrs().to_vec();
    let out = rx
        .decode_subframe_with(samples, ws)
        .expect("workspace decode")
        .to_output();
    (llrs, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn forced_scalar_and_auto_dispatch_decode_identically(
        seed in 0u64..1_000,
        mcs in prop::sample::select(vec![5u8, 16, 27]),
        bw in prop::sample::select(vec![Bandwidth::Mhz1_4, Bandwidth::Mhz5]),
        snr_db in prop::sample::select(vec![6.0f64, 12.0, 30.0]),
    ) {
        let cfg = UplinkConfig::new(bw, 2, mcs).expect("config");
        let tx = UplinkTx::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..cfg.transport_block_bytes()).map(|_| rng.gen()).collect();
        let sf = tx.encode_subframe(&payload).expect("encode");
        let mut chan = AwgnChannel::new(snr_db);
        let samples = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
        let rx = UplinkRx::new(cfg);
        let mut ws = PhyWorkspace::new();

        simd::force_tier(Some(SimdTier::Scalar));
        let (llrs_scalar, out_scalar) = decode_under_current_tier(&rx, &samples, &mut ws);
        simd::force_tier(None);
        let (llrs_auto, out_auto) = decode_under_current_tier(&rx, &samples, &mut ws);

        prop_assert_eq!(llrs_scalar, llrs_auto, "coded LLRs diverged across tiers");
        prop_assert_eq!(&out_scalar.payload, &out_auto.payload);
        prop_assert_eq!(out_scalar.crc_ok, out_auto.crc_ok);
        prop_assert_eq!(&out_scalar.block_crc_ok, &out_auto.block_crc_ok);
        prop_assert_eq!(&out_scalar.block_iterations, &out_auto.block_iterations);
    }
}
