//! Integration: the paper's quantitative claims, checked end to end on
//! the simulator (quick scale). Each test names the section it holds to.

use rtopex::core::global::QueuePolicy;
use rtopex::sim::{run, SchedulerKind, SimConfig};
use rtopex::workload::Scenario;

fn scenario() -> Scenario {
    let mut s = Scenario::paper_default();
    s.subframes = 8_000;
    s
}

fn rate(rtt: u64, sched: SchedulerKind) -> f64 {
    let mut cfg = SimConfig::from_scenario(&scenario(), rtt);
    cfg.scheduler = sched;
    run(&cfg).miss_rate()
}

#[test]
fn s43_rtopex_virtually_zero_below_500us() {
    for rtt in [400u64, 450, 500] {
        let r = rate(rtt, SchedulerKind::RtOpex { delta_us: 20 });
        assert!(r < 1e-3, "RTT/2 {rtt}: rt-opex rate {r}");
    }
}

#[test]
fn s43_order_of_magnitude_over_partitioned_and_global() {
    let part = rate(700, SchedulerKind::Partitioned);
    let global = rate(
        700,
        SchedulerKind::Global {
            cores: 8,
            policy: QueuePolicy::Edf,
        },
    );
    let rto = rate(700, SchedulerKind::RtOpex { delta_us: 20 });
    assert!(part / rto.max(1e-9) > 5.0, "vs partitioned: {part} / {rto}");
    assert!(global / rto.max(1e-9) > 5.0, "vs global: {global} / {rto}");
}

#[test]
fn s43_partitioned_rises_with_transport_latency() {
    let low = rate(400, SchedulerKind::Partitioned);
    let high = rate(700, SchedulerKind::Partitioned);
    assert!(
        high > 2.0 * low,
        "partitioned should degrade with RTT: {low} → {high}"
    );
}

#[test]
fn s43_global_never_beats_partitioned() {
    for rtt in [400u64, 550, 700] {
        let part = rate(rtt, SchedulerKind::Partitioned);
        let glob = rate(
            rtt,
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
        );
        assert!(
            glob >= part * 0.8,
            "RTT/2 {rtt}: global {glob} vs partitioned {part}"
        );
    }
}

#[test]
fn s44_doubling_global_cores_does_not_help() {
    let g8 = rate(
        600,
        SchedulerKind::Global {
            cores: 8,
            policy: QueuePolicy::Edf,
        },
    );
    let g16 = rate(
        600,
        SchedulerKind::Global {
            cores: 16,
            policy: QueuePolicy::Edf,
        },
    );
    assert!(g16 >= g8 * 0.8, "g8 {g8}, g16 {g16}");
}

#[test]
fn s32_rtopex_no_worse_than_partitioned_everywhere() {
    // The §3.2 design requirement, preserved under host overruns.
    for rtt in [400u64, 500, 600, 700] {
        let mut p = SimConfig::from_scenario(&scenario(), rtt);
        p.scheduler = SchedulerKind::Partitioned;
        let mut r = SimConfig::from_scenario(&scenario(), rtt);
        r.scheduler = SchedulerKind::RtOpex { delta_us: 20 };
        r.overrun_prob = 0.3;
        r.overrun_factor = 2.5;
        let pm = run(&p).deadline.overall().missed;
        let rm = run(&r).deadline.overall().missed;
        assert!(rm <= pm, "RTT/2 {rtt}: rt-opex {rm} vs partitioned {pm}");
    }
}

#[test]
fn s42_fig17_rtopex_supports_higher_load() {
    // Sweep BS 0's MCS at RTT/2 = 500 µs; RT-OPEX must hold the 1e-2
    // threshold at a strictly higher offered load.
    let supported = |sched: SchedulerKind| -> u8 {
        let mut best = 0;
        for mcs in [16u8, 20, 22, 23, 24, 25, 26] {
            let mut cfg = SimConfig::from_scenario(&scenario(), 500);
            cfg.scheduler = sched;
            cfg.bs0_mcs = Some(mcs);
            if run(&cfg).deadline.bs_rate(0) <= 1e-2 {
                best = best.max(mcs);
            }
        }
        best
    };
    let part = supported(SchedulerKind::Partitioned);
    let rto = supported(SchedulerKind::RtOpex { delta_us: 20 });
    assert!(rto > part, "rt-opex MCS {rto} vs partitioned MCS {part}");
}
