//! Integration: the full receive path the paper's Fig. 2 draws —
//! TX waveform → IQ packetization over the emulated fronthaul →
//! reassembly at the compute node → PHY decode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};
use rtopex::transport::{Fronthaul, IqPacketizer, TestbedLink};

#[test]
fn subframe_survives_packetized_transport() {
    let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 12).expect("config");
    let tx = UplinkTx::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let payload: Vec<u8> = (0..cfg.transport_block_bytes())
        .map(|_| rng.gen())
        .collect();
    let sf = tx.encode_subframe(&payload).expect("encode");

    // Over the air, then over the wire: each antenna's stream is
    // quantized to 16-bit IQ, packetized, and reassembled.
    let mut chan = AwgnChannel::new(25.0);
    let rx_air = chan.apply(&sf.samples, cfg.num_antennas, &mut rng);
    let pk = IqPacketizer;
    let rx_wire: Vec<_> = rx_air
        .iter()
        .enumerate()
        .map(|(ant, stream)| {
            let pkts = pk.packetize(0, ant as u8, 1, stream);
            pk.reassemble(&pkts).expect("complete fragment set")
        })
        .collect();

    let rx = UplinkRx::new(cfg);
    let out = rx.decode_subframe(&rx_wire).expect("decode");
    assert!(out.crc_ok, "16-bit IQ quantization must not break decoding");
    assert_eq!(out.payload, payload);
}

#[test]
fn lost_packet_drops_the_subframe_not_the_process() {
    let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 1, 5).expect("config");
    let tx = UplinkTx::new(cfg.clone());
    let payload = vec![0x5Au8; cfg.transport_block_bytes()];
    let sf = tx.encode_subframe(&payload).expect("encode");
    let pk = IqPacketizer;
    let mut pkts = pk.packetize(3, 0, 9, &sf.samples);
    pkts.remove(pkts.len() / 2);
    assert!(pk.reassemble(&pkts).is_none(), "loss must be detected");
}

#[test]
fn transport_budget_is_consistent_with_deadlines() {
    // Fronthaul + testbed serialization must fit inside the RTT/2 values
    // the paper sweeps (0.4–0.7 ms) for its deployment scenarios.
    let fh = Fronthaul::off_site_20km();
    let link = TestbedLink::paper_testbed();
    let one_way = fh.one_way_us() + link.one_way_deterministic_us(Bandwidth::Mhz10, 2);
    assert!(
        (400.0..=1_000.0).contains(&one_way),
        "20 km + 2-antenna 10 MHz transport = {one_way} µs"
    );
}
