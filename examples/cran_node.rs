//! A live multi-cell C-RAN node on real threads: one [`CranCluster`]
//! drives N cells' transport cadence, pinned per-cell workers, and
//! RT-OPEX migration of real PHY subtasks — through the lock-free steal
//! path or the mutex mailbox path, side by side.
//!
//! Unlike the capacity sweep in `rtopex-experiments` (which dilates the
//! subframe period to stress 5 MHz cells), this demo runs narrowband
//! 1.4 MHz cells at LTE's *true 1 ms* cadence: a vectorized subframe
//! decode takes ~0.3 ms here, so the real-time deadline is genuinely
//! attainable on commodity hardware, exactly the regime the paper's
//! testbed operates in. Expect a few misses on a busy or virtualized
//! host — the hypervisor can stall a core for longer than the whole
//! budget — and see `rtopex-experiments cluster` for the methodology
//! that measures around that noise.
//!
//! Run with: `cargo run --release --example cran_node`

use rtopex::phy::params::Bandwidth;
use rtopex::runtime::affinity::num_cpus;
use rtopex::runtime::cluster::{ClusterConfig, CranCluster, SchedulerMode};
use std::time::Duration;

fn main() {
    let cells = 2usize;
    println!(
        "machine: {} CPU(s) — {}",
        num_cpus(),
        if num_cpus() > 2 * cells {
            "full parallel operation"
        } else {
            "workers will time-share; the mechanics still run end to end"
        }
    );
    for mode in [
        SchedulerMode::Partitioned,
        SchedulerMode::RtOpexMutex,
        SchedulerMode::RtOpexSteal,
    ] {
        let cfg = ClusterConfig {
            bandwidth: Bandwidth::Mhz1_4,
            num_antennas: 2,
            num_cells: cells,
            subframes: 500,
            // LTE's real subframe cadence, with a one-period fronthaul
            // half-RTT: Eq. 3 leaves exactly one period of processing
            // budget per subframe.
            period: Duration::from_millis(1),
            rtt_half: Duration::from_millis(1),
            mode,
            snr_db: 30.0,
            mcs_pool: vec![10, 16, 27],
            delta_us: 60.0,
            seed: 0xC0DE,
            batch_decode: true,
        };
        println!(
            "\n=== {}: {} cell(s) × {} subframes @ 1.4 MHz, period {:?}, budget {:?} ===",
            mode.name(),
            cfg.num_cells,
            cfg.subframes,
            cfg.period,
            cfg.budget()
        );
        let report = CranCluster::new(cfg).run();
        let mut proc = report.proc_us.clone();
        println!(
            "pinned: {} | deadline misses: {}/{} ({:.2}%)",
            report.pinned,
            report.deadline.overall().missed,
            report.deadline.total_subframes(),
            report.miss_rate() * 100.0
        );
        println!(
            "processing time p50/p95: {:.0}/{:.0} µs | {:.0} sf/s | dropped {} | CRC failures {}",
            proc.quantile(0.5),
            proc.quantile(0.95),
            report.subframes_per_sec(),
            report.dropped,
            report.crc_failures
        );
        if mode.migrates() {
            println!(
                "migrations: {} fft + {} decode subtasks, {} stolen tickets ({} declined by δ)",
                report.migration.fft_migrated,
                report.migration.decode_migrated,
                report.steals,
                report.declined_steals
            );
        }
    }
}
