//! A live C-RAN compute node on real threads: transport cadence, pinned
//! processing workers, and RT-OPEX migration of real PHY subtasks.
//!
//! Runs the same half-second workload twice — plain partitioned, then
//! RT-OPEX — and compares deadline outcomes. Subframe periods are
//! time-dilated to match this machine's PHY speed (see
//! `rtopex-runtime`'s module docs).
//!
//! Run with: `cargo run --release --example cran_node`

use rtopex::runtime::affinity::num_cpus;
use rtopex::runtime::{CranNode, NodeConfig};

fn main() {
    println!(
        "machine: {} CPU(s) — {}",
        num_cpus(),
        if num_cpus() >= 4 {
            "full parallel operation"
        } else {
            "workers will time-share; the mechanics still run end to end"
        }
    );
    for migrate in [false, true] {
        let label = if migrate { "rt-opex" } else { "partitioned" };
        let cfg = NodeConfig {
            migrate,
            ..NodeConfig::demo()
        };
        println!(
            "\n=== {label}: {} BS × {} subframes, period {:?}, budget {:?} ===",
            cfg.num_bs,
            cfg.subframes,
            cfg.period,
            cfg.budget()
        );
        let report = CranNode::new(cfg).run();
        let mut proc = report.proc_us.clone();
        println!(
            "pinned: {} | deadline misses: {}/{} ({:.2}%)",
            report.pinned,
            report.deadline.overall().missed,
            report.deadline.total_subframes(),
            report.deadline.overall().rate() * 100.0
        );
        println!(
            "processing time p50/p95: {:.0}/{:.0} µs | dropped {} | CRC failures {}",
            proc.quantile(0.5),
            proc.quantile(0.95),
            report.dropped,
            report.crc_failures
        );
        if migrate {
            println!(
                "migrations: {} fft + {} decode subtasks ({} recoveries)",
                report.migration.fft_migrated,
                report.migration.decode_migrated,
                report.migration.recoveries
            );
        }
    }
}
