//! Quickstart: the two things this library does, in thirty lines each.
//!
//! 1. Decode a real LTE-style subframe through the actual PHY chain.
//! 2. Compare the three C-RAN schedulers on the paper's workload.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};
use rtopex::sim::{run, SchedulerKind, SimConfig};
use rtopex::workload::Scenario;
use rtopex_core::global::QueuePolicy;

fn main() {
    // --- Part 1: one subframe through the real PHY. ---
    println!("— Part 1: real PHY round trip —");
    let cfg = UplinkConfig::new(Bandwidth::Mhz1_4, 2, 16).expect("valid config");
    println!(
        "bandwidth {}, MCS {}, TBS {} bits, {} code block(s), {} FFT / {} demod / {} decode subtasks",
        cfg.bandwidth.label(),
        cfg.mcs.index(),
        cfg.tbs_bits(),
        cfg.segmentation().num_blocks,
        cfg.breakdown().fft,
        cfg.breakdown().demod,
        cfg.breakdown().decode,
    );
    let tx = UplinkTx::new(cfg.clone());
    let payload = vec![0xA5u8; cfg.transport_block_bytes()];
    let subframe = tx.encode_subframe(&payload).expect("encode");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut channel = AwgnChannel::new(25.0);
    let rx_samples = channel.apply(&subframe.samples, cfg.num_antennas, &mut rng);
    let rx = UplinkRx::new(cfg);
    let out = rx.decode_subframe(&rx_samples).expect("decode");
    println!(
        "decoded: crc_ok = {}, turbo iterations per block = {:?}, payload intact = {}",
        out.crc_ok,
        out.block_iterations,
        out.payload == payload
    );

    // --- Part 2: scheduler face-off on the paper's workload. ---
    println!("\n— Part 2: scheduler comparison (2 BS × 5 000 subframes, RTT/2 = 600 µs) —");
    let mut scenario = Scenario::smoke_test();
    scenario.subframes = 5_000;
    for (name, sched) in [
        ("partitioned", SchedulerKind::Partitioned),
        (
            "global-8",
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
        ),
        ("rt-opex", SchedulerKind::RtOpex { delta_us: 20 }),
    ] {
        let mut cfg = SimConfig::from_scenario(&scenario, 600);
        cfg.scheduler = sched;
        let report = run(&cfg);
        println!(
            "{name:<12} miss rate {:>9.2e}   migrated decode subtasks {:>6}",
            report.miss_rate(),
            report.migration.decode_migrated
        );
    }
    println!(
        "\nNext: `cargo run --release -p rtopex-experiments -- fig15` for the headline figure."
    );
}
