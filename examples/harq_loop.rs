//! The full HARQ loop the paper's deadline exists for: an uplink subframe
//! is decoded under the 3 ms budget, its ACK/NACK rides a downlink
//! subframe (the Tx processing of Fig. 8), and a NACK triggers an
//! incremental-redundancy retransmission that the receiver soft-combines.
//!
//! Run with: `cargo run --release --example harq_loop`

use rand::{Rng, SeedableRng};
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::downlink::{DownlinkConfig, DownlinkRx, DownlinkTx};
use rtopex::phy::harq::{rv_for_transmission, HarqProcess};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2016);

    // A UE on a marginal channel: MCS 16 at 5.5 dB with one antenna is below
    // the first-transmission waterfall — exactly when HARQ earns its keep.
    let ul = UplinkConfig::new(Bandwidth::Mhz1_4, 1, 16).expect("config");
    let ue_tx = UplinkTx::new(ul.clone());
    let enb_rx = UplinkRx::new(ul.clone());
    let payload: Vec<u8> = (0..ul.transport_block_bytes()).map(|_| rng.gen()).collect();
    println!(
        "uplink: {} / MCS {} / TBS {} bits at 5.5 dB (marginal on purpose)",
        ul.bandwidth.label(),
        ul.mcs.index(),
        ul.tbs_bits()
    );

    // The downlink that carries the feedback (1 byte of ACK/NACK + padding).
    let dl = DownlinkConfig::new(Bandwidth::Mhz1_4, 1, 0).expect("config");
    let enb_dl_tx = DownlinkTx::new(dl.clone());
    let ue_dl_rx = DownlinkRx::new(dl.clone());

    let mut harq = HarqProcess::new(ul.segmentation());
    let mut delivered = false;
    for txn in 0..4u32 {
        let rv = rv_for_transmission(txn);
        println!("\n— transmission {} (rv {rv}) —", txn + 1);

        // UE → eNB over the air.
        let sf = ue_tx.encode_subframe_rv(&payload, rv).expect("encode");
        let mut chan = AwgnChannel::new(5.5);
        let rx_air = chan.apply(&sf.samples, 1, &mut rng);

        // eNB decodes within its T_max budget (soft-combined).
        let out = enb_rx
            .decode_subframe_harq(&rx_air, rv, &mut harq)
            .expect("decode");
        println!(
            "eNB decode: crc {} after {} combined transmission(s), iterations {:?}",
            if out.crc_ok { "OK " } else { "FAIL" },
            harq.transmissions(),
            out.block_iterations
        );

        // Feedback rides the downlink subframe 3 ms later (Fig. 8).
        let mut fb = vec![0u8; dl.transport_block_bytes()];
        fb[0] = if out.crc_ok { 0xAC } else { 0x4E }; // ACK / NACK
        let dl_wave = enb_dl_tx.encode_subframe(&fb).expect("dl encode");
        let mut dl_chan = AwgnChannel::new(20.0);
        let dl_rx = dl_chan.apply(&dl_wave, 1, &mut rng);
        let fb_out = ue_dl_rx.decode_subframe(&dl_rx).expect("dl decode");
        let ack = fb_out.crc_ok && fb_out.payload[0] == 0xAC;
        println!(
            "UE hears: {} (downlink crc {})",
            if ack {
                "ACK — done"
            } else {
                "NACK — retransmit"
            },
            fb_out.crc_ok
        );
        if ack {
            assert_eq!(out.payload, payload, "delivered payload must match");
            delivered = true;
            break;
        }
    }
    println!(
        "\nresult: payload {} after {} transmission(s)",
        if delivered { "DELIVERED" } else { "LOST" },
        harq.transmissions()
    );
    println!("this loop is why the paper's C-RAN node has exactly 2 ms of slack for\ntransport + Rx processing — miss it and the retransmission machinery stalls.");
}
