//! Scheduler face-off: renders the paper's example schedules (Figs. 9-11)
//! as ASCII timelines, then runs the three schedulers head-to-head on a
//! paired workload across the transport-latency sweep.
//!
//! Run with: `cargo run --release --example scheduler_faceoff`

use rtopex::core::budget::Budget;
use rtopex::core::partitioned::PartitionedSchedule;
use rtopex::sim::{run, SchedulerKind, SimConfig};
use rtopex::workload::Scenario;
use rtopex_core::global::QueuePolicy;

/// Renders a partitioned timeline like the paper's Fig. 9: each row is a
/// core, each column a millisecond, each cell the (bs, subframe) it
/// processes.
fn render_partitioned() {
    println!("— Fig. 9: a partitioned schedule, 1 basestation × 2 cores —");
    let sched = PartitionedSchedule::with_cores_per_bs(1, 2);
    for core in 0..sched.total_cores() {
        print!("core {core} |");
        for j in 0..6u64 {
            if sched.core_for(0, j) == core {
                print!(" (0,{j})   ");
            } else {
                print!("   .     ");
            }
        }
        println!();
    }
    println!("        +---1ms---+---1ms---+---1ms---+---1ms---+---1ms---+");
    println!("each subframe gets its core for 2 ms — the ⌈T_max⌉ guarantee;");
    println!("the idle tail of every slot is the gap RT-OPEX migrates into (Fig. 11).\n");
}

fn main() {
    render_partitioned();

    let budget = Budget::from_rtt_half_us(500);
    println!(
        "deadline arithmetic (Eq. 3): RTT/2 = 500 µs ⇒ T_max = {} ⇒ {} cores per BS\n",
        budget.tmax(),
        budget.ceil_tmax_ms()
    );

    println!("— head-to-head on the paper's 4-BS workload (paired seeds) —");
    let mut scenario = Scenario::paper_default();
    scenario.subframes = 10_000;
    println!(
        "{:>8} {:>13} {:>13} {:>13} {:>10}",
        "RTT/2", "partitioned", "global-8", "rt-opex", "winner"
    );
    for rtt in [400u64, 500, 600, 700] {
        let mut rates = Vec::new();
        for sched in [
            SchedulerKind::Partitioned,
            SchedulerKind::Global {
                cores: 8,
                policy: QueuePolicy::Edf,
            },
            SchedulerKind::RtOpex { delta_us: 20 },
        ] {
            let mut cfg = SimConfig::from_scenario(&scenario, rtt);
            cfg.scheduler = sched;
            rates.push(run(&cfg).miss_rate());
        }
        let names = ["partitioned", "global-8", "rt-opex"];
        let winner = names[rates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()];
        println!(
            "{:>7}µ {:>13.2e} {:>13.2e} {:>13.2e} {:>10}",
            rtt, rates[0], rates[1], rates[2], winner
        );
    }
}
