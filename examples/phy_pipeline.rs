//! A guided walk through the uplink PHY pipeline, stage by stage, with a
//! mini BLER-vs-SNR sweep at the end — the substrate everything else in
//! this repository is built on.
//!
//! Run with: `cargo run --release --example phy_pipeline`

use rand::{Rng, SeedableRng};
use rtopex::phy::channel::{AwgnChannel, ChannelModel};
use rtopex::phy::params::Bandwidth;
use rtopex::phy::uplink::{UplinkConfig, UplinkRx, UplinkTx};

fn main() {
    let cfg = UplinkConfig::new(Bandwidth::Mhz5, 2, 20).expect("valid config");
    let seg = cfg.segmentation();
    println!("— TX side —");
    println!(
        "{} / MCS {} ({:?}): TBS = {} bits, D = {:.2} bits/RE",
        cfg.bandwidth.label(),
        cfg.mcs.index(),
        cfg.modulation(),
        cfg.tbs_bits(),
        cfg.mcs.subcarrier_load(cfg.bandwidth)
    );
    println!(
        "segmentation: {} code blocks (K⁺ = {}, K⁻ = {}, filler = {})",
        seg.num_blocks, seg.k_plus, seg.k_minus, seg.filler
    );
    println!(
        "rate matching: G = {} coded bits over {} data REs × Qm {}",
        cfg.coded_bits(),
        cfg.bandwidth.data_res(),
        cfg.mcs.modulation_order()
    );

    let tx = UplinkTx::new(cfg.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let payload: Vec<u8> = (0..cfg.transport_block_bytes())
        .map(|_| rng.gen())
        .collect();
    let subframe = tx.encode_subframe(&payload).expect("encode");
    println!(
        "waveform: {} IQ samples at {} samples/s",
        subframe.samples.len(),
        cfg.bandwidth.sample_rate_hz()
    );

    println!("\n— RX side (staged, as the schedulers see it) —");
    let mut channel = AwgnChannel::new(18.0);
    let rx_samples = channel.apply(&subframe.samples, cfg.num_antennas, &mut rng);
    let rx = UplinkRx::new(cfg.clone());
    let mut job = rx.start_job(&rx_samples).expect("job");
    println!(
        "FFT task: {} antenna-symbol subtasks",
        job.fft_subtask_count()
    );
    for i in 0..job.fft_subtask_count() {
        let out = job.run_fft_subtask(i);
        job.absorb_fft(out);
    }
    job.finish_fft();
    println!("demod task: {} symbol subtasks", job.demod_subtask_count());
    for i in 0..job.demod_subtask_count() {
        let out = job.run_demod_subtask(i);
        job.absorb_demod(out);
    }
    println!(
        "decode task: {} code-block subtasks",
        job.decode_subtask_count()
    );
    for r in 0..job.decode_subtask_count() {
        let out = job.run_decode_subtask(r);
        println!(
            "  block {r}: {} turbo iteration(s), crc {}",
            out.iterations,
            if out.crc_ok { "ok" } else { "FAIL" }
        );
        job.absorb_decode(out);
    }
    let out = job.finish().expect("complete");
    println!(
        "transport block: crc_ok = {}, payload intact = {}",
        out.crc_ok,
        out.payload == payload
    );

    println!("\n— mini BLER sweep (MCS 20 needs ≈ 14 dB) —");
    println!("{:>7} {:>8} {:>10}", "SNR", "BLER", "mean L");
    for snr in [10.0, 12.0, 14.0, 16.0, 20.0] {
        let trials = 10;
        let mut fails = 0;
        let mut iters = 0usize;
        for t in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + t);
            let p: Vec<u8> = (0..cfg.transport_block_bytes())
                .map(|_| rng.gen())
                .collect();
            let sf = tx.encode_subframe(&p).expect("encode");
            let mut ch = AwgnChannel::new(snr);
            let rxs = ch.apply(&sf.samples, cfg.num_antennas, &mut rng);
            let o = rx.decode_subframe(&rxs).expect("decode");
            if !o.crc_ok {
                fails += 1;
            }
            iters += o.max_iterations();
        }
        println!(
            "{:>5}dB {:>8.2} {:>10.1}",
            snr,
            fails as f64 / trials as f64,
            iters as f64 / trials as f64
        );
    }
}
